#include "dbll/analysis/audit.h"

#include <cstdio>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "dbll/analysis/liveness.h"
#include "dbll/obs/obs.h"
#include "dbll/x86/printer.h"

namespace dbll::analysis {
namespace {

using x86::Mnemonic;

/// Counters resolved once (same pattern as the compile service's
/// CacheMetrics): the registry lookup takes a lock, the Add() is atomic.
struct AuditMetrics {
  obs::Counter& audits;
  obs::Counter& diagnostics;
  obs::Counter& fatal;

  static AuditMetrics& Get() {
    static AuditMetrics metrics{
        obs::Registry::Default().GetCounter("analysis.audits"),
        obs::Registry::Default().GetCounter("analysis.diagnostics"),
        obs::Registry::Default().GetCounter("analysis.fatal"),
    };
    return metrics;
  }
};

/// Mnemonics that decode but have no lifter semantics: they fall through to
/// the "cannot lift" default in function_lifter.cpp (and are likewise
/// rejected by the DBrew meta-emulator).
bool LifterSupports(Mnemonic mnemonic) {
  switch (mnemonic) {
    case Mnemonic::kInvalid:
    case Mnemonic::kCmpxchg:
    case Mnemonic::kXadd:
    case Mnemonic::kRdtsc:
    case Mnemonic::kCpuid:
    case Mnemonic::kInt3:
      return false;
    default:
      return true;
  }
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Maps a CFG-construction failure onto a diagnostic. BuildCfg fails fast, so
/// a structural problem yields exactly one (fatal) record.
Diagnostic FromError(const Error& error) {
  Diagnostic diag;
  diag.site = error.address();
  diag.severity = Severity::kFatal;
  diag.message = error.message();
  switch (error.kind()) {
    case ErrorKind::kDecode:
      diag.kind = DiagKind::kDecodeFailure;
      break;
    case ErrorKind::kResourceLimit:
      diag.kind = DiagKind::kResourceLimit;
      break;
    default:
      if (Contains(error.message(), "indirect jump")) {
        diag.kind = DiagKind::kIndirectJump;
      } else if (Contains(error.message(), "middle of an instruction")) {
        diag.kind = DiagKind::kMidInstructionJump;
      } else if (Contains(error.message(), "outside of function buffer")) {
        diag.kind = DiagKind::kJumpOutOfRange;
      } else {
        diag.kind = DiagKind::kUnsupportedOpcode;
      }
      break;
  }
  return diag;
}

void Add(AuditReport& report, std::uint64_t site, Severity severity,
         DiagKind kind, std::string message) {
  report.diagnostics.push_back(
      Diagnostic{site, severity, kind, std::move(message)});
}

/// Shared driver: audits `entry` and, when requested, every direct call
/// target reachable from it, using `build` to construct each CFG and
/// `reachable` to decide which call targets can be audited at all (buffer
/// audits skip out-of-buffer callees instead of failing on them).
AuditReport AuditImpl(
    std::uint64_t entry, const AuditOptions& options,
    const std::function<Expected<x86::Cfg>(std::uint64_t)>& build,
    const std::function<bool(std::uint64_t)>& reachable) {
  DBLL_TRACE_SPAN("analysis.audit");
  AuditReport report;

  std::set<std::uint64_t> visited;
  std::deque<std::pair<std::uint64_t, int>> worklist{{entry, 0}};
  while (!worklist.empty()) {
    const auto [address, depth] = worklist.front();
    worklist.pop_front();
    if (!visited.insert(address).second) continue;

    const std::size_t first_new = report.diagnostics.size();
    Expected<x86::Cfg> cfg = build(address);
    if (cfg) {
      AuditCfg(*cfg, report);
      if (options.follow_calls && depth + 1 < options.max_call_depth) {
        for (std::uint64_t target : cfg->call_targets) {
          if (reachable(target)) worklist.emplace_back(target, depth + 1);
        }
      }
    } else {
      report.diagnostics.push_back(FromError(cfg.error()));
    }
    // Attribute findings inside transitively audited callees to the deepest
    // function that actually contains them, so lint output names the code to
    // fix instead of only the root entry point.
    if (depth > 0) {
      char context[64];
      std::snprintf(context, sizeof(context),
                    " [in callee 0x%llx, call depth %d]",
                    static_cast<unsigned long long>(address), depth);
      for (std::size_t i = first_new; i < report.diagnostics.size(); ++i) {
        report.diagnostics[i].message += context;
      }
    }
  }

  AuditMetrics& metrics = AuditMetrics::Get();
  metrics.audits.Add(1);
  metrics.diagnostics.Add(report.diagnostics.size());
  if (report.worst() == Severity::kFatal) metrics.fatal.Add(1);
  return report;
}

}  // namespace

const char* ToString(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kFatal:
      return "fatal";
  }
  return "?";
}

const char* ToString(DiagKind kind) noexcept {
  switch (kind) {
    case DiagKind::kDecodeFailure:
      return "decode-failure";
    case DiagKind::kUnsupportedOpcode:
      return "unsupported-opcode";
    case DiagKind::kIndirectJump:
      return "indirect-jump";
    case DiagKind::kIndirectCall:
      return "indirect-call";
    case DiagKind::kMidInstructionJump:
      return "mid-instruction-jump";
    case DiagKind::kJumpOutOfRange:
      return "jump-out-of-range";
    case DiagKind::kRipWrite:
      return "rip-relative-write";
    case DiagKind::kResourceLimit:
      return "resource-limit";
  }
  return "?";
}

Severity AuditReport::worst() const {
  Severity worst = Severity::kInfo;
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity > worst) worst = diag.severity;
  }
  return worst;
}

const Diagnostic* AuditReport::first_fatal() const {
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity == Severity::kFatal) return &diag;
  }
  return nullptr;
}

void AuditCfg(const x86::Cfg& cfg, AuditReport& report) {
  for (const auto& [start, block] : cfg.blocks) {
    // Indirect jmp terminators only appear in CFGs built with
    // allow_indirect_jumps (the range-resolved path); the plain decode fails
    // before reaching here. Resolved sites are informational, the rest stay
    // exactly as fatal as the old decode error.
    if (block.HasIndirectJump()) {
      if (!block.indirect_targets.empty()) {
        Add(report, block.terminator().address, Severity::kInfo,
            DiagKind::kIndirectJump,
            "indirect jump resolved via jump table (" +
                std::to_string(block.indirect_targets.size()) + " targets)");
      } else {
        Add(report, block.terminator().address, Severity::kFatal,
            DiagKind::kIndirectJump,
            "indirect jump (" + x86::PrintOperand(block.terminator().ops[0]) +
                ") is not a provable jump-table dispatch");
      }
    }
    for (const x86::Instr& instr : block.instrs) {
      if (!LifterSupports(instr.mnemonic)) {
        Add(report, instr.address, Severity::kFatal,
            DiagKind::kUnsupportedOpcode,
            std::string("lifter has no semantics for '") +
                x86::MnemonicName(instr.mnemonic) + "'");
        continue;
      }
      if (instr.mnemonic == Mnemonic::kCall && instr.op_count != 0 &&
          !instr.ops[0].is_imm()) {
        Add(report, instr.address, Severity::kFatal, DiagKind::kIndirectCall,
            "indirect call (" + x86::PrintOperand(instr.ops[0]) +
                ") cannot be lifted");
        continue;
      }
      if (instr.HasRipOperand() && instr.mnemonic != Mnemonic::kPush &&
          instr.mnemonic != Mnemonic::kCall && instr.ops[0].is_mem() &&
          instr.ops[0].mem.base == x86::kRip &&
          EffectsOf(instr).writes_memory) {
        Add(report, instr.address, Severity::kWarning, DiagKind::kRipWrite,
            "RIP-relative memory write is position-dependent: " +
                x86::PrintInstr(instr));
      } else if (instr.HasRipOperand()) {
        Add(report, instr.address, Severity::kInfo, DiagKind::kRipWrite,
            "RIP-relative data reference: " + x86::PrintInstr(instr));
      }
    }
  }
}

AuditReport AuditFunction(std::uint64_t entry, const AuditOptions& options) {
  if (options.value_ranges) {
    RangeOptions range_options;
    range_options.budget = options.range_budget;
    return AuditImpl(
        entry, options,
        [&options, &range_options](
            std::uint64_t address) -> Expected<x86::Cfg> {
          DBLL_TRY(RangeResolvedCfg resolved,
                   BuildRangeResolvedCfg(address, options.cfg, range_options));
          return std::move(resolved.cfg);
        },
        [](std::uint64_t) { return true; });
  }
  return AuditImpl(
      entry, options,
      [&options](std::uint64_t address) {
        return x86::BuildCfg(address, options.cfg);
      },
      [](std::uint64_t) { return true; });
}

AuditReport AuditBuffer(std::span<const std::uint8_t> code,
                        std::uint64_t base_address, std::uint64_t entry,
                        const AuditOptions& options) {
  auto in_buffer = [code, base_address](std::uint64_t address) {
    return address >= base_address && address < base_address + code.size();
  };
  return AuditImpl(entry, options,
                   [&options, code, base_address](std::uint64_t address) {
                     return x86::BuildCfgFromBuffer(code, base_address,
                                                    address, options.cfg);
                   },
                   in_buffer);
}

}  // namespace dbll::analysis
