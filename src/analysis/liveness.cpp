#include "dbll/analysis/liveness.h"

namespace dbll::analysis {
namespace {

using x86::Instr;
using x86::Mnemonic;
using x86::Operand;

void UseMem(const x86::MemOperand& mem, InstrEffects& e) {
  e.uses |= LocSet::FromReg(mem.base);
  e.uses |= LocSet::FromReg(mem.index);
}

void UseOp(const Operand& op, InstrEffects& e) {
  if (op.is_reg()) {
    e.uses |= LocSet::FromReg(op.reg);
  } else if (op.is_mem()) {
    UseMem(op.mem, e);
  }
}

/// A register write fully replaces the old value when it covers the whole
/// architectural register: 64-bit writes, and 32-bit GP writes (which
/// zero-extend). 8/16-bit GP writes and high-byte accesses merge.
bool GpWriteKills(const Operand& op) {
  return op.reg.cls == x86::RegClass::kGp && op.size >= 4 && !op.high8;
}

/// Destination handling shared by most groups. `read` marks read-modify-write
/// destinations, `vec_kill` marks full 128-bit vector overwrites.
void DefDest(const Operand& op, InstrEffects& e, bool read, bool vec_kill) {
  if (op.is_reg()) {
    if (read) e.uses |= LocSet::FromReg(op.reg);
    e.defs |= LocSet::FromReg(op.reg);
    if ((op.reg.cls == x86::RegClass::kGp && GpWriteKills(op)) ||
        (op.reg.cls == x86::RegClass::kVec && vec_kill)) {
      e.kills |= LocSet::FromReg(op.reg);
    }
  } else if (op.is_mem()) {
    UseMem(op.mem, e);
    e.writes_memory = true;
  }
}

bool IsShiftFamily(Mnemonic m) {
  switch (m) {
    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor:
    case Mnemonic::kShld:
    case Mnemonic::kShrd:
      return true;
    default:
      return false;
  }
}

/// A variable-count shift with count 0 leaves EFLAGS untouched, so its flag
/// writes must not count as kills (kills are under-approximated). Immediate
/// nonzero counts kill reliably.
bool ShiftFlagKillOk(const Instr& instr) {
  const Operand& count = instr.mnemonic == Mnemonic::kShld ||
                                 instr.mnemonic == Mnemonic::kShrd
                             ? instr.ops[2]
                             : instr.ops[1];
  if (!count.is_imm()) return false;
  const std::int64_t mask = instr.ops[0].size == 8 ? 0x3f : 0x1f;
  return (count.imm & mask) != 0;
}

}  // namespace

InstrEffects EffectsOf(const Instr& instr) {
  InstrEffects e;
  const Operand& op0 = instr.ops[0];
  const Operand& op1 = instr.ops[1];

  switch (instr.mnemonic) {
    // No register or flag effects.
    case Mnemonic::kNop:
    case Mnemonic::kEndbr64:
    case Mnemonic::kUd2:
    case Mnemonic::kLfence:
    case Mnemonic::kMfence:
    case Mnemonic::kSfence:
      return e;

    // Destination written without being read; sources used.
    case Mnemonic::kMov:
    case Mnemonic::kMovzx:
    case Mnemonic::kMovsx:
    case Mnemonic::kMovsxd:
    case Mnemonic::kLea:  // memory operand is an address computation, no load
    case Mnemonic::kBsf:
    case Mnemonic::kBsr:
    case Mnemonic::kTzcnt:
    case Mnemonic::kPopcnt:
    case Mnemonic::kCvtss2si:
    case Mnemonic::kCvtsd2si:
    case Mnemonic::kCvttss2si:
    case Mnemonic::kCvttsd2si:
    case Mnemonic::kPmovmskb:
    case Mnemonic::kMovmskps:
    case Mnemonic::kMovmskpd:
      DefDest(op0, e, /*read=*/false, /*vec_kill=*/false);
      for (int i = 1; i < instr.op_count; ++i) UseOp(instr.ops[i], e);
      break;

    // Full-width vector (or GP) overwrites.
    case Mnemonic::kMovaps:
    case Mnemonic::kMovapd:
    case Mnemonic::kMovups:
    case Mnemonic::kMovupd:
    case Mnemonic::kMovdqa:
    case Mnemonic::kMovdqu:
    case Mnemonic::kMovd:
    case Mnemonic::kMovq:
    case Mnemonic::kPshufd:
    case Mnemonic::kSqrtps:
    case Mnemonic::kSqrtpd:
    case Mnemonic::kCvtdq2pd:
    case Mnemonic::kCvtdq2ps:
    case Mnemonic::kCvtps2pd:
    case Mnemonic::kCvtpd2ps:
      DefDest(op0, e, /*read=*/false, /*vec_kill=*/true);
      for (int i = 1; i < instr.op_count; ++i) UseOp(instr.ops[i], e);
      break;

    // Merging vector writes: the destination's untouched lanes survive.
    case Mnemonic::kMovss:
    case Mnemonic::kMovsdX:
    case Mnemonic::kMovlps:
    case Mnemonic::kMovhps:
    case Mnemonic::kMovlpd:
    case Mnemonic::kMovhpd:
    case Mnemonic::kMovhlps:
    case Mnemonic::kMovlhps:
    case Mnemonic::kCvtsi2ss:
    case Mnemonic::kCvtsi2sd:
    case Mnemonic::kCvtss2sd:
    case Mnemonic::kCvtsd2ss:
    case Mnemonic::kSqrtss:
    case Mnemonic::kSqrtsd:
      DefDest(op0, e, /*read=*/true, /*vec_kill=*/false);
      for (int i = 1; i < instr.op_count; ++i) UseOp(instr.ops[i], e);
      break;

    // Compares: no destination, flags only.
    case Mnemonic::kCmp:
    case Mnemonic::kTest:
    case Mnemonic::kBt:
    case Mnemonic::kUcomiss:
    case Mnemonic::kUcomisd:
    case Mnemonic::kComiss:
    case Mnemonic::kComisd:
      for (int i = 0; i < instr.op_count; ++i) UseOp(instr.ops[i], e);
      break;

    // GP read-modify-write ALU.
    case Mnemonic::kAdd:
    case Mnemonic::kAdc:
    case Mnemonic::kSub:
    case Mnemonic::kSbb:
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kNot:
    case Mnemonic::kNeg:
    case Mnemonic::kInc:
    case Mnemonic::kDec:
    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor:
    case Mnemonic::kBts:
    case Mnemonic::kBtr:
    case Mnemonic::kBtc:
    case Mnemonic::kBswap:
    case Mnemonic::kShld:
    case Mnemonic::kShrd:
      DefDest(op0, e, /*read=*/true, /*vec_kill=*/false);
      for (int i = 1; i < instr.op_count; ++i) UseOp(instr.ops[i], e);
      break;

    case Mnemonic::kImul:
      if (instr.op_count == 1) {
        UseOp(op0, e);
        e.uses |= LocSet::Gp(x86::kRax.index);
        e.defs |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
        e.kills |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
      } else if (instr.op_count == 2) {
        DefDest(op0, e, /*read=*/true, /*vec_kill=*/false);
        UseOp(op1, e);
      } else {
        DefDest(op0, e, /*read=*/false, /*vec_kill=*/false);
        UseOp(op1, e);
      }
      break;

    case Mnemonic::kMul:
      UseOp(op0, e);
      e.uses |= LocSet::Gp(x86::kRax.index);
      e.defs |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
      e.kills |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
      break;

    case Mnemonic::kDiv:
    case Mnemonic::kIdiv:
      UseOp(op0, e);
      e.uses |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
      e.defs |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
      e.kills |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index);
      break;

    case Mnemonic::kXchg:
      DefDest(op0, e, /*read=*/true, /*vec_kill=*/false);
      DefDest(op1, e, /*read=*/true, /*vec_kill=*/false);
      break;

    case Mnemonic::kPush:
      UseOp(op0, e);
      e.uses |= LocSet::Gp(x86::kRsp.index);
      e.defs |= LocSet::Gp(x86::kRsp.index);
      e.kills |= LocSet::Gp(x86::kRsp.index);
      e.writes_memory = true;
      break;

    case Mnemonic::kPop:
      e.uses |= LocSet::Gp(x86::kRsp.index);
      e.defs |= LocSet::Gp(x86::kRsp.index);
      e.kills |= LocSet::Gp(x86::kRsp.index);
      DefDest(op0, e, /*read=*/false, /*vec_kill=*/false);
      break;

    case Mnemonic::kLeave:
      e.uses |= LocSet::Gp(x86::kRbp.index);
      e.defs |= LocSet::Gp(x86::kRsp.index) | LocSet::Gp(x86::kRbp.index);
      e.kills |= LocSet::Gp(x86::kRsp.index) | LocSet::Gp(x86::kRbp.index);
      break;

    case Mnemonic::kCbw:
    case Mnemonic::kCwde:
    case Mnemonic::kCdqe:
      e.uses |= LocSet::Gp(x86::kRax.index);
      e.defs |= LocSet::Gp(x86::kRax.index);
      if (instr.mnemonic != Mnemonic::kCbw) {
        e.kills |= LocSet::Gp(x86::kRax.index);
      }
      break;

    case Mnemonic::kCwd:
    case Mnemonic::kCdq:
    case Mnemonic::kCqo:
      e.uses |= LocSet::Gp(x86::kRax.index);
      e.defs |= LocSet::Gp(x86::kRdx.index);
      if (instr.mnemonic != Mnemonic::kCwd) {
        e.kills |= LocSet::Gp(x86::kRdx.index);
      }
      break;

    case Mnemonic::kStc:
    case Mnemonic::kClc:
      break;  // flags handled below

    case Mnemonic::kJmp:
      UseOp(op0, e);  // indirect targets read the register/memory operand
      break;

    case Mnemonic::kJcc:
      break;  // condition flags handled below

    case Mnemonic::kSetcc:
      DefDest(op0, e, /*read=*/false, /*vec_kill=*/false);
      break;

    case Mnemonic::kCmovcc:
      // The move is conditional: the old destination value can survive, so
      // this is a def without a kill (which keeps the destination live).
      DefDest(op0, e, /*read=*/false, /*vec_kill=*/false);
      e.kills -= LocSet::FromReg(op0.reg);
      UseOp(op1, e);
      break;

    case Mnemonic::kCall:
      // Callee behaviour is unknown: conservatively read every register.
      // Flags do not cross the boundary in either direction -- the SysV ABI
      // leaves them unspecified and the lifter undefines them after a call.
      e.uses |= LocSet::AllGp() | LocSet::AllVec();
      e.defs |= LocSet::AllFlags();
      e.kills |= LocSet::AllFlags();
      e.writes_memory = true;
      break;

    case Mnemonic::kRet:
      // ABI exit: return registers, the stack pointer, and the callee-saved
      // set must hold their expected values.
      e.uses |= LocSet::Gp(x86::kRax.index) | LocSet::Gp(x86::kRdx.index) |
                LocSet::Gp(x86::kRsp.index) | LocSet::Gp(x86::kRbx.index) |
                LocSet::Gp(x86::kRbp.index) | LocSet::Gp(x86::kR12.index) |
                LocSet::Gp(x86::kR13.index) | LocSet::Gp(x86::kR14.index) |
                LocSet::Gp(x86::kR15.index) | LocSet::Vec(0) | LocSet::Vec(1);
      e.defs |= LocSet::Gp(x86::kRsp.index);
      e.kills |= LocSet::Gp(x86::kRsp.index);
      break;

    // Vector read-modify-write: arithmetic, bitwise, packed integer,
    // compares, shifts, shuffles, unpacks.
    case Mnemonic::kAddss:
    case Mnemonic::kAddsd:
    case Mnemonic::kSubss:
    case Mnemonic::kSubsd:
    case Mnemonic::kMulss:
    case Mnemonic::kMulsd:
    case Mnemonic::kDivss:
    case Mnemonic::kDivsd:
    case Mnemonic::kMinss:
    case Mnemonic::kMinsd:
    case Mnemonic::kMaxss:
    case Mnemonic::kMaxsd:
    case Mnemonic::kAddps:
    case Mnemonic::kAddpd:
    case Mnemonic::kSubps:
    case Mnemonic::kSubpd:
    case Mnemonic::kMulps:
    case Mnemonic::kMulpd:
    case Mnemonic::kDivps:
    case Mnemonic::kDivpd:
    case Mnemonic::kAndps:
    case Mnemonic::kAndpd:
    case Mnemonic::kAndnps:
    case Mnemonic::kAndnpd:
    case Mnemonic::kOrps:
    case Mnemonic::kOrpd:
    case Mnemonic::kXorps:
    case Mnemonic::kXorpd:
    case Mnemonic::kPand:
    case Mnemonic::kPandn:
    case Mnemonic::kPor:
    case Mnemonic::kPxor:
    case Mnemonic::kPaddb:
    case Mnemonic::kPaddw:
    case Mnemonic::kPaddd:
    case Mnemonic::kPaddq:
    case Mnemonic::kPsubb:
    case Mnemonic::kPsubw:
    case Mnemonic::kPsubd:
    case Mnemonic::kPsubq:
    case Mnemonic::kPmullw:
    case Mnemonic::kPmuludq:
    case Mnemonic::kPminub:
    case Mnemonic::kPmaxub:
    case Mnemonic::kPminsw:
    case Mnemonic::kPmaxsw:
    case Mnemonic::kPavgb:
    case Mnemonic::kPavgw:
    case Mnemonic::kPcmpeqb:
    case Mnemonic::kPcmpeqw:
    case Mnemonic::kPcmpeqd:
    case Mnemonic::kPcmpgtb:
    case Mnemonic::kPcmpgtw:
    case Mnemonic::kPcmpgtd:
    case Mnemonic::kPsllw:
    case Mnemonic::kPslld:
    case Mnemonic::kPsllq:
    case Mnemonic::kPsrlw:
    case Mnemonic::kPsrld:
    case Mnemonic::kPsrlq:
    case Mnemonic::kPsraw:
    case Mnemonic::kPsrad:
    case Mnemonic::kPslldq:
    case Mnemonic::kPsrldq:
    case Mnemonic::kUnpcklps:
    case Mnemonic::kUnpcklpd:
    case Mnemonic::kUnpckhps:
    case Mnemonic::kUnpckhpd:
    case Mnemonic::kShufps:
    case Mnemonic::kShufpd:
    case Mnemonic::kPunpcklqdq:
    case Mnemonic::kPunpckhqdq:
    case Mnemonic::kPunpcklbw:
    case Mnemonic::kPunpcklwd:
    case Mnemonic::kPunpckldq:
    case Mnemonic::kPunpckhbw:
    case Mnemonic::kPunpckhwd:
    case Mnemonic::kPunpckhdq:
    case Mnemonic::kCmpss:
    case Mnemonic::kCmpsd:
    case Mnemonic::kCmpps:
    case Mnemonic::kCmppd:
      DefDest(op0, e, /*read=*/true, /*vec_kill=*/false);
      for (int i = 1; i < instr.op_count; ++i) UseOp(instr.ops[i], e);
      break;

    default:
      // kInvalid, kCmpxchg, kXadd, kRdtsc, kCpuid, kInt3, and anything the
      // pipeline grows later: reads everything, kills nothing.
      e.uses |= LocSet::All();
      e.defs |= LocSet::All();
      e.writes_memory = true;
      e.known = false;
      return e;
  }

  // Flag effects from the shared mnemonic metadata.
  const x86::FlagEffects fe = x86::FlagEffectsOf(instr.mnemonic);
  const std::uint8_t flag_writes = fe.written | fe.undefined;
  if (flag_writes != 0) {
    e.defs |= LocSet::FromFlagMask(flag_writes);
    if (!IsShiftFamily(instr.mnemonic) || ShiftFlagKillOk(instr)) {
      e.kills |= LocSet::FromFlagMask(flag_writes);
    }
  }
  if (fe.reads_carry) e.uses |= LocSet::FlagLoc(x86::Flag::kCf);
  if (instr.mnemonic == Mnemonic::kJcc ||
      instr.mnemonic == Mnemonic::kSetcc ||
      instr.mnemonic == Mnemonic::kCmovcc) {
    e.uses |= LocSet::FromFlagMask(x86::CondFlagUses(instr.cond));
  }
  return e;
}

Liveness ComputeLiveness(const x86::Cfg& cfg) {
  const CfgIndex index(cfg);
  const std::size_t n = index.blocks.size();

  std::vector<Transfer> transfer(n);
  for (std::size_t i = 0; i < n; ++i) {
    LocSet gen;
    LocSet kill;
    for (const Instr& instr : index.blocks[i]->instrs) {
      const InstrEffects e = EffectsOf(instr);
      gen |= e.uses - kill;  // upward-exposed uses
      kill |= e.kills;
    }
    transfer[i] = Transfer{gen, kill};
  }

  const DataflowResult solved =
      Solve(Direction::kBackward, index.graph, transfer, LocSet());

  Liveness live;
  live.iterations = solved.iterations;
  for (std::size_t i = 0; i < n; ++i) {
    const x86::BasicBlock& block = *index.blocks[i];
    live.block_in.emplace(block.start, solved.in[i]);
    live.block_out.emplace(block.start, solved.out[i]);
    LocSet cur = solved.out[i];
    for (auto it = block.instrs.rbegin(); it != block.instrs.rend(); ++it) {
      live.after_instr.emplace(it->address, cur);
      const InstrEffects e = EffectsOf(*it);
      cur = (cur - e.kills) | e.uses;
    }
  }
  return live;
}

}  // namespace dbll::analysis
