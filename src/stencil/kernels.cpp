// dbll -- stencil kernels (paper Fig. 7).
//
// This translation unit is compiled with controlled flags (see
// CMakeLists.txt: -O2 -fcf-protection=none -fno-stack-protector) so the
// generated machine code stays within the instruction subset supported by
// the decoder, the DBrew emulator, and the lifter -- the same constraint as
// the paper's -mno-avx setup with GCC 5.4.
//
// The *_outlined element helpers are noinline on purpose: they are the
// building blocks the rewriters inline at runtime.
#include "dbll/stencil/stencil.h"

namespace dbll::stencil {

extern "C" {

void stencil_apply_flat(const FlatStencil* s, const double* m1, double* m2,
                        long index) {
  double v = 0.0;
  for (int i = 0; i < s->point_count; i++) {
    const FlatPoint* p = s->points + i;
    v += p->factor * m1[index + p->dx + kMatrixSize * p->dy];
  }
  m2[index] = v;
}

void stencil_apply_sorted(const SortedStencil* s, const double* m1,
                          double* m2, long index) {
  double v = 0.0;
  for (int g = 0; g < s->group_count; g++) {
    const SortedGroup* grp = s->groups + g;
    double gv = 0.0;
    for (int i = 0; i < grp->point_count; i++) {
      const SortedPoint* p = grp->points + i;
      gv += m1[index + p->dx + kMatrixSize * p->dy];
    }
    v += grp->factor * gv;
  }
  m2[index] = v;
}

void stencil_apply_sorted_ptr(const PtrSortedStencil* s, const double* m1,
                              double* m2, long index) {
  double v = 0.0;
  for (int g = 0; g < s->group_count; g++) {
    const SortedGroup* grp = s->groups + g;
    double gv = 0.0;
    for (int i = 0; i < grp->point_count; i++) {
      const SortedPoint* p = grp->points + i;
      gv += m1[index + p->dx + kMatrixSize * p->dy];
    }
    v += grp->factor * gv;
  }
  m2[index] = v;
}

void stencil_apply_direct(const void*, const double* m1, double* m2,
                          long index) {
  m2[index] = 0.25 * (m1[index - 1] + m1[index + 1] +
                      m1[index - kMatrixSize] + m1[index + kMatrixSize]);
}

// --- Line kernels: compiler-inlined stencil code ---------------------------

void stencil_line_flat(const FlatStencil* s, const double* m1, double* m2,
                       long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    double v = 0.0;
    for (int i = 0; i < s->point_count; i++) {
      const FlatPoint* p = s->points + i;
      v += p->factor * m1[base + x + p->dx + kMatrixSize * p->dy];
    }
    m2[base + x] = v;
  }
}

void stencil_line_sorted(const SortedStencil* s, const double* m1, double* m2,
                         long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    double v = 0.0;
    for (int g = 0; g < s->group_count; g++) {
      const SortedGroup* grp = s->groups + g;
      double gv = 0.0;
      for (int i = 0; i < grp->point_count; i++) {
        const SortedPoint* p = grp->points + i;
        gv += m1[base + x + p->dx + kMatrixSize * p->dy];
      }
      v += grp->factor * gv;
    }
    m2[base + x] = v;
  }
}

void stencil_line_sorted_ptr(const PtrSortedStencil* s, const double* m1,
                             double* m2, long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    double v = 0.0;
    for (int g = 0; g < s->group_count; g++) {
      const SortedGroup* grp = s->groups + g;
      double gv = 0.0;
      for (int i = 0; i < grp->point_count; i++) {
        const SortedPoint* p = grp->points + i;
        gv += m1[base + x + p->dx + kMatrixSize * p->dy];
      }
      v += grp->factor * gv;
    }
    m2[base + x] = v;
  }
}

void stencil_line_direct(const void*, const double* m1, double* m2,
                         long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    const long i = base + x;
    m2[i] = 0.25 * (m1[i - 1] + m1[i + 1] + m1[i - kMatrixSize] +
                    m1[i + kMatrixSize]);
  }
}

// --- Line kernels with outlined element computation ------------------------

__attribute__((noinline)) static void element_flat(const FlatStencil* s,
                                                   const double* m1,
                                                   double* m2, long index) {
  stencil_apply_flat(s, m1, m2, index);
}

__attribute__((noinline)) static void element_sorted(const SortedStencil* s,
                                                     const double* m1,
                                                     double* m2, long index) {
  stencil_apply_sorted(s, m1, m2, index);
}

__attribute__((noinline)) static void element_sorted_ptr(
    const PtrSortedStencil* s, const double* m1, double* m2, long index) {
  stencil_apply_sorted_ptr(s, m1, m2, index);
}

__attribute__((noinline)) static void element_direct(const void* s,
                                                     const double* m1,
                                                     double* m2, long index) {
  stencil_apply_direct(s, m1, m2, index);
}

void stencil_line_flat_outlined(const FlatStencil* s, const double* m1,
                                double* m2, long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    element_flat(s, m1, m2, base + x);
  }
}

void stencil_line_sorted_outlined(const SortedStencil* s, const double* m1,
                                  double* m2, long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    element_sorted(s, m1, m2, base + x);
  }
}

void stencil_line_sorted_ptr_outlined(const PtrSortedStencil* s,
                                      const double* m1, double* m2,
                                      long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    element_sorted_ptr(s, m1, m2, base + x);
  }
}

void stencil_line_direct_outlined(const void* s, const double* m1, double* m2,
                                  long row) {
  const long base = row * kMatrixSize;
  for (long x = 1; x < kMatrixSize - 1; x++) {
    element_direct(s, m1, m2, base + x);
  }
}

}  // extern "C"

}  // namespace dbll::stencil
