// dbll -- stencil descriptions and the Jacobi driver (paper Sec. V/VI).
#include "dbll/stencil/stencil.h"

#include <cmath>
#include <cstring>

namespace dbll::stencil {

const FlatStencil& FourPointFlat() {
  static const FlatStencil s = {4,
                                {{0.25, -1, 0},
                                 {0.25, 1, 0},
                                 {0.25, 0, -1},
                                 {0.25, 0, 1}}};
  return s;
}

const SortedStencil& FourPointSorted() {
  static const SortedStencil s = {
      1, {{0.25, 4, {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}}}};
  return s;
}

const PtrSortedStencil& FourPointSortedPtr() {
  // The group array lives behind a nested pointer, like the paper's
  // flexible-array sorted structure.
  static const SortedGroup groups[1] = {
      {0.25, 4, {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}}};
  static const PtrSortedStencil s = {1, groups};
  return s;
}

const FlatStencil& EightPointFlat() {
  static const FlatStencil s = {8,
                                {{0.15, -1, 0},
                                 {0.15, 1, 0},
                                 {0.15, 0, -1},
                                 {0.15, 0, 1},
                                 {0.1, -1, -1},
                                 {0.1, 1, -1},
                                 {0.1, -1, 1},
                                 {0.1, 1, 1}}};
  return s;
}

const SortedStencil& EightPointSorted() {
  static const SortedStencil s = {
      2,
      {{0.15, 4, {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}},
       {0.1, 4, {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}}}}};
  return s;
}

JacobiGrid::JacobiGrid(long size)
    : size_(size),
      a_(static_cast<std::size_t>(size * size)),
      b_(static_cast<std::size_t>(size * size)),
      front_(a_.data()),
      back_(b_.data()) {
  Reset();
}

void JacobiGrid::Reset() {
  const long n = size_;
  std::memset(a_.data(), 0, a_.size() * sizeof(double));
  std::memset(b_.data(), 0, b_.size() * sizeof(double));
  // Heat distribution: hot top edge with a linear falloff on the sides.
  for (long x = 0; x < n; x++) {
    const double v = 1.0 - std::fabs(2.0 * static_cast<double>(x) / (n - 1) - 1.0);
    a_[static_cast<std::size_t>(x)] = v;
    b_[static_cast<std::size_t>(x)] = v;
  }
  front_ = a_.data();
  back_ = b_.data();
}

void JacobiGrid::RunElement(ElementKernel kernel, const void* stencil,
                            int iterations) {
  const long n = size_;
  for (int iter = 0; iter < iterations; iter++) {
    for (long y = 1; y < n - 1; y++) {
      const long base = y * n;
      for (long x = 1; x < n - 1; x++) {
        kernel(stencil, front_, back_, base + x);
      }
    }
    std::swap(front_, back_);
  }
}

void JacobiGrid::RunLine(LineKernel kernel, const void* stencil,
                         int iterations) {
  const long n = size_;
  for (int iter = 0; iter < iterations; iter++) {
    for (long y = 1; y < n - 1; y++) {
      kernel(stencil, front_, back_, y);
    }
    std::swap(front_, back_);
  }
}

void JacobiGrid::RunElementAdaptive(const ElementKernelProvider& provider,
                                    const void* stencil, int iterations) {
  const long n = size_;
  for (int iter = 0; iter < iterations; iter++) {
    ElementKernel kernel = provider();
    for (long y = 1; y < n - 1; y++) {
      const long base = y * n;
      for (long x = 1; x < n - 1; x++) {
        kernel(stencil, front_, back_, base + x);
      }
    }
    std::swap(front_, back_);
  }
}

void JacobiGrid::RunLineAdaptive(const LineKernelProvider& provider,
                                 const void* stencil, int iterations) {
  const long n = size_;
  for (int iter = 0; iter < iterations; iter++) {
    LineKernel kernel = provider();
    for (long y = 1; y < n - 1; y++) {
      kernel(stencil, front_, back_, y);
    }
    std::swap(front_, back_);
  }
}

double JacobiGrid::Checksum() const {
  double sum = 0.0;
  const std::size_t total = static_cast<std::size_t>(size_ * size_);
  for (std::size_t i = 0; i < total; i++) {
    sum += front_[i];
  }
  return sum;
}

double JacobiGrid::MaxDifference(const JacobiGrid& other) const {
  double max_diff = 0.0;
  const std::size_t total = static_cast<std::size_t>(size_ * size_);
  for (std::size_t i = 0; i < total; i++) {
    max_diff = std::max(max_diff, std::fabs(front_[i] - other.front_[i]));
  }
  return max_diff;
}

}  // namespace dbll::stencil
