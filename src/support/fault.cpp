// dbll -- fault-injection framework (see include/dbll/support/fault.h).
#include "dbll/support/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <thread>

namespace dbll::fault {

namespace internal {
std::atomic<int> g_armed_sites{0};
}  // namespace internal

namespace {

struct SiteState {
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::mt19937_64 rng;  // per-site, deterministically seeded at Arm()
};

struct Registry {
  std::mutex mutex;
  // std::less<> enables lookups by string_view without a temporary string.
  std::map<std::string, SiteState, std::less<>> sites;
};

/// Leaky function-local singleton: usable from static initializers (the env
/// armer below) and from atexit-time code without ordering hazards.
Registry& Reg() {
  static Registry* registry = new Registry;
  return *registry;
}

std::uint64_t SeedFor(std::string_view site) {
  // FNV-1a of the site name XORed into a fixed seed: distinct sites get
  // distinct, reproducible streams.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : site) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash ^ 0xdb11'fa17'0000'0000ULL;
}

/// Arms every directive found in $DBLL_FAULT before main() runs, so a plain
/// `DBLL_FAULT=jit.compile:kJit:0 ./app` needs no code changes in the app.
struct EnvArmer {
  EnvArmer() {
    const char* env = std::getenv("DBLL_FAULT");
    if (env != nullptr && env[0] != '\0') ArmFromEnv(env);
  }
} g_env_armer;

}  // namespace

std::optional<ErrorKind> ParseErrorKind(std::string_view name) {
  if (!name.empty() && name.front() == 'k') name.remove_prefix(1);
  static constexpr std::pair<std::string_view, ErrorKind> kNames[] = {
      {"None", ErrorKind::kNone},
      {"none", ErrorKind::kNone},
      {"ok", ErrorKind::kNone},
      {"Decode", ErrorKind::kDecode},
      {"decode", ErrorKind::kDecode},
      {"Unsupported", ErrorKind::kUnsupported},
      {"unsupported", ErrorKind::kUnsupported},
      {"Encode", ErrorKind::kEncode},
      {"encode", ErrorKind::kEncode},
      {"Emulate", ErrorKind::kEmulate},
      {"emulate", ErrorKind::kEmulate},
      {"Lift", ErrorKind::kLift},
      {"lift", ErrorKind::kLift},
      {"Jit", ErrorKind::kJit},
      {"jit", ErrorKind::kJit},
      {"ResourceLimit", ErrorKind::kResourceLimit},
      {"resource-limit", ErrorKind::kResourceLimit},
      {"BadConfig", ErrorKind::kBadConfig},
      {"bad-config", ErrorKind::kBadConfig},
      {"Internal", ErrorKind::kInternal},
      {"internal", ErrorKind::kInternal},
      {"Timeout", ErrorKind::kTimeout},
      {"timeout", ErrorKind::kTimeout},
      {"Io", ErrorKind::kIo},
      {"io", ErrorKind::kIo},
  };
  for (const auto& [candidate, kind] : kNames) {
    if (candidate == name) return kind;
  }
  return std::nullopt;
}

void Arm(std::string_view site, Spec spec) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) {
    it = reg.sites.emplace(std::string(site), SiteState{}).first;
    internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  it->second.spec = spec;
  it->second.hits = 0;
  it->second.fires = 0;
  it->second.rng.seed(SeedFor(site));
}

bool ArmFromString(std::string_view directive, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  // site:kind[:after_n[:probability]]
  const std::size_t kind_sep = directive.find(':');
  if (kind_sep == std::string_view::npos || kind_sep == 0) {
    return fail("expected site:kind[:after_n[:probability]], got \"" +
                std::string(directive) + "\"");
  }
  const std::string_view site = directive.substr(0, kind_sep);
  std::string_view rest = directive.substr(kind_sep + 1);
  const std::size_t n_sep = rest.find(':');
  const std::string_view kind_name = rest.substr(0, n_sep);
  const auto kind = ParseErrorKind(kind_name);
  if (!kind.has_value()) {
    return fail("unknown error kind \"" + std::string(kind_name) + "\"");
  }
  Spec spec;
  spec.kind = *kind;
  if (n_sep != std::string_view::npos) {
    rest.remove_prefix(n_sep + 1);
    const std::size_t p_sep = rest.find(':');
    const std::string after(rest.substr(0, p_sep));
    char* end = nullptr;
    spec.after_n = std::strtoull(after.c_str(), &end, 10);
    if (end == after.c_str() || *end != '\0') {
      return fail("after_n is not a number: \"" + after + "\"");
    }
    if (p_sep != std::string_view::npos) {
      const std::string prob(rest.substr(p_sep + 1));
      end = nullptr;
      spec.probability = std::strtod(prob.c_str(), &end);
      if (end == prob.c_str() || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return fail("probability must be in [0,1]: \"" + prob + "\"");
      }
    }
  }
  Arm(site, spec);
  return true;
}

int ArmFromEnv(std::string_view env) {
  int armed = 0;
  while (!env.empty()) {
    const std::size_t comma = env.find(',');
    const std::string_view directive = env.substr(0, comma);
    if (!directive.empty()) {
      std::string error;
      if (ArmFromString(directive, &error)) {
        ++armed;
      } else {
        std::fprintf(stderr, "dbll: ignoring DBLL_FAULT directive: %s\n",
                     error.c_str());
      }
    }
    if (comma == std::string_view::npos) break;
    env.remove_prefix(comma + 1);
  }
  return armed;
}

void Disarm(std::string_view site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  reg.sites.erase(it);
  internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mutex);
  internal::g_armed_sites.fetch_sub(static_cast<int>(reg.sites.size()),
                                    std::memory_order_relaxed);
  reg.sites.clear();
}

std::uint64_t HitCount(std::string_view site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t FireCount(std::string_view site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::optional<Error> Hit(std::string_view site) {
  std::uint32_t delay_ms = 0;
  std::optional<Error> injected;
  {
    Registry& reg = Reg();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return std::nullopt;
    SiteState& state = it->second;
    const std::uint64_t ordinal = state.hits++;
    if (ordinal < state.spec.after_n) return std::nullopt;
    if (state.spec.max_fires != 0 && state.fires >= state.spec.max_fires) {
      return std::nullopt;
    }
    if (state.spec.probability < 1.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(state.rng) >= state.spec.probability) return std::nullopt;
    }
    ++state.fires;
    delay_ms = state.spec.delay_ms;
    if (state.spec.kind != ErrorKind::kNone) {
      injected = Error(state.spec.kind,
                       "injected fault at site " + std::string(site));
    }
  }
  // The stall happens outside the registry lock so concurrent fault points
  // on other sites are not serialized behind a sleeping one.
  if (delay_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return injected;
}

}  // namespace dbll::fault
