#include "dbll/support/code_buffer.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dbll {
namespace {

std::size_t PageSize() {
  static const std::size_t kPage = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

std::size_t RoundUpToPage(std::size_t size) {
  const std::size_t page = PageSize();
  return (size + page - 1) / page * page;
}

}  // namespace

CodeBuffer::~CodeBuffer() {
  if (base_ != nullptr) {
    ::munmap(base_, capacity_);
  }
}

CodeBuffer::CodeBuffer(CodeBuffer&& other) noexcept
    : base_(other.base_),
      capacity_(other.capacity_),
      used_(other.used_),
      sealed_(other.sealed_) {
  other.base_ = nullptr;
  other.capacity_ = 0;
  other.used_ = 0;
  other.sealed_ = false;
}

CodeBuffer& CodeBuffer::operator=(CodeBuffer&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) {
      ::munmap(base_, capacity_);
    }
    base_ = other.base_;
    capacity_ = other.capacity_;
    used_ = other.used_;
    sealed_ = other.sealed_;
    other.base_ = nullptr;
    other.capacity_ = 0;
    other.used_ = 0;
    other.sealed_ = false;
  }
  return *this;
}

Expected<CodeBuffer> CodeBuffer::Allocate(std::size_t size) {
  if (size == 0) {
    return Error(ErrorKind::kBadConfig, "code buffer size must be non-zero");
  }
  const std::size_t capacity = RoundUpToPage(size);
  void* mem = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return Error(ErrorKind::kResourceLimit,
                 std::string("mmap failed: ") + std::strerror(errno));
  }
  return CodeBuffer(static_cast<std::uint8_t*>(mem), capacity);
}

Expected<CodeBuffer> CodeBuffer::AllocateNear(std::uint64_t hint,
                                              std::size_t size) {
  if (size == 0) {
    return Error(ErrorKind::kBadConfig, "code buffer size must be non-zero");
  }
  const std::size_t capacity = RoundUpToPage(size);
  // Probe a few offsets around the hint; the kernel takes the address as a
  // suggestion and may place the mapping elsewhere, so verify the distance.
  const std::int64_t kProbeOffsets[] = {
      1 << 24, -(1 << 24), 1 << 26, -(1 << 26), 1 << 28, -(1 << 28),
  };
  for (std::int64_t offset : kProbeOffsets) {
    const std::uint64_t candidate =
        (hint + static_cast<std::uint64_t>(offset)) & ~0xfffull;
    void* mem = ::mmap(reinterpret_cast<void*>(candidate), capacity,
                       PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) continue;
    const std::int64_t distance =
        static_cast<std::int64_t>(reinterpret_cast<std::uint64_t>(mem)) -
        static_cast<std::int64_t>(hint);
    if (distance > INT32_MIN / 2 && distance < INT32_MAX / 2) {
      return CodeBuffer(static_cast<std::uint8_t*>(mem), capacity);
    }
    ::munmap(mem, capacity);
  }
  return Allocate(size);
}

Expected<std::uint8_t*> CodeBuffer::Append(std::span<const std::uint8_t> code) {
  DBLL_TRY(std::uint8_t * dest, Reserve(code.size()));
  std::memcpy(dest, code.data(), code.size());
  return dest;
}

Expected<std::uint8_t*> CodeBuffer::Reserve(std::size_t size) {
  if (sealed_) {
    return Error(ErrorKind::kBadConfig, "cannot write to a sealed code buffer");
  }
  if (size > remaining()) {
    return Error(ErrorKind::kResourceLimit,
                 "code buffer exhausted (used " + std::to_string(used_) +
                     " of " + std::to_string(capacity_) + " bytes, need " +
                     std::to_string(size) + " more)");
  }
  std::uint8_t* dest = base_ + used_;
  used_ += size;
  return dest;
}

void CodeBuffer::Reset(std::size_t pos) {
  if (pos <= capacity_) {
    used_ = pos;
  }
}

Status CodeBuffer::Seal() {
  if (base_ == nullptr) {
    return Error(ErrorKind::kBadConfig, "cannot seal an empty code buffer");
  }
  if (::mprotect(base_, capacity_, PROT_READ | PROT_EXEC) != 0) {
    return Error(ErrorKind::kResourceLimit,
                 std::string("mprotect(rx) failed: ") + std::strerror(errno));
  }
  sealed_ = true;
  return Status::Ok();
}

Status CodeBuffer::Unseal() {
  if (base_ == nullptr) {
    return Error(ErrorKind::kBadConfig, "cannot unseal an empty code buffer");
  }
  if (::mprotect(base_, capacity_, PROT_READ | PROT_WRITE) != 0) {
    return Error(ErrorKind::kResourceLimit,
                 std::string("mprotect(rw) failed: ") + std::strerror(errno));
  }
  sealed_ = false;
  return Status::Ok();
}

}  // namespace dbll
