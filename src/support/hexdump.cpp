#include "dbll/support/hexdump.h"

#include <cstdio>

namespace dbll {

std::string HexBytes(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 3);
  char buf[4];
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::snprintf(buf, sizeof(buf), i == 0 ? "%02x" : " %02x", bytes[i]);
    out += buf;
  }
  return out;
}

std::string HexDump(std::span<const std::uint8_t> bytes, std::uint64_t base_address) {
  std::string out;
  char buf[32];
  for (std::size_t line = 0; line < bytes.size(); line += 16) {
    std::snprintf(buf, sizeof(buf), "%016llx  ",
                  static_cast<unsigned long long>(base_address + line));
    out += buf;
    const std::size_t end = std::min(line + 16, bytes.size());
    for (std::size_t i = line; i < end; ++i) {
      std::snprintf(buf, sizeof(buf), "%02x ", bytes[i]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string HexValue(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace dbll
