// dbll -- signal-guarded execution frames (see
// include/dbll/support/crashguard.h for the model and the signal-safety
// rules).
#include "dbll/support/crashguard.h"

#include <csignal>
#include <cstdlib>

#include <signal.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>

namespace dbll::support {

namespace {

/// The four synchronous faults rewritten code can raise. Order defines the
/// index into the saved-handler table.
constexpr int kGuardSignals[] = {SIGSEGV, SIGILL, SIGBUS, SIGFPE};
constexpr int kGuardSignalCount = 4;

int SignalIndex(int signo) {
  for (int i = 0; i < kGuardSignalCount; ++i) {
    if (kGuardSignals[i] == signo) return i;
  }
  return -1;
}

/// Handlers that were installed before ours (sanitizer runtimes, embedder
/// crash reporters). Written once under the install lock, read by the
/// handler; never modified afterwards.
struct sigaction g_old_actions[kGuardSignalCount];

std::atomic<bool> g_installed{false};
std::atomic<std::uint64_t> g_recovered{0};

/// Innermost frame of the current thread (faults are synchronous, so the
/// faulting thread is the one whose chain we walk).
thread_local GuardFrame* t_top_frame = nullptr;

/// Per-thread alternate signal stack, created the first time this thread
/// arms a frame so a stack-overflow SIGSEGV is still catchable. If another
/// runtime (e.g. ASan) already installed one, it is kept.
struct AltStack {
  void* memory = nullptr;
  bool owned = false;
  bool checked = false;

  ~AltStack() {
    if (owned) {
      stack_t ss{};
      ss.ss_flags = SS_DISABLE;
      ::sigaltstack(&ss, nullptr);
      std::free(memory);
    }
  }
};

thread_local AltStack t_alt_stack;

void EnsureAltStack() {
  if (t_alt_stack.checked) return;
  t_alt_stack.checked = true;
  stack_t current{};
  if (::sigaltstack(nullptr, &current) == 0 &&
      (current.ss_flags & SS_DISABLE) == 0) {
    return;  // a foreign alternate stack is already in effect; keep it
  }
  const std::size_t size =
      std::max<std::size_t>(static_cast<std::size_t>(SIGSTKSZ), 64 * 1024);
  void* mem = std::malloc(size);
  if (mem == nullptr) return;  // degraded: no altstack, plain faults still work
  stack_t ss{};
  ss.ss_sp = mem;
  ss.ss_size = size;
  ss.ss_flags = 0;
  if (::sigaltstack(&ss, nullptr) != 0) {
    std::free(mem);
    return;
  }
  t_alt_stack.memory = mem;
  t_alt_stack.owned = true;
}

std::uint64_t FaultPc(void* ucontext_raw) {
#if defined(__x86_64__)
  if (ucontext_raw != nullptr) {
    const auto* uc = static_cast<const ucontext_t*>(ucontext_raw);
    return static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_RIP]);
  }
#else
  (void)ucontext_raw;
#endif
  return 0;
}

}  // namespace

/// The handler's window into GuardFrame internals (friend of GuardFrame).
struct GuardFrameAccess {
  /// Async-signal-safe: touches only the thread-local frame chain, one
  /// lock-free atomic, and the jump buffer of the frame it recovers into.
  static void Handle(int signo, siginfo_t* info, void* ucontext_raw) {
    for (GuardFrame* frame = t_top_frame; frame != nullptr;
         frame = frame->prev_) {
      if (frame->armed_ == 0) continue;
      frame->armed_ = 0;  // a dead jump buffer must never be re-entered
      frame->fault_.signo = signo;
      frame->fault_.fault_addr =
          info != nullptr
              ? reinterpret_cast<std::uint64_t>(info->si_addr)
              : 0;
      frame->fault_.fault_pc = FaultPc(ucontext_raw);
      g_recovered.fetch_add(1, std::memory_order_relaxed);
      siglongjmp(frame->jump_buffer_, 1);
    }

    // No armed frame: this fault is not ours. Chain to whoever was
    // installed before us so sanitizers/crash reporters keep working.
    const int index = SignalIndex(signo);
    const struct sigaction* old =
        index >= 0 ? &g_old_actions[index] : nullptr;
    if (old != nullptr && (old->sa_flags & SA_SIGINFO) != 0 &&
        old->sa_sigaction != nullptr) {
      old->sa_sigaction(signo, info, ucontext_raw);
      return;
    }
    if (old != nullptr && (old->sa_flags & SA_SIGINFO) == 0) {
      if (old->sa_handler == SIG_IGN) return;
      if (old->sa_handler != SIG_DFL && old->sa_handler != nullptr) {
        old->sa_handler(signo);
        return;
      }
    }
    // Default action: reinstate it and re-raise. The signal is blocked
    // while we run, so it delivers (and terminates) on handler return.
    struct sigaction dfl{};
    dfl.sa_handler = SIG_DFL;
    ::sigemptyset(&dfl.sa_mask);
    ::sigaction(signo, &dfl, nullptr);
    ::raise(signo);
  }
};

namespace {

void GuardHandler(int signo, siginfo_t* info, void* ucontext_raw) {
  GuardFrameAccess::Handle(signo, info, ucontext_raw);
}

}  // namespace

const char* GuardSignalName(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGILL: return "SIGILL";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

bool InstallCrashGuard() {
  // The install itself is rare and may lock; the handler never does.
  static std::atomic<bool> g_install_done{false};
  static std::atomic<bool> g_install_ok{false};
  if (g_install_done.load(std::memory_order_acquire)) {
    return g_install_ok.load(std::memory_order_relaxed);
  }
  static std::atomic_flag installing = ATOMIC_FLAG_INIT;
  if (installing.test_and_set()) {
    // Lost the race; spin until the winner published its result.
    while (!g_install_done.load(std::memory_order_acquire)) {
    }
    return g_install_ok.load(std::memory_order_relaxed);
  }
  bool ok = true;
  for (int i = 0; i < kGuardSignalCount; ++i) {
    struct sigaction action{};
    action.sa_sigaction = &GuardHandler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_SIGINFO | SA_ONSTACK;
    if (::sigaction(kGuardSignals[i], &action, &g_old_actions[i]) != 0) {
      ok = false;
    }
  }
  g_install_ok.store(ok, std::memory_order_relaxed);
  g_installed.store(ok, std::memory_order_relaxed);
  g_install_done.store(true, std::memory_order_release);
  return ok;
}

bool CrashGuardInstalled() {
  return g_installed.load(std::memory_order_relaxed);
}

std::uint64_t CrashGuardRecoveredFaults() {
  return g_recovered.load(std::memory_order_relaxed);
}

GuardFrame::GuardFrame() {
  InstallCrashGuard();
  EnsureAltStack();
  prev_ = t_top_frame;
  t_top_frame = this;
}

GuardFrame::~GuardFrame() {
  armed_ = 0;
  // Frames are strictly stack-ordered per thread, but tolerate an
  // out-of-order teardown by unlinking from wherever we are in the chain.
  if (t_top_frame == this) {
    t_top_frame = prev_;
    return;
  }
  for (GuardFrame* f = t_top_frame; f != nullptr; f = f->prev_) {
    if (f->prev_ == this) {
      f->prev_ = prev_;
      return;
    }
  }
}

}  // namespace dbll::support
