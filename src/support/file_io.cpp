// dbll -- POSIX file I/O helpers (see include/dbll/support/file_io.h).
#include "dbll/support/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace dbll::support {

namespace {

Error IoError(const std::string& what, const std::string& path, int err) {
  return Error(ErrorKind::kIo,
               what + " '" + path + "': " + std::strerror(err));
}

}  // namespace

Expected<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError("open", path, errno);
  std::vector<std::uint8_t> bytes;
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    bytes.reserve(static_cast<std::size_t>(st.st_size));
  }
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return IoError("read", path, err);
    }
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

Status WriteFileAtomic(const std::string& path, const void* data,
                       std::size_t size) {
  // Unique temp in the target's directory: rename(2) must not cross
  // filesystems, and the unique name keeps concurrent writers of the same
  // target from clobbering each other's in-progress temp.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open", tmp, errno);
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoError("write", tmp, err);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return IoError("close", tmp, err);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return IoError("rename", path, err);
  }
  return Status::Ok();
}

Status EnsureDir(const std::string& path) {
  if (path.empty()) {
    return Error(ErrorKind::kBadConfig, "EnsureDir: empty path");
  }
  // Create each prefix in turn (mkdir -p); EEXIST at any level is fine.
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return IoError("mkdir", prefix, errno);
    }
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return IoError("not a directory", path, ENOTDIR);
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return IoError("unlink", path, errno);
  }
  return Status::Ok();
}

Expected<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return IoError("opendir", dir, errno);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) names.push_back(name);
  }
  ::closedir(d);
  return names;
}

bool DirExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Expected<std::uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return IoError("stat", path, errno);
  return static_cast<std::uint64_t>(st.st_size);
}

FileLock::FileLock(const std::string& lock_path) {
  fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  if (::flock(fd_, LOCK_EX) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

std::size_t SafeReadMemory(std::uint64_t addr, void* out, std::size_t size) {
  if (size == 0) return 0;
  // Kernel-mediated copy from our own address space: an unmapped page makes
  // the syscall return a short count (or fail) instead of faulting us.
  // Reading page by page turns "fails at page N" into "returns N pages".
  const std::uint64_t kPage = 4096;
  std::size_t total = 0;
  auto* dst = static_cast<std::uint8_t*>(out);
  while (total < size) {
    const std::uint64_t cursor = addr + total;
    const std::uint64_t page_room = kPage - (cursor % kPage);
    const std::size_t chunk =
        static_cast<std::size_t>(page_room) < size - total
            ? static_cast<std::size_t>(page_room)
            : size - total;
    struct iovec local {
      dst + total, chunk
    };
    struct iovec remote {
      reinterpret_cast<void*>(cursor), chunk
    };
    const ssize_t n = ::process_vm_readv(::getpid(), &local, 1, &remote, 1, 0);
    if (n <= 0) break;
    total += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < chunk) break;
  }
  return total;
}

}  // namespace dbll::support
