// dbll -- cpuid/xgetbv host detection behind the ISA ladder (cpu_features.h).
#include "dbll/support/cpu_features.h"

#include <cstdlib>

namespace dbll::support {

namespace {

// cpuid(1).ecx bits (Intel SDM Vol. 2A, Table 3-10).
constexpr std::uint32_t kLeaf1EcxSse3 = 1u << 0;
constexpr std::uint32_t kLeaf1EcxSsse3 = 1u << 9;
constexpr std::uint32_t kLeaf1EcxFma = 1u << 12;
constexpr std::uint32_t kLeaf1EcxSse41 = 1u << 19;
constexpr std::uint32_t kLeaf1EcxSse42 = 1u << 20;
constexpr std::uint32_t kLeaf1EcxPopcnt = 1u << 23;
constexpr std::uint32_t kLeaf1EcxOsxsave = 1u << 27;
constexpr std::uint32_t kLeaf1EcxAvx = 1u << 28;

// cpuid(7,0).ebx bits.
constexpr std::uint32_t kLeaf7EbxBmi1 = 1u << 3;
constexpr std::uint32_t kLeaf7EbxAvx2 = 1u << 5;
constexpr std::uint32_t kLeaf7EbxBmi2 = 1u << 8;
constexpr std::uint32_t kLeaf7EbxAvx512f = 1u << 16;
constexpr std::uint32_t kLeaf7EbxAvx512vl = 1u << 31;

// cpuid(0x80000001).ecx bit 5: LZCNT (AMD calls the group ABM).
constexpr std::uint32_t kExt1EcxLzcnt = 1u << 5;

// XCR0 state-component bits. AVX needs the OS to save XMM+YMM state;
// AVX-512 additionally needs opmask + ZMM_Hi256 + Hi16_ZMM.
constexpr std::uint64_t kXcr0AvxMask = 0x6;     // SSE | YMM
constexpr std::uint64_t kXcr0Avx512Mask = 0xE0; // opmask | ZMM_Hi256 | Hi16_ZMM

#if defined(__x86_64__)
void Cpuid(std::uint32_t leaf, std::uint32_t subleaf, std::uint32_t out[4]) {
  __asm__ __volatile__("cpuid"
                       : "=a"(out[0]), "=b"(out[1]), "=c"(out[2]), "=d"(out[3])
                       : "a"(leaf), "c"(subleaf));
}

std::uint64_t Xgetbv0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0u));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuidSnapshot ReadHostSnapshot() {
  CpuidSnapshot snapshot;
  std::uint32_t regs[4] = {0, 0, 0, 0};
  Cpuid(0, 0, regs);
  const std::uint32_t max_leaf = regs[0];
  if (max_leaf >= 1) {
    Cpuid(1, 0, regs);
    snapshot.leaf1_ecx = regs[2];
  }
  if (max_leaf >= 7) {
    Cpuid(7, 0, regs);
    snapshot.leaf7_ebx = regs[1];
  }
  Cpuid(0x80000000u, 0, regs);
  if (regs[0] >= 0x80000001u) {
    Cpuid(0x80000001u, 0, regs);
    snapshot.ext1_ecx = regs[2];
  }
  // xgetbv is only architecturally defined once OSXSAVE says the OS turned
  // XSAVE on; executing it earlier would #UD.
  if (snapshot.leaf1_ecx & kLeaf1EcxOsxsave) snapshot.xcr0 = Xgetbv0();
  return snapshot;
}
#else
CpuidSnapshot ReadHostSnapshot() { return {}; }
#endif

}  // namespace

CpuFeatures DecodeCpuFeatures(const CpuidSnapshot& snapshot) {
  CpuFeatures f;
  f.sse3 = (snapshot.leaf1_ecx & kLeaf1EcxSse3) != 0;
  f.ssse3 = (snapshot.leaf1_ecx & kLeaf1EcxSsse3) != 0;
  f.sse41 = (snapshot.leaf1_ecx & kLeaf1EcxSse41) != 0;
  f.sse42 = (snapshot.leaf1_ecx & kLeaf1EcxSse42) != 0;
  f.popcnt = (snapshot.leaf1_ecx & kLeaf1EcxPopcnt) != 0;
  f.bmi1 = (snapshot.leaf7_ebx & kLeaf7EbxBmi1) != 0;
  f.bmi2 = (snapshot.leaf7_ebx & kLeaf7EbxBmi2) != 0;
  f.lzcnt = (snapshot.ext1_ecx & kExt1EcxLzcnt) != 0;

  // The whole AVX family is gated on the OS actually context-switching the
  // wide register state: OSXSAVE set and XCR0 enabling XMM+YMM.
  const bool osxsave = (snapshot.leaf1_ecx & kLeaf1EcxOsxsave) != 0;
  const bool ymm_ok =
      osxsave && (snapshot.xcr0 & kXcr0AvxMask) == kXcr0AvxMask;
  const bool zmm_ok =
      ymm_ok && (snapshot.xcr0 & kXcr0Avx512Mask) == kXcr0Avx512Mask;
  f.avx = ymm_ok && (snapshot.leaf1_ecx & kLeaf1EcxAvx) != 0;
  f.fma = f.avx && (snapshot.leaf1_ecx & kLeaf1EcxFma) != 0;
  f.avx2 = f.avx && (snapshot.leaf7_ebx & kLeaf7EbxAvx2) != 0;
  f.avx512f = zmm_ok && (snapshot.leaf7_ebx & kLeaf7EbxAvx512f) != 0;
  f.avx512vl = f.avx512f && (snapshot.leaf7_ebx & kLeaf7EbxAvx512vl) != 0;
  return f;
}

IsaLevel LevelFromFeatures(const CpuFeatures& f) {
  const bool v3 = f.sse42 && f.avx && f.avx2 && f.fma && f.bmi1 && f.bmi2 &&
                  f.popcnt && f.lzcnt;
  if (!v3) return IsaLevel::kBaseline;
  if (f.avx512f && f.avx512vl) return IsaLevel::kAvx512;
  return IsaLevel::kAvx2;
}

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = DecodeCpuFeatures(ReadHostSnapshot());
  return features;
}

IsaLevel HostIsaLevel() {
  static const IsaLevel level = LevelFromFeatures(HostCpuFeatures());
  return level;
}

IsaLevel EffectiveIsaLevel() {
  IsaLevel level = HostIsaLevel();
  // Re-read per call (not cached): tests and operators mask with setenv at
  // runtime, and a stale cache would silently ignore them.
  if (const char* env = std::getenv("DBLL_JIT_ISA")) {
    IsaLevel forced;
    if (ParseIsaLevel(env, &forced) && forced < level) level = forced;
  }
  return level;
}

IsaLevel ResolveIsaLevel(int requested) {
  const IsaLevel effective = EffectiveIsaLevel();
  if (requested < 0) return effective;
  if (requested > static_cast<int>(effective)) return effective;
  return static_cast<IsaLevel>(requested);
}

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kBaseline:
      return "baseline";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "baseline";
}

bool ParseIsaLevel(const std::string& text, IsaLevel* out) {
  if (text == "baseline" || text == "0") {
    *out = IsaLevel::kBaseline;
    return true;
  }
  if (text == "avx2" || text == "1") {
    *out = IsaLevel::kAvx2;
    return true;
  }
  if (text == "avx512" || text == "2") {
    *out = IsaLevel::kAvx512;
    return true;
  }
  return false;
}

std::string IsaFeatureString(IsaLevel level) {
  std::string features;
  switch (level) {
    case IsaLevel::kBaseline:
      break;  // generic x86-64: SSE2, no extras
    case IsaLevel::kAvx2:
      features =
          "+sse3,+ssse3,+sse4.1,+sse4.2,+popcnt,+lzcnt,+bmi,+bmi2,+avx,"
          "+avx2,+fma";
      break;
    case IsaLevel::kAvx512:
      features =
          "+sse3,+ssse3,+sse4.1,+sse4.2,+popcnt,+lzcnt,+bmi,+bmi2,+avx,"
          "+avx2,+fma,+avx512f,+avx512vl";
      break;
  }
  if (const char* extra = std::getenv("DBLL_JIT_FEATURES")) {
    if (*extra != '\0') {
      if (!features.empty()) features += ',';
      features += extra;
    }
  }
  return features;
}

}  // namespace dbll::support
