#include "dbll/support/error.h"

#include <cstdio>

namespace dbll {

std::string_view ToString(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kNone: return "ok";
    case ErrorKind::kDecode: return "decode";
    case ErrorKind::kUnsupported: return "unsupported";
    case ErrorKind::kEncode: return "encode";
    case ErrorKind::kEmulate: return "emulate";
    case ErrorKind::kLift: return "lift";
    case ErrorKind::kJit: return "jit";
    case ErrorKind::kResourceLimit: return "resource-limit";
    case ErrorKind::kBadConfig: return "bad-config";
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kIo: return "io";
  }
  return "unknown";
}

std::string Error::Format() const {
  std::string out(ToString(kind_));
  out += ": ";
  out += message_;
  if (address_ != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (at 0x%llx)",
                  static_cast<unsigned long long>(address_));
    out += buf;
  }
  return out;
}

}  // namespace dbll
