// dbll -- Tier-1 (plain DBrew) degradation path of the compile service
// (see include/dbll/runtime/fallback.h for the tier chain design).
#include "dbll/runtime/fallback.h"

#include <cstring>

#include "dbll/dbrew/rewriter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/spec_cache.h"

namespace dbll::runtime {

std::string_view ToString(Tier tier) noexcept {
  switch (tier) {
    case Tier::kLlvm: return "tier0-llvm";
    case Tier::kDbrew: return "tier1-dbrew";
    case Tier::kGeneric: return "tier2-generic";
    case Tier::kBaseline: return "tier0a-baseline";
  }
  return "unknown";
}

bool IsTransient(ErrorKind kind) noexcept {
  return kind == ErrorKind::kResourceLimit;
}

bool IsDeterministic(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kDecode:
    case ErrorKind::kUnsupported:
    case ErrorKind::kEncode:
    case ErrorKind::kEmulate:
    case ErrorKind::kLift:
    case ErrorKind::kJit:
    case ErrorKind::kBadConfig:
      return true;
    default:
      return false;
  }
}

namespace {

/// Maps a public (Signature-ordered) parameter index to the DBrew SetParam
/// index, which counts GP argument registers only (rdi..r9). Mirrors the
/// int/sse split of the lifter's FindWrapperSlot.
Expected<int> GpParamIndex(const lift::Signature& signature, int index) {
  if (index < 0 ||
      static_cast<std::size_t>(index) >= signature.args.size()) {
    return Error(ErrorKind::kBadConfig,
                 "parameter index " + std::to_string(index) +
                     " out of range for the request signature");
  }
  if (signature.args[static_cast<std::size_t>(index)] != lift::ArgKind::kInt) {
    return Error(ErrorKind::kUnsupported,
                 "DBrew can only fix integer/pointer register parameters; "
                 "parameter " + std::to_string(index) + " is floating-point");
  }
  int gp_before = 0;
  for (int i = 0; i < index; ++i) {
    if (signature.args[static_cast<std::size_t>(i)] == lift::ArgKind::kInt) {
      ++gp_before;
    }
  }
  return gp_before;
}

}  // namespace

Expected<Tier1Result> Tier1Rewrite(const CompileRequest& request) {
  DBLL_TRACE_SPAN("fallback.tier1");
  auto rewriter = std::make_unique<dbrew::Rewriter>(request.address);
  for (const SpecAction& spec : request.specs) {
    if (spec.kind == SpecAction::Kind::kConstRange) {
      // Not bound to a parameter: the region only constrains the
      // meta-emulator's memory model. Same staleness contract as kConstMem.
      if (spec.mem_addr == 0) {
        return Error(ErrorKind::kUnsupported,
                     "const-range specialization carries no live source "
                     "address; cannot degrade to a DBrew rewrite");
      }
      if (std::memcmp(reinterpret_cast<const void*>(spec.mem_addr),
                      spec.bytes.data(), spec.bytes.size()) != 0) {
        return Error(ErrorKind::kUnsupported,
                     "const-range region changed since the request was made; "
                     "refusing a stale DBrew specialization",
                     spec.mem_addr);
      }
      rewriter->SetMemRange(spec.mem_addr, spec.mem_addr + spec.bytes.size());
      continue;
    }
    DBLL_TRY(int gp_index, GpParamIndex(request.signature, spec.index));
    if (spec.kind == SpecAction::Kind::kParam) {
      rewriter->SetParam(gp_index, spec.value);
    } else {
      // The LLVM tier redirects the parameter to a *copy* of the region
      // taken at request time; DBrew reads the live original. The two are
      // interchangeable only while the live contents still equal the copy.
      if (spec.mem_addr == 0) {
        return Error(ErrorKind::kUnsupported,
                     "const-mem specialization carries no live source "
                     "address; cannot degrade to a DBrew rewrite");
      }
      if (std::memcmp(reinterpret_cast<const void*>(spec.mem_addr),
                      spec.bytes.data(), spec.bytes.size()) != 0) {
        return Error(ErrorKind::kUnsupported,
                     "const-mem region changed since the request was made; "
                     "refusing a stale DBrew specialization",
                     spec.mem_addr);
      }
      rewriter->SetParam(gp_index, spec.mem_addr);
      rewriter->SetMemRange(spec.mem_addr, spec.mem_addr + spec.bytes.size());
    }
  }

  auto entry = rewriter->Rewrite();
  if (!entry && entry.error().kind() == ErrorKind::kResourceLimit) {
    // The paper's suggested recovery, as in RewriteOrOriginal: enlarge the
    // buffers and retry once before giving up on this tier.
    rewriter->config().code_buffer_size *= 4;
    rewriter->config().max_blocks *= 4;
    entry = rewriter->Rewrite();
  }
  if (!entry) return std::move(entry).error();
  return Tier1Result{*entry, std::move(rewriter)};
}

}  // namespace dbll::runtime
