// dbll -- asynchronous compile service (see
// include/dbll/runtime/compile_service.h for the design).
#include "dbll/runtime/compile_service.h"

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "dbll/analysis/audit.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/obs/obs.h"
#include "dbll/support/fault.h"

namespace dbll::runtime {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-wide mirror of CacheStats in the obs registry: the service
/// increments these at the same points as its per-service stats_, so a
/// Registry snapshot enumerates the cache alongside every other subsystem.
/// Handles are resolved once (registry pointers are stable).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& coalesced;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& failures;
  obs::Counter& compiles;
  obs::Counter& lift_ns;
  obs::Counter& opt_ns;
  obs::Counter& jit_ns;
  obs::Counter& tier1_ns;
  obs::Counter& installs;
  obs::Counter& tier0_fail;
  obs::Counter& tier1_serve;
  obs::Counter& tier2_serve;
  obs::Counter& negative_hit;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& queue_rejected;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& install_ns;

  static CacheMetrics& Get() {
    static CacheMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new CacheMetrics{r.GetCounter("cache.hits"),
                              r.GetCounter("cache.coalesced"),
                              r.GetCounter("cache.misses"),
                              r.GetCounter("cache.evictions"),
                              r.GetCounter("cache.failures"),
                              r.GetCounter("cache.compiles"),
                              r.GetCounter("cache.lift_ns"),
                              r.GetCounter("cache.opt_ns"),
                              r.GetCounter("cache.jit_ns"),
                              r.GetCounter("cache.tier1_ns"),
                              r.GetCounter("cache.installs"),
                              r.GetCounter("fallback.tier0_fail"),
                              r.GetCounter("fallback.tier1_serve"),
                              r.GetCounter("fallback.tier2_serve"),
                              r.GetCounter("fallback.negative_hit"),
                              r.GetCounter("fallback.retries"),
                              r.GetCounter("fallback.timeouts"),
                              r.GetCounter("cache.queue_rejected"),
                              r.GetHistogram("cache.queue_wait_ns"),
                              r.GetHistogram("cache.install_ns")};
    }();
    return *instance;
  }
};

/// Decorrelated backoff before a transient-failure retry: uniform in
/// [base, 3*base] ms, capped at 50ms so a retry can never stall the queue
/// for long. Per-thread PRNG; the seed does not need to be reproducible
/// (only the *decision* to retry is deterministic, the jitter is not).
std::uint32_t BackoffMs(std::uint32_t base_ms) {
  if (base_ms == 0) return 0;
  static thread_local std::mt19937_64 rng(
      0xdb11b0ffULL ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::uniform_int_distribution<std::uint32_t> dist(base_ms, 3 * base_ms);
  std::uint32_t ms = dist(rng);
  return ms > 50 ? 50u : ms;
}

}  // namespace

/// Shared state of one cache entry. `target` starts as the generic entry and
/// is atomically swapped to the specialized one; readers on hot paths touch
/// nothing else. The mutex/cv pair only serves blocking waiters.
///
/// `generation` implements straggler discard: the deadline monitor bumps it
/// when it takes a wedged compile over, so the worker's eventual Finish()
/// (carrying the generation it started with) is rejected and cannot clobber
/// the already-installed fallback.
struct FunctionHandle::Slot {
  std::atomic<std::uint64_t> target{0};
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(FunctionHandle::State::kPending)};
  std::atomic<std::uint8_t> tier{static_cast<std::uint8_t>(Tier::kGeneric)};
  std::atomic<std::uint32_t> generation{0};
  std::uint64_t generic = 0;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::vector<Error> errors;  // per-tier failure chain, root cause first
  StageTimes times;           // written once before the terminal state

  /// Publishes a terminal state iff `expected_generation` still matches (and
  /// the slot is still pending). Returns false when the result was discarded
  /// -- the monitor degraded this slot while the caller was computing.
  bool Finish(std::uint32_t expected_generation,
              FunctionHandle::State terminal, Tier serving_tier,
              std::uint64_t entry, std::vector<Error> chain,
              StageTimes stage_times) {
    {
      // The stores happen under the mutex so a waiter cannot check the state
      // and park between them and the notify; lock-free target()/state()
      // readers are unaffected. The generation check shares the same mutex
      // with the monitor's bump, so take-over and finish serialize cleanly.
      std::lock_guard<std::mutex> lock(mutex);
      if (generation.load(std::memory_order_relaxed) != expected_generation) {
        return false;
      }
      if (static_cast<FunctionHandle::State>(
              state.load(std::memory_order_relaxed)) !=
          FunctionHandle::State::kPending) {
        return false;
      }
      errors = std::move(chain);
      times = stage_times;
      if (terminal == FunctionHandle::State::kSpecialized) {
        // The swap: from now on every target() reader calls specialized code.
        target.store(entry, std::memory_order_release);
      }
      tier.store(static_cast<std::uint8_t>(serving_tier),
                 std::memory_order_release);
      state.store(static_cast<std::uint8_t>(terminal),
                  std::memory_order_release);
    }
    cv.notify_all();
    return true;
  }
};

std::uint64_t FunctionHandle::target() const {
  if (!slot_) return 0;
  return slot_->target.load(std::memory_order_acquire);
}

FunctionHandle::State FunctionHandle::state() const {
  if (!slot_) return State::kFailed;
  return static_cast<State>(slot_->state.load(std::memory_order_acquire));
}

Tier FunctionHandle::tier() const {
  if (!slot_) return Tier::kGeneric;
  return static_cast<Tier>(slot_->tier.load(std::memory_order_acquire));
}

std::uint64_t FunctionHandle::wait() const {
  if (!slot_) return 0;
  std::unique_lock<std::mutex> lock(slot_->mutex);
  slot_->cv.wait(lock, [&] { return state() != State::kPending; });
  lock.unlock();
  return target();
}

Error FunctionHandle::error() const {
  if (!slot_) {
    return Error(ErrorKind::kBadConfig,
                 "invalid (default-constructed) FunctionHandle");
  }
  std::lock_guard<std::mutex> lock(slot_->mutex);
  if (slot_->errors.empty()) return Error();
  return slot_->errors.front();
}

std::vector<Error> FunctionHandle::error_chain() const {
  if (!slot_) return {};
  std::lock_guard<std::mutex> lock(slot_->mutex);
  return slot_->errors;
}

StageTimes FunctionHandle::times() const {
  if (!slot_) return {};
  std::lock_guard<std::mutex> lock(slot_->mutex);
  return slot_->times;
}

CompileService::CompileService() : CompileService(Options{}) {}

CompileService::CompileService(Options options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Jobs never started still have waiters parked on their slots: fail them
    // so wait() cannot deadlock against a dead pool.
    for (Job& job : queue_) {
      job.slot->Finish(
          job.slot->generation.load(std::memory_order_relaxed),
          FunctionHandle::State::kFailed, Tier::kGeneric, 0,
          {Error(ErrorKind::kInternal,
                 "compile service shut down before compiling")},
          StageTimes{});
    }
    queue_.clear();
  }
  work_cv_.notify_all();
  monitor_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  monitor_.join();
}

FunctionHandle CompileService::Request(const CompileRequest& request) {
  SpecKey key(request);
  std::shared_ptr<FunctionHandle::Slot> slot;
  bool rejected = false;
  Error reject_error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(key);
    if (it != table_.end()) {
      // Touch the LRU position and classify the hit.
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      it->second.lru_pos = lru_.begin();
      const auto state = static_cast<FunctionHandle::State>(
          it->second.slot->state.load(std::memory_order_acquire));
      if (state == FunctionHandle::State::kPending) {
        ++stats_.coalesced;
        CacheMetrics::Get().coalesced.Add(1);
      } else {
        ++stats_.hits;
        CacheMetrics::Get().hits.Add(1);
      }
      return FunctionHandle(it->second.slot);
    }
    ++stats_.misses;
    CacheMetrics::Get().misses.Add(1);
    slot = std::make_shared<FunctionHandle::Slot>();
    slot->generic = request.address;
    slot->target.store(request.address, std::memory_order_release);

    // Admission control happens *before* the table insert: a rejected
    // request must not pin its failure into the cache -- the next request
    // for the same key deserves a fresh try once the queue drains.
    if (fault::AnyArmed()) {
      if (auto injected = fault::Hit("cache.enqueue")) {
        rejected = true;
        reject_error = *std::move(injected);
      }
    }
    if (!rejected && options_.max_queue != 0 &&
        queue_.size() >= options_.max_queue) {
      rejected = true;
      ++stats_.queue_rejected;
      CacheMetrics::Get().queue_rejected.Add(1);
      reject_error = Error(
          ErrorKind::kResourceLimit,
          "compile queue is full (max_queue=" +
              std::to_string(options_.max_queue) +
              "); serving the generic entry",
          request.address);
    }
    if (!rejected) {
      lru_.push_front(key);
      table_.emplace(key, TableEntry{slot, lru_.begin()});
      EvictIfNeeded();
      Job job;
      job.request = request;
      job.slot = slot;
      job.key = std::move(key);
      job.enqueue_ns = NowNs();
      job.deadline_ms = request.deadline_ms != 0
                            ? request.deadline_ms
                            : options_.default_deadline_ms;
      auto negative = negative_.find(job.key);
      if (negative != negative_.end()) {
        job.skip_tier0 = true;
        job.negative_error = negative->second;
        ++stats_.negative_hits;
        CacheMetrics::Get().negative_hit.Add(1);
      }
      queue_.push_back(std::move(job));
    }
  }
  if (rejected) {
    RejectImmediately(slot, std::move(reject_error));
  } else {
    work_cv_.notify_one();
  }
  return FunctionHandle(slot);
}

Expected<std::uint64_t> CompileService::CompileSync(
    const CompileRequest& request) {
  FunctionHandle handle = Request(request);
  const std::uint64_t entry = handle.wait();
  if (handle.state() == FunctionHandle::State::kFailed) {
    return handle.error();
  }
  return entry;
}

void CompileService::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_jobs_ == 0; });
}

void CompileService::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.evictions += table_.size();
  CacheMetrics::Get().evictions.Add(table_.size());
  table_.clear();
  lru_.clear();
}

void CompileService::set_default_deadline_ms(std::uint32_t deadline_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.default_deadline_ms = deadline_ms;
}

CacheStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileService::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

Error CompileService::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void CompileService::EvictIfNeeded() {
  if (options_.capacity == 0) return;
  // Walk from the least-recently-used end; pending entries are pinned (their
  // compile is still running and must stay discoverable for coalescing).
  auto it = lru_.end();
  while (table_.size() > options_.capacity && it != lru_.begin()) {
    --it;
    auto found = table_.find(*it);
    if (found == table_.end()) {  // defensive; table_ and lru_ move together
      it = lru_.erase(it);
      continue;
    }
    const auto state = static_cast<FunctionHandle::State>(
        found->second.slot->state.load(std::memory_order_acquire));
    if (state == FunctionHandle::State::kPending) continue;
    table_.erase(found);
    it = lru_.erase(it);
    ++stats_.evictions;
    CacheMetrics::Get().evictions.Add(1);
  }
}

void CompileService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_jobs_;
    }
    CompileOne(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_jobs_;
      if (queue_.empty() && active_jobs_ == 0) idle_cv_.notify_all();
    }
  }
}

Error CompileService::TryTier0(const CompileRequest& request,
                               StageTimes& times, std::uint64_t* entry) {
  Error failure;

  // Stage 1: decode + lift (+ IR-level specialization, which mutates the
  // pre-optimization module and is therefore part of this stage).
  const std::uint64_t t0 = NowNs();
  lift::Lifter lifter(request.config);
  auto lifted = lifter.Lift(request.address, request.signature);
  if (!lifted.has_value()) {
    failure = std::move(lifted).error();
  } else {
    for (const SpecAction& spec : request.specs) {
      Status status =
          spec.kind == SpecAction::Kind::kParam
              ? lifted->SpecializeParam(spec.index, spec.value)
              : lifted->SpecializeParamToConstMem(spec.index,
                                                  spec.bytes.data(),
                                                  spec.bytes.size());
      if (!status.ok()) {
        failure = status.error();
        break;
      }
    }
  }
  times.lift_ns += NowNs() - t0;

  // Stage 2: optimization pipeline.
  if (failure.ok()) {
    const std::uint64_t t1 = NowNs();
    Status status = lifted->Optimize();
    times.opt_ns += NowNs() - t1;
    if (!status.ok()) failure = status.error();

    // Stage 3: JIT codegen. Module installation into the shared LLJIT
    // session is serialized; lift and optimize above run fully parallel.
    if (failure.ok()) {
      const std::uint64_t t2 = NowNs();
      std::lock_guard<std::mutex> jit_lock(jit_mutex_);
      auto compiled = lifted->Compile(jit_);
      times.jit_ns += NowNs() - t2;
      if (compiled.has_value()) {
        *entry = *compiled;
      } else {
        failure = std::move(compiled).error();
      }
    }
  }
  return failure;
}

void CompileService::CompileOne(Job& job) {
  DBLL_TRACE_SPAN("cache.compile");
  const CompileRequest& request = job.request;
  CacheMetrics& metrics = CacheMetrics::Get();
  StageTimes times;
  std::vector<Error> chain;
  const std::uint32_t gen =
      job.slot->generation.load(std::memory_order_acquire);

  // How long the job sat in the queue behind other compiles. The interval
  // starts on the requesting thread and ends here on the worker, so it is
  // recorded manually rather than with an RAII span.
  const std::uint64_t dequeue_ns = NowNs();
  const std::uint64_t queue_wait_ns = dequeue_ns - job.enqueue_ns;
  obs::Tracer::Default().RecordManual("cache.queue_wait", job.enqueue_ns,
                                      queue_wait_ns);
  metrics.queue_wait_ns.Record(queue_wait_ns);

  // Static lift-eligibility audit (Options::audit): a kFatal diagnostic
  // proves Tier 0 would fail deterministically, so the job is routed to the
  // Tier-1 fallback -- and the negative cache seeded -- without constructing
  // a single LLVM object. Worst-case cost is one CFG walk per audited
  // function; it runs here on the worker so Request() stays non-blocking.
  if (!job.skip_tier0 && options_.audit) {
    analysis::AuditOptions audit_options;
    audit_options.cfg.max_instructions = request.config.max_instructions;
    audit_options.follow_calls = request.config.lift_calls;
    audit_options.max_call_depth = request.config.max_call_depth;
    const analysis::AuditReport report =
        analysis::AuditFunction(request.address, audit_options);
    if (const analysis::Diagnostic* fatal = report.first_fatal()) {
      job.skip_tier0 = true;
      job.negative_error =
          Error(ErrorKind::kUnsupported,
                std::string("lift-eligibility audit: ") +
                    analysis::ToString(fatal->kind) + ": " + fatal->message,
                fatal->site);
      if (options_.negative_capacity > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (negative_.size() >= options_.negative_capacity) {
          negative_.clear();
        }
        negative_.emplace(job.key, job.negative_error);
      }
    }
  }

  std::uint64_t entry = 0;
  bool tier0_ok = false;
  if (job.skip_tier0) {
    // Negative-cache hit: the deterministic Tier-0 failure was remembered at
    // Request time; go straight to the fallback without touching LLVM.
    chain.push_back(job.negative_error);
  } else {
    // Register with the deadline monitor for the whole Tier-0 effort
    // (including the one transient retry).
    bool watched = false;
    if (job.deadline_ms > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.push_front(
          InFlight{job.slot, request,
                   NowNs() + std::uint64_t{job.deadline_ms} * 1'000'000ULL,
                   job.deadline_ms, false});
      watched = true;
      monitor_cv_.notify_one();
    }

    auto account_attempt = [&](const StageTimes& attempt,
                               const Error& failure) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.compiles;
        stats_.stage_total.lift_ns += attempt.lift_ns;
        stats_.stage_total.opt_ns += attempt.opt_ns;
        stats_.stage_total.jit_ns += attempt.jit_ns;
        if (!failure.ok()) ++stats_.tier0_failures;
      }
      metrics.compiles.Add(1);
      metrics.lift_ns.Add(attempt.lift_ns);
      metrics.opt_ns.Add(attempt.opt_ns);
      metrics.jit_ns.Add(attempt.jit_ns);
      if (!failure.ok()) metrics.tier0_fail.Add(1);
    };

    StageTimes attempt;
    Error failure = TryTier0(request, attempt, &entry);
    account_attempt(attempt, failure);
    times.lift_ns += attempt.lift_ns;
    times.opt_ns += attempt.opt_ns;
    times.jit_ns += attempt.jit_ns;

    if (!failure.ok() && IsTransient(failure.kind())) {
      // One retry with decorrelated backoff: transient failures (resource
      // pressure) are the one class where trying again can help.
      chain.push_back(failure);
      const std::uint32_t backoff = BackoffMs(options_.retry_backoff_ms);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.retries;
      }
      metrics.retries.Add(1);
      StageTimes retry_attempt;
      entry = 0;
      failure = TryTier0(request, retry_attempt, &entry);
      account_attempt(retry_attempt, failure);
      times.lift_ns += retry_attempt.lift_ns;
      times.opt_ns += retry_attempt.opt_ns;
      times.jit_ns += retry_attempt.jit_ns;
      if (failure.ok()) {
        tier0_ok = true;  // chain keeps the transient error as history
      } else {
        chain.push_back(failure);
      }
    } else if (!failure.ok()) {
      chain.push_back(failure);
      if (IsDeterministic(failure.kind()) && options_.negative_capacity > 0) {
        // This failure will recur on every identical request: remember it so
        // a re-request (after eviction/Clear) skips Tier 0 entirely.
        std::lock_guard<std::mutex> lock(mutex_);
        if (negative_.size() >= options_.negative_capacity) {
          negative_.clear();  // crude bound; correctness only needs "cached"
        }
        negative_.emplace(job.key, failure);
      }
    } else {
      tier0_ok = true;
    }

    if (watched) {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (it->slot == job.slot) {
          inflight_.erase(it);
          break;
        }
      }
    }

    // The monitor may have taken this slot over mid-compile (deadline
    // overrun). The generation mismatch makes any Finish below a no-op; skip
    // the degrade too -- the monitor already ran it.
    if (job.slot->generation.load(std::memory_order_acquire) != gen) {
      return;
    }
  }

  if (tier0_ok) {
    // The swap-install: publishing the terminal state and waking waiters.
    DBLL_TRACE_SPAN("cache.install");
    const std::uint64_t install_start_ns = NowNs();
    if (job.slot->Finish(gen, FunctionHandle::State::kSpecialized,
                         Tier::kLlvm, entry, std::move(chain), times)) {
      metrics.installs.Add(1);
      metrics.install_ns.Record(NowNs() - install_start_ns);
    }
    return;
  }

  Degrade(job.slot, gen, request, std::move(chain), times);
}

void CompileService::Degrade(
    const std::shared_ptr<FunctionHandle::Slot>& slot,
    std::uint32_t expected_generation, const CompileRequest& request,
    std::vector<Error> chain, StageTimes times) {
  CacheMetrics& metrics = CacheMetrics::Get();
  if (options_.tier1_fallback) {
    const std::uint64_t t = NowNs();
    auto tier1 = Tier1Rewrite(request);
    times.tier1_ns += NowNs() - t;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.stage_total.tier1_ns += times.tier1_ns;
    }
    metrics.tier1_ns.Add(times.tier1_ns);
    if (tier1.has_value()) {
      const std::uint64_t entry = tier1->entry;
      {
        // The rewriter owns the emitted code buffer; park it on the service
        // so the documented "code lives until the service is destroyed"
        // lifetime holds for fallback code too (even across slot eviction).
        std::lock_guard<std::mutex> lock(mutex_);
        tier1_code_.push_back(std::move(tier1->rewriter));
        ++stats_.tier1_serves;
      }
      metrics.tier1_serve.Add(1);
      DBLL_TRACE_SPAN("cache.install");
      const std::uint64_t install_start_ns = NowNs();
      if (slot->Finish(expected_generation,
                       FunctionHandle::State::kSpecialized, Tier::kDbrew,
                       entry, std::move(chain), times)) {
        metrics.installs.Add(1);
        metrics.install_ns.Record(NowNs() - install_start_ns);
      }
      return;
    }
    chain.push_back(std::move(tier1).error());
  }

  // Tier 2: every tier exhausted; the handle pins the generic entry and the
  // terminal state is kFailed, with the whole per-tier chain attached.
  const Error root = chain.empty() ? Error(ErrorKind::kInternal,
                                           "degraded with an empty chain")
                                   : chain.front();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.tier2_serves;
    ++stats_.failures;
    last_error_ = root;
  }
  metrics.tier2_serve.Add(1);
  metrics.failures.Add(1);
  slot->Finish(expected_generation, FunctionHandle::State::kFailed,
               Tier::kGeneric, 0, std::move(chain), times);
}

void CompileService::RejectImmediately(
    const std::shared_ptr<FunctionHandle::Slot>& slot, Error error) {
  CacheMetrics& metrics = CacheMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.tier2_serves;
    ++stats_.failures;
    last_error_ = error;
  }
  metrics.tier2_serve.Add(1);
  metrics.failures.Add(1);
  slot->Finish(slot->generation.load(std::memory_order_relaxed),
               FunctionHandle::State::kFailed, Tier::kGeneric, 0,
               {std::move(error)}, StageTimes{});
}

void CompileService::TakeOver(
    const std::shared_ptr<FunctionHandle::Slot>& slot,
    const CompileRequest& request, std::uint32_t deadline_ms) {
  std::uint32_t new_generation;
  {
    // Serialize against the worker's Finish: whoever gets the slot mutex
    // first wins. If the worker finished a hair before the deadline fired,
    // its result stands and there is nothing to take over.
    std::lock_guard<std::mutex> slot_lock(slot->mutex);
    if (static_cast<FunctionHandle::State>(
            slot->state.load(std::memory_order_relaxed)) !=
        FunctionHandle::State::kPending) {
      return;
    }
    new_generation =
        slot->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.timeouts;
  }
  CacheMetrics::Get().timeouts.Add(1);
  Error timeout(ErrorKind::kTimeout,
                "Tier-0 compile exceeded its " + std::to_string(deadline_ms) +
                    "ms deadline; degrading",
                request.address);
  Degrade(slot, new_generation, request, {std::move(timeout)}, StageTimes{});
}

void CompileService::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    // Earliest pending deadline decides how long to sleep; no deadlines
    // means sleeping until a worker registers one (or shutdown).
    std::uint64_t next_deadline = 0;
    for (const InFlight& flight : inflight_) {
      if (flight.fired) continue;
      if (next_deadline == 0 || flight.deadline_ns < next_deadline) {
        next_deadline = flight.deadline_ns;
      }
    }
    if (next_deadline == 0) {
      monitor_cv_.wait(lock);
      continue;
    }
    const std::uint64_t now = NowNs();
    if (now < next_deadline) {
      monitor_cv_.wait_for(lock,
                           std::chrono::nanoseconds(next_deadline - now));
      continue;
    }
    // Collect everything expired, then process outside mutex_ (the degrade
    // runs a real DBrew rewrite). `fired` keeps an entry from being taken
    // over twice; the owning worker still erases it on its way out.
    struct Expired {
      std::shared_ptr<FunctionHandle::Slot> slot;
      CompileRequest request;
      std::uint32_t deadline_ms;
    };
    std::vector<Expired> expired;
    for (InFlight& flight : inflight_) {
      if (!flight.fired && flight.deadline_ns <= now) {
        flight.fired = true;
        expired.push_back({flight.slot, flight.request, flight.deadline_ms});
      }
    }
    // The degrades count as active work so WaitIdle() cannot return while a
    // take-over is still installing the fallback.
    active_jobs_ += static_cast<int>(expired.size());
    lock.unlock();
    for (Expired& e : expired) {
      TakeOver(e.slot, e.request, e.deadline_ms);
    }
    lock.lock();
    active_jobs_ -= static_cast<int>(expired.size());
    if (queue_.empty() && active_jobs_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace dbll::runtime
