// dbll -- asynchronous compile service (see
// include/dbll/runtime/compile_service.h for the design).
#include "dbll/runtime/compile_service.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "dbll/obs/obs.h"

namespace dbll::runtime {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-wide mirror of CacheStats in the obs registry: the service
/// increments these at the same points as its per-service stats_, so a
/// Registry snapshot enumerates the cache alongside every other subsystem.
/// Handles are resolved once (registry pointers are stable).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& coalesced;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& failures;
  obs::Counter& compiles;
  obs::Counter& lift_ns;
  obs::Counter& opt_ns;
  obs::Counter& jit_ns;
  obs::Counter& installs;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& install_ns;

  static CacheMetrics& Get() {
    static CacheMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new CacheMetrics{r.GetCounter("cache.hits"),
                              r.GetCounter("cache.coalesced"),
                              r.GetCounter("cache.misses"),
                              r.GetCounter("cache.evictions"),
                              r.GetCounter("cache.failures"),
                              r.GetCounter("cache.compiles"),
                              r.GetCounter("cache.lift_ns"),
                              r.GetCounter("cache.opt_ns"),
                              r.GetCounter("cache.jit_ns"),
                              r.GetCounter("cache.installs"),
                              r.GetHistogram("cache.queue_wait_ns"),
                              r.GetHistogram("cache.install_ns")};
    }();
    return *instance;
  }
};

}  // namespace

/// Shared state of one cache entry. `target` starts as the generic entry and
/// is atomically swapped to the specialized one; readers on hot paths touch
/// nothing else. The mutex/cv pair only serves blocking waiters.
struct FunctionHandle::Slot {
  std::atomic<std::uint64_t> target{0};
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(FunctionHandle::State::kPending)};
  std::uint64_t generic = 0;

  mutable std::mutex mutex;
  std::condition_variable cv;
  Error error;       // written once before the terminal state is published
  StageTimes times;  // ditto

  void Finish(FunctionHandle::State terminal, std::uint64_t entry,
              Error err, StageTimes stage_times) {
    {
      // The stores happen under the mutex so a waiter cannot check the state
      // and park between them and the notify; lock-free target()/state()
      // readers are unaffected.
      std::lock_guard<std::mutex> lock(mutex);
      error = std::move(err);
      times = stage_times;
      if (terminal == FunctionHandle::State::kSpecialized) {
        // The swap: from now on every target() reader calls specialized code.
        target.store(entry, std::memory_order_release);
      }
      state.store(static_cast<std::uint8_t>(terminal),
                  std::memory_order_release);
    }
    cv.notify_all();
  }
};

std::uint64_t FunctionHandle::target() const {
  return slot_->target.load(std::memory_order_acquire);
}

FunctionHandle::State FunctionHandle::state() const {
  return static_cast<State>(slot_->state.load(std::memory_order_acquire));
}

std::uint64_t FunctionHandle::wait() const {
  std::unique_lock<std::mutex> lock(slot_->mutex);
  slot_->cv.wait(lock, [&] { return state() != State::kPending; });
  lock.unlock();
  return target();
}

Error FunctionHandle::error() const {
  std::lock_guard<std::mutex> lock(slot_->mutex);
  return slot_->error;
}

StageTimes FunctionHandle::times() const {
  std::lock_guard<std::mutex> lock(slot_->mutex);
  return slot_->times;
}

CompileService::CompileService() : CompileService(Options{}) {}

CompileService::CompileService(Options options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Jobs never started still have waiters parked on their slots: fail them
    // so wait() cannot deadlock against a dead pool.
    for (Job& job : queue_) {
      job.slot->Finish(FunctionHandle::State::kFailed, 0,
                       Error(ErrorKind::kInternal,
                             "compile service shut down before compiling"),
                       StageTimes{});
    }
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

FunctionHandle CompileService::Request(const CompileRequest& request) {
  SpecKey key(request);
  std::shared_ptr<FunctionHandle::Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(key);
    if (it != table_.end()) {
      // Touch the LRU position and classify the hit.
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      it->second.lru_pos = lru_.begin();
      const auto state = static_cast<FunctionHandle::State>(
          it->second.slot->state.load(std::memory_order_acquire));
      if (state == FunctionHandle::State::kPending) {
        ++stats_.coalesced;
        CacheMetrics::Get().coalesced.Add(1);
      } else {
        ++stats_.hits;
        CacheMetrics::Get().hits.Add(1);
      }
      return FunctionHandle(it->second.slot);
    }
    ++stats_.misses;
    CacheMetrics::Get().misses.Add(1);
    slot = std::make_shared<FunctionHandle::Slot>();
    slot->generic = request.address;
    slot->target.store(request.address, std::memory_order_release);
    lru_.push_front(key);
    table_.emplace(std::move(key), TableEntry{slot, lru_.begin()});
    EvictIfNeeded();
    queue_.push_back(Job{request, slot, NowNs()});
  }
  work_cv_.notify_one();
  return FunctionHandle(slot);
}

Expected<std::uint64_t> CompileService::CompileSync(
    const CompileRequest& request) {
  FunctionHandle handle = Request(request);
  const std::uint64_t entry = handle.wait();
  if (handle.state() == FunctionHandle::State::kFailed) {
    return handle.error();
  }
  return entry;
}

void CompileService::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_jobs_ == 0; });
}

void CompileService::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.evictions += table_.size();
  CacheMetrics::Get().evictions.Add(table_.size());
  table_.clear();
  lru_.clear();
}

CacheStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileService::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

Error CompileService::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void CompileService::EvictIfNeeded() {
  if (options_.capacity == 0) return;
  // Walk from the least-recently-used end; pending entries are pinned (their
  // compile is still running and must stay discoverable for coalescing).
  auto it = lru_.end();
  while (table_.size() > options_.capacity && it != lru_.begin()) {
    --it;
    auto found = table_.find(*it);
    if (found == table_.end()) {  // defensive; table_ and lru_ move together
      it = lru_.erase(it);
      continue;
    }
    const auto state = static_cast<FunctionHandle::State>(
        found->second.slot->state.load(std::memory_order_acquire));
    if (state == FunctionHandle::State::kPending) continue;
    table_.erase(found);
    it = lru_.erase(it);
    ++stats_.evictions;
    CacheMetrics::Get().evictions.Add(1);
  }
}

void CompileService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_jobs_;
    }
    CompileOne(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_jobs_;
      if (queue_.empty() && active_jobs_ == 0) idle_cv_.notify_all();
    }
  }
}

void CompileService::CompileOne(Job& job) {
  DBLL_TRACE_SPAN("cache.compile");
  const CompileRequest& request = job.request;
  StageTimes times;
  Error failure;

  // How long the job sat in the queue behind other compiles. The interval
  // starts on the requesting thread and ends here on the worker, so it is
  // recorded manually rather than with an RAII span.
  const std::uint64_t dequeue_ns = NowNs();
  const std::uint64_t queue_wait_ns = dequeue_ns - job.enqueue_ns;
  obs::Tracer::Default().RecordManual("cache.queue_wait", job.enqueue_ns,
                                      queue_wait_ns);
  CacheMetrics::Get().queue_wait_ns.Record(queue_wait_ns);

  // Stage 1: decode + lift (+ IR-level specialization, which mutates the
  // pre-optimization module and is therefore part of this stage).
  const std::uint64_t t0 = NowNs();
  lift::Lifter lifter(request.config);
  auto lifted = lifter.Lift(request.address, request.signature);
  if (!lifted.has_value()) {
    failure = std::move(lifted).error();
  } else {
    for (const SpecAction& spec : request.specs) {
      Status status =
          spec.kind == SpecAction::Kind::kParam
              ? lifted->SpecializeParam(spec.index, spec.value)
              : lifted->SpecializeParamToConstMem(spec.index,
                                                  spec.bytes.data(),
                                                  spec.bytes.size());
      if (!status.ok()) {
        failure = status.error();
        break;
      }
    }
  }
  times.lift_ns = NowNs() - t0;

  // Stage 2: optimization pipeline.
  std::uint64_t entry = 0;
  if (failure.ok()) {
    const std::uint64_t t1 = NowNs();
    Status status = lifted->Optimize();
    times.opt_ns = NowNs() - t1;
    if (!status.ok()) failure = status.error();

    // Stage 3: JIT codegen. Module installation into the shared LLJIT
    // session is serialized; lift and optimize above run fully parallel.
    if (failure.ok()) {
      const std::uint64_t t2 = NowNs();
      std::lock_guard<std::mutex> jit_lock(jit_mutex_);
      auto compiled = lifted->Compile(jit_);
      times.jit_ns = NowNs() - t2;
      if (compiled.has_value()) {
        entry = *compiled;
      } else {
        failure = std::move(compiled).error();
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.compiles;
    stats_.stage_total.lift_ns += times.lift_ns;
    stats_.stage_total.opt_ns += times.opt_ns;
    stats_.stage_total.jit_ns += times.jit_ns;
    if (!failure.ok()) {
      ++stats_.failures;
      last_error_ = failure;
    }
  }
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.compiles.Add(1);
  metrics.lift_ns.Add(times.lift_ns);
  metrics.opt_ns.Add(times.opt_ns);
  metrics.jit_ns.Add(times.jit_ns);
  if (!failure.ok()) metrics.failures.Add(1);

  {
    // The swap-install: publishing the terminal state and waking waiters.
    DBLL_TRACE_SPAN("cache.install");
    const std::uint64_t install_start_ns = NowNs();
    job.slot->Finish(failure.ok() ? FunctionHandle::State::kSpecialized
                                  : FunctionHandle::State::kFailed,
                     entry, std::move(failure), times);
    metrics.installs.Add(1);
    metrics.install_ns.Record(NowNs() - install_start_ns);
  }
}

}  // namespace dbll::runtime
