// dbll -- asynchronous compile service (see
// include/dbll/runtime/compile_service.h for the design).
#include "dbll/runtime/compile_service.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "dbll/analysis/audit.h"
#include "dbll/analysis/ranges.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/obs/obs.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/fault.h"
#include "env_util.h"

namespace dbll::runtime {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-wide mirror of CacheStats in the obs registry: the service
/// increments these at the same points as its per-service counters_, so a
/// Registry snapshot enumerates the cache alongside every other subsystem.
/// Handles are resolved once (registry pointers are stable).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& coalesced;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& failures;
  obs::Counter& compiles;
  obs::Counter& lift_ns;
  obs::Counter& opt_ns;
  obs::Counter& jit_ns;
  obs::Counter& tier1_ns;
  obs::Counter& installs;
  obs::Counter& tier0_fail;
  obs::Counter& tier1_serve;
  obs::Counter& tier2_serve;
  obs::Counter& negative_hit;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& queue_rejected;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& install_ns;

  static CacheMetrics& Get() {
    static CacheMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new CacheMetrics{r.GetCounter("cache.hits"),
                              r.GetCounter("cache.coalesced"),
                              r.GetCounter("cache.misses"),
                              r.GetCounter("cache.evictions"),
                              r.GetCounter("cache.failures"),
                              r.GetCounter("cache.compiles"),
                              r.GetCounter("cache.lift_ns"),
                              r.GetCounter("cache.opt_ns"),
                              r.GetCounter("cache.jit_ns"),
                              r.GetCounter("cache.tier1_ns"),
                              r.GetCounter("cache.installs"),
                              r.GetCounter("fallback.tier0_fail"),
                              r.GetCounter("fallback.tier1_serve"),
                              r.GetCounter("fallback.tier2_serve"),
                              r.GetCounter("fallback.negative_hit"),
                              r.GetCounter("fallback.retries"),
                              r.GetCounter("fallback.timeouts"),
                              r.GetCounter("cache.queue_rejected"),
                              r.GetHistogram("cache.queue_wait_ns"),
                              r.GetHistogram("cache.install_ns")};
    }();
    return *instance;
  }
};

/// Per-shard view of the in-memory table in the obs registry:
/// cache.shard_NN.hits (hot-path hits landing on the shard) and
/// cache.shard_NN.entries (current table size). A skewed hit distribution
/// here is the observable symptom of keys clustering on one shard mutex.
struct ShardMetrics {
  obs::Counter* hits[16];
  obs::Gauge* entries[16];

  static ShardMetrics& Get() {
    static ShardMetrics* instance = [] {
      auto* m = new ShardMetrics;
      obs::Registry& r = obs::Registry::Default();
      for (int i = 0; i < 16; ++i) {
        char name[40];
        std::snprintf(name, sizeof(name), "cache.shard_%02d.hits", i);
        m->hits[i] = &r.GetCounter(name);
        std::snprintf(name, sizeof(name), "cache.shard_%02d.entries", i);
        m->entries[i] = &r.GetGauge(name);
      }
      return m;
    }();
    return *instance;
  }
};

/// Process-wide mirror of the tiering counters (tiering.h). Kept separate
/// from CacheMetrics so the classic path never touches them; resolved once.
struct TierMetrics {
  obs::Counter& interim_installs;
  obs::Counter& baseline_installs;
  obs::Counter& promotions;
  obs::Counter& promote_failures;
  obs::Counter& deopts;        ///< tiering.deopts
  obs::Counter& cache_deopt;   ///< cache.deopt (alias view, per the C API)
  obs::Counter& tier0a_ns;
  obs::Counter& tier0a_compiles;

  static TierMetrics& Get() {
    static TierMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new TierMetrics{r.GetCounter("tiering.interim_installs"),
                             r.GetCounter("tiering.baseline_installs"),
                             r.GetCounter("tiering.promotions"),
                             r.GetCounter("tiering.promote_failures"),
                             r.GetCounter("tiering.deopts"),
                             r.GetCounter("cache.deopt"),
                             r.GetCounter("cache.tier0a_ns"),
                             r.GetCounter("cache.tier0a_compiles")};
    }();
    return *instance;
  }
};

/// Decorrelated backoff before a transient-failure retry: uniform in
/// [base, 3*base] ms, capped at 50ms so a retry can never stall the queue
/// for long. Per-thread PRNG; the seed does not need to be reproducible
/// (only the *decision* to retry is deterministic, the jitter is not).
std::uint32_t BackoffMs(std::uint32_t base_ms) {
  if (base_ms == 0) return 0;
  static thread_local std::mt19937_64 rng(
      0xdb11b0ffULL ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::uniform_int_distribution<std::uint32_t> dist(base_ms, 3 * base_ms);
  std::uint32_t ms = dist(rng);
  return ms > 50 ? 50u : ms;
}

/// Module tag for the JIT's object capture (jit_internal.h): unique per
/// fingerprint, so the worker can retrieve exactly the object it compiled.
std::string CacheTag(std::uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

}  // namespace

/// Shared state of one cache entry. `target` starts as the generic entry and
/// is atomically swapped to the specialized one; readers on hot paths touch
/// nothing else. The mutex/cv pair only serves blocking waiters.
///
/// `generation` implements straggler discard: the deadline monitor bumps it
/// when it takes a wedged compile over, so the worker's eventual Finish()
/// (carrying the generation it started with) is rejected and cannot clobber
/// the already-installed fallback.
struct FunctionHandle::Slot {
  std::atomic<std::uint64_t> target{0};
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(FunctionHandle::State::kPending)};
  std::atomic<std::uint8_t> tier{static_cast<std::uint8_t>(Tier::kGeneric)};
  std::atomic<std::uint32_t> generation{0};
  std::uint64_t generic = 0;
  /// Tiering profile (null = untiered slot; the common case). Assigned once
  /// before the slot is published and never mutated afterwards, so the
  /// lock-free read in FunctionHandle::target() is safe.
  std::shared_ptr<TierProfile> profile;
  /// Probation guards armed on this slot (containment.h). A published stub
  /// address stays callable as long as a handle might jump through it, so
  /// every guard is parked here for the slot's lifetime. Guarded by `mutex`.
  std::vector<std::shared_ptr<ProbationGuard>> guards;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::vector<Error> errors;  // per-tier failure chain, root cause first
  StageTimes times;           // written once before the terminal state

  /// Publishes a terminal state iff `expected_generation` still matches (and
  /// the slot is still pending). Returns false when the result was discarded
  /// -- the monitor degraded this slot while the caller was computing.
  bool Finish(std::uint32_t expected_generation,
              FunctionHandle::State terminal, Tier serving_tier,
              std::uint64_t entry, std::vector<Error> chain,
              StageTimes stage_times) {
    {
      // The stores happen under the mutex so a waiter cannot check the state
      // and park between them and the notify; lock-free target()/state()
      // readers are unaffected. The generation check shares the same mutex
      // with the monitor's bump, so take-over and finish serialize cleanly.
      std::lock_guard<std::mutex> lock(mutex);
      if (generation.load(std::memory_order_relaxed) != expected_generation) {
        return false;
      }
      if (static_cast<FunctionHandle::State>(
              state.load(std::memory_order_relaxed)) !=
          FunctionHandle::State::kPending) {
        return false;
      }
      errors = std::move(chain);
      times = stage_times;
      if (terminal == FunctionHandle::State::kSpecialized) {
        // The swap: from now on every target() reader calls specialized code.
        target.store(entry, std::memory_order_release);
      }
      tier.store(static_cast<std::uint8_t>(serving_tier),
                 std::memory_order_release);
      state.store(static_cast<std::uint8_t>(terminal),
                  std::memory_order_release);
    }
    cv.notify_all();
    return true;
  }

  /// Post-terminal swap for the tiering engine: moves an already-specialized
  /// slot to a different entry/tier (baseline -> optimized on promotion,
  /// anything -> generic on deoptimization) with the same atomic-store
  /// discipline as Finish. Stage times of the later compile are merged so
  /// FunctionHandle::times() accounts the whole ladder; an optional error is
  /// appended to the chain (failed promotions). Refuses on non-specialized
  /// slots -- the classic terminal states are immutable. When
  /// `expected_tier` is given, the swap additionally requires the slot to
  /// still serve that tier: the LLVM baseline refining the interim DBrew
  /// seed must lose against a promotion or deopt that landed first.
  bool Rebind(Tier serving_tier, std::uint64_t entry,
              const StageTimes& extra_times, const Error* append_error,
              const Tier* expected_tier = nullptr) {
    std::lock_guard<std::mutex> lock(mutex);
    if (static_cast<FunctionHandle::State>(
            state.load(std::memory_order_relaxed)) !=
        FunctionHandle::State::kSpecialized) {
      return false;
    }
    if (expected_tier != nullptr &&
        static_cast<Tier>(tier.load(std::memory_order_relaxed)) !=
            *expected_tier) {
      return false;
    }
    if (append_error != nullptr) errors.push_back(*append_error);
    times.lift_ns += extra_times.lift_ns;
    times.opt_ns += extra_times.opt_ns;
    times.jit_ns += extra_times.jit_ns;
    times.tier1_ns += extra_times.tier1_ns;
    times.tier0a_ns += extra_times.tier0a_ns;
    target.store(entry, std::memory_order_release);
    tier.store(static_cast<std::uint8_t>(serving_tier),
               std::memory_order_release);
    return true;
  }
};

std::uint64_t FunctionHandle::target() const {
  if (!slot_) return 0;
  // Tiering hot path: untiered slots pay one pointer test; tiered slots one
  // relaxed fetch_add plus a masked branch (<5ns/call budget, measured by
  // bench/fig_tiering's counter-overhead histogram). Actions are rare,
  // CAS-latched transitions.
  if (TierProfile* profile = slot_->profile.get()) {
    switch (profile->NoteCall()) {
      case TierAction::kNone:
        break;
      case TierAction::kPromote:
        profile->FirePromote();
        break;
      case TierAction::kDemote:
        profile->FireDemote();
        break;
    }
  }
  return slot_->target.load(std::memory_order_acquire);
}

std::uint64_t FunctionHandle::calls() const {
  if (!slot_ || !slot_->profile) return 0;
  return slot_->profile->calls();
}

std::uint64_t FunctionHandle::deopts() const {
  if (!slot_ || !slot_->profile) return 0;
  return slot_->profile->deopts();
}

FunctionHandle::State FunctionHandle::state() const {
  if (!slot_) return State::kFailed;
  return static_cast<State>(slot_->state.load(std::memory_order_acquire));
}

Tier FunctionHandle::tier() const {
  if (!slot_) return Tier::kGeneric;
  return static_cast<Tier>(slot_->tier.load(std::memory_order_acquire));
}

std::uint64_t FunctionHandle::wait() const {
  if (!slot_) return 0;
  std::unique_lock<std::mutex> lock(slot_->mutex);
  slot_->cv.wait(lock, [&] { return state() != State::kPending; });
  lock.unlock();
  return target();
}

Error FunctionHandle::error() const {
  if (!slot_) {
    return Error(ErrorKind::kBadConfig,
                 "invalid (default-constructed) FunctionHandle");
  }
  std::lock_guard<std::mutex> lock(slot_->mutex);
  if (slot_->errors.empty()) return Error();
  return slot_->errors.front();
}

std::vector<Error> FunctionHandle::error_chain() const {
  if (!slot_) return {};
  std::lock_guard<std::mutex> lock(slot_->mutex);
  return slot_->errors;
}

StageTimes FunctionHandle::times() const {
  if (!slot_) return {};
  std::lock_guard<std::mutex> lock(slot_->mutex);
  return slot_->times;
}

CompileService::Options& CompileService::Options::ApplyEnv() {
  // persist_dir: explicit code configuration wins over the environment (the
  // pre-existing DBLL_CACHE_DIR contract); the remaining knobs are operator
  // overrides, so the environment wins when set.
  if (persist_dir.empty()) persist_dir = env::Str("DBLL_CACHE_DIR", "");
  default_deadline_ms = static_cast<std::uint32_t>(
      env::U64("DBLL_CACHE_DEADLINE_MS", default_deadline_ms));
  shm = env::Flag("DBLL_CACHE_SHM", shm);
  shm_slots =
      static_cast<std::uint32_t>(env::U64("DBLL_CACHE_SHM_SLOTS", shm_slots));
  shm_slot_bytes = env::U64("DBLL_CACHE_SHM_SLOT_BYTES", shm_slot_bytes);
  tiering.ApplyEnv();
  containment.ApplyEnv();
  return *this;
}

CompileService::CompileService() : CompileService(Options{}) {}

CompileService::CompileService(Options options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  // Every DBLL_* override funnels through here (the C API constructs a
  // CompileService too, so C and C++ embedders share one env grammar).
  options_.ApplyEnv();
  tiering_enabled_.store(options_.tiering.enabled, std::memory_order_release);
  options_.containment.Clamp();
  if (options_.containment.enabled) {
    // Opting into containment installs the process-wide crash-guard signal
    // handlers once, up front -- never lazily from a serving thread.
    support::InstallCrashGuard();
    breaker_ = std::make_unique<BreakerBoard>(
        options_.containment.breaker_threshold,
        options_.containment.breaker_cooldown_ms,
        options_.containment.breaker_capacity);
  }
  alive_ = std::make_shared<AliveToken>();
  alive_->svc = this;
  // Resolve the persistent store: explicit option first, DBLL_CACHE_DIR
  // (applied by ApplyEnv) second, otherwise persistence stays off. A
  // directory that cannot be created degrades to the in-memory behaviour
  // (recorded as last_error_), matching the "disk trouble never breaks
  // compilation" contract.
  if (!options_.persist_dir.empty()) {
    auto store = std::make_shared<ObjectStore>(ObjectStore::Options{
        options_.persist_dir, options_.persist_max_bytes,
        options_.persist_max_entries, options_.shm, options_.shm_slots,
        options_.shm_slot_bytes});
    if (store->init_status().ok()) {
      store_ = std::move(store);
    } else {
      last_error_ = store->init_status().error();
    }
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
}

CompileService::~CompileService() {
  {
    // Detach the tiering hooks first: a promote/demote firing from a caller
    // thread after this point sees a null service and becomes a no-op
    // (the handle keeps serving whatever is installed).
    std::lock_guard<std::mutex> alive_lock(alive_->mutex);
    alive_->svc = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Jobs never started still have waiters parked on their slots: fail them
    // so wait() cannot deadlock against a dead pool.
    for (Job& job : queue_) {
      job.slot->Finish(
          job.slot->generation.load(std::memory_order_relaxed),
          FunctionHandle::State::kFailed, Tier::kGeneric, 0,
          {Error(ErrorKind::kInternal,
                 "compile service shut down before compiling")},
          StageTimes{});
    }
    queue_.clear();
  }
  work_cv_.notify_all();
  monitor_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  monitor_.join();
}

std::shared_ptr<ObjectStore> CompileService::store() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

FunctionHandle CompileService::Request(const CompileRequest& raw_request) {
  // Resolve the ISA level ("auto" / out-of-ladder -> host effective level,
  // docs/codegen.md) before the key is formed: every cache dimension below
  // (shard key, persist fingerprint, shm ring) must see a concrete level so
  // a given host always maps the same request to the same variant.
  CompileRequest request = raw_request;
  request.config.isa_level =
      static_cast<int>(support::ResolveIsaLevel(request.config.isa_level));
  SpecKey key(request);
  const std::size_t shard_index =
      static_cast<std::size_t>(key.hash()) % kShardCount;
  Shard& shard = shards_[shard_index];
  {
    // Hot path: one shard mutex, no service-wide lock.
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      it->second.lru_pos = shard.lru.begin();
      it->second.last_used_ns = NowNs();
      const auto state = static_cast<FunctionHandle::State>(
          it->second.slot->state.load(std::memory_order_acquire));
      if (state == FunctionHandle::State::kPending) {
        counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::Get().coalesced.Add(1);
      } else {
        counters_.hits.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::Get().hits.Add(1);
        ShardMetrics::Get().hits[shard_index]->Add(1);
      }
      return FunctionHandle(it->second.slot);
    }
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().misses.Add(1);

  auto slot = std::make_shared<FunctionHandle::Slot>();
  slot->generic = request.address;
  slot->target.store(request.address, std::memory_order_release);

  // Profile-guided tiering (tiering.h): derive the cheap Tier-0a request.
  // The derived config folds into its own SpecKey/fingerprint, so the two
  // tiers never alias in any cache. Degenerate case: the user's request
  // already *is* the baseline config -- nothing to tier, serve classically.
  bool tiered = false;
  TieringOptions tiering;
  if (tiering_enabled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    tiering = options_.tiering;
    tiered = tiering.enabled;
  }
  CompileRequest baseline;
  if (tiered) {
    baseline = request;
    baseline.config.opt_level = tiering.baseline_opt_level;
    baseline.config.pass_preset = "tier0a";
    // The Tier-0a interim seed is produced by DBrew rewriting and later
    // re-consumed by the decoder, which only speaks the non-VEX subset:
    // the baseline tier is pinned to the baseline ISA level regardless of
    // what the host supports (docs/codegen.md).
    baseline.config.isa_level = 0;
    if (lift::Fingerprint(baseline.config) ==
        lift::Fingerprint(request.config)) {
      tiered = false;
    }
  }

  // Per-key circuit breaker (containment.h): an open breaker routes the
  // request straight to the fallback ladder -- no disk probe, no tiering,
  // no LLVM state of any kind is constructed for a key that keeps faulting.
  // A half-open breaker admits exactly this request as its guarded probe
  // (the probation guard armed at install time reports the verdict back).
  bool breaker_denied = false;
  Error breaker_error;
  if (breaker_ != nullptr) {
    const std::string breaker_key(key.blob().begin(), key.blob().end());
    switch (breaker_->Check(breaker_key, NowNs())) {
      case BreakerBoard::Decision::kAllow:
        break;
      case BreakerBoard::Decision::kProbe:
        break;  // proceed normally; probation guards this install
      case BreakerBoard::Decision::kDeny:
        breaker_denied = true;
        tiered = false;
        breaker_error = Error(
            ErrorKind::kUnsupported,
            "circuit breaker open after repeated faults for this key; "
            "serving the fallback tier without recompiling",
            request.address);
        break;
    }
  }

  // Persistent-store probe: a warm hit installs the finished object on this
  // thread -- no queue, no worker, no LLVM -- and publishes the slot. The
  // probe targets the *full* request's object; a hit means the expensive
  // tier is already paid for, so tiering has nothing to add and the handle
  // serves classically (documented in docs/tiering.md).
  std::uint64_t fingerprint = 0;
  bool persist = false;
  std::uint64_t baseline_fingerprint = 0;
  if (std::shared_ptr<ObjectStore> st = breaker_denied ? nullptr : store()) {
    fingerprint =
        PersistFingerprint(key, request.address, request.config.isa_level);
    persist = true;
    // Install-time ISA dispatch (docs/codegen.md): probe the best variant
    // the host supports first, then walk the ladder down. A lower-level
    // variant persisted by a weaker fleet member is still correct on this
    // host, and installing it beats recompiling from scratch. Whatever
    // level hits is published under *this* request's key, so the handle
    // serves it transparently.
    for (int level = request.config.isa_level; level >= 0; --level) {
      std::uint64_t level_fingerprint = fingerprint;
      if (level != request.config.isa_level) {
        CompileRequest variant = request;
        variant.config.isa_level = level;
        level_fingerprint =
            PersistFingerprint(SpecKey(variant), request.address, level);
      }
      if (TryDiskLoad(request, key, level_fingerprint, slot)) {
        return FunctionHandle(slot);
      }
    }
    if (tiered) {
      baseline_fingerprint =
          PersistFingerprint(SpecKey(baseline), request.address, 0);
    }
  }

  if (tiered) {
    auto profile =
        std::make_shared<TierProfile>(tiering, request.address);
    // The hooks run on whatever caller thread crosses the threshold or
    // samples a guard miss. They hold the slot weakly (the profile lives
    // *on* the slot; a strong capture would leak the pair) and reach the
    // service through the alive token so a dead service degrades to no-op.
    std::weak_ptr<FunctionHandle::Slot> weak_slot = slot;
    std::shared_ptr<AliveToken> alive = alive_;
    CompileRequest promote_request = request;
    const std::uint64_t promote_fingerprint = fingerprint;
    const bool promote_persist = persist;
    profile->SetHooks(
        [alive, weak_slot, promote_request, promote_fingerprint,
         promote_persist] {
          std::shared_ptr<FunctionHandle::Slot> s = weak_slot.lock();
          if (!s || !s->profile) return;
          std::lock_guard<std::mutex> alive_lock(alive->mutex);
          if (alive->svc == nullptr) {
            s->profile->OnPromoteFailed(/*deterministic=*/false);
            return;
          }
          alive->svc->EnqueuePromotion(s, promote_request,
                                       promote_fingerprint, promote_persist);
        },
        [alive, weak_slot, deopt_key = key] {
          std::shared_ptr<FunctionHandle::Slot> s = weak_slot.lock();
          if (!s || !s->profile) return;
          DBLL_TRACE_SPAN("tiering.deopt");
          // The swap back to the generic entry is correctness-neutral (the
          // guard already routed every mismatching call there); this commits
          // the demotion and restarts profiling. Runs even when the service
          // is gone -- only the counters need it alive.
          if (s->Rebind(Tier::kGeneric, s->generic, StageTimes{}, nullptr)) {
            s->profile->OnDemoted();
            TierMetrics& tm = TierMetrics::Get();
            tm.deopts.Add(1);
            tm.cache_deopt.Add(1);
            std::lock_guard<std::mutex> alive_lock(alive->mutex);
            if (alive->svc != nullptr) {
              alive->svc->counters_.deopts.fetch_add(
                  1, std::memory_order_relaxed);
              // A deopt is a fault event for the breaker: specialized code
              // misbehaved (assumption violated), even if it never crashed.
              alive->svc->BreakerOnFault(deopt_key);
            }
          } else {
            s->profile->OnDemoted();
          }
        });
    slot->profile = std::move(profile);  // before any publication
  }

  // Admission control happens *before* the table insert: a rejected
  // request must not pin its failure into the cache -- the next request
  // for the same key deserves a fresh try once the queue drains.
  bool rejected = false;
  Error reject_error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fault::AnyArmed()) {
      if (auto injected = fault::Hit("cache.enqueue")) {
        rejected = true;
        reject_error = *std::move(injected);
      }
    }
    if (!rejected && options_.max_queue != 0 &&
        queue_.size() >= options_.max_queue) {
      rejected = true;
      counters_.queue_rejected.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().queue_rejected.Add(1);
      reject_error = Error(
          ErrorKind::kResourceLimit,
          "compile queue is full (max_queue=" +
              std::to_string(options_.max_queue) +
              "); serving the generic entry",
          request.address);
    }
  }
  if (rejected) {
    RejectImmediately(slot, std::move(reject_error));
    return FunctionHandle(slot);
  }

  // Publish into the shard. Two threads can race past the miss check for the
  // same key; the emplace winner proceeds to enqueue the compile, the loser
  // coalesces onto the winner's slot (still exactly one compile per key).
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      it->second.lru_pos = shard.lru.begin();
      it->second.last_used_ns = NowNs();
      return FunctionHandle(it->second.slot);
    }
    shard.lru.push_front(key);
    shard.table.emplace(key, TableEntry{slot, shard.lru.begin(), NowNs()});
    ShardMetrics::Get().entries[shard_index]->Set(
        static_cast<std::int64_t>(shard.table.size()));
  }
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  EvictIfNeeded();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job job;
    job.request = request;
    job.slot = slot;
    job.key = std::move(key);
    job.enqueue_ns = NowNs();
    job.deadline_ms = request.deadline_ms != 0 ? request.deadline_ms
                                               : options_.default_deadline_ms;
    job.fingerprint = fingerprint;
    job.persist = persist;
    auto negative = negative_.find(job.key);
    if (breaker_denied) {
      // Ride the negative-cache rail: the worker skips Tier 0 and lands in
      // the Tier-1/2 degradation chain with the breaker verdict as the root
      // error (the breaker's own denial counter was bumped by Check).
      job.skip_tier0 = true;
      job.negative_error = std::move(breaker_error);
    } else if (negative != negative_.end()) {
      job.skip_tier0 = true;
      job.negative_error = negative->second;
      counters_.negative_hits.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().negative_hit.Add(1);
      // A remembered deterministic Tier-0 failure dooms the baseline lift
      // just the same (same decode, same lifter): skip tiering for this key.
      if (tiered) slot->profile->Abandon();
    } else if (tiered) {
      job.kind = Job::Kind::kBaseline;
      job.original = job.request;
      job.request = std::move(baseline);
      job.fingerprint = baseline_fingerprint;
    }
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return FunctionHandle(slot);
}

bool CompileService::TryDiskLoad(
    const CompileRequest& request, const SpecKey& key,
    std::uint64_t fingerprint,
    const std::shared_ptr<FunctionHandle::Slot>& slot) {
  std::shared_ptr<ObjectStore> st = store();
  if (st == nullptr) return false;
  ObjectEntry entry;
  if (!st->Load(fingerprint, &entry)) return false;

  // Re-install the finished relocatable object. Installation shares the JIT
  // with worker compiles, so it serializes on jit_mutex_ like any other
  // module -- but there is no decode, no lift, no O3 and no codegen here.
  Expected<std::uint64_t> installed = [&]() -> Expected<std::uint64_t> {
    std::lock_guard<std::mutex> jit_lock(jit_mutex_);
    return lift::LoadCachedObject(jit_, entry.object, entry.wrapper_name,
                                  entry.membase_symbol, entry.membase_value);
  }();
  if (!installed.has_value()) {
    // The object validated on disk but the JIT refused it (e.g. dylib/session
    // trouble). Degrade to the normal compile path; the store already counted
    // the probe.
    std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = installed.error();
    return false;
  }

  // Warm loads are exactly the entries probation exists for: the object may
  // have been compiled against a layout that no longer holds.
  const std::uint64_t serve = ArmProbation(slot, key, fingerprint, *installed);
  slot->Finish(slot->generation.load(std::memory_order_relaxed),
               FunctionHandle::State::kSpecialized, Tier::kLlvm, serve,
               {}, StageTimes{});
  CacheMetrics::Get().installs.Add(1);

  const std::size_t shard_index =
      static_cast<std::size_t>(key.hash()) % kShardCount;
  Shard& shard = shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      // A racing request published first; its slot serves future lookups and
      // ours stays valid for the handle already returned.
      return true;
    }
    shard.lru.push_front(key);
    shard.table.emplace(key, TableEntry{slot, shard.lru.begin(), NowNs()});
    ShardMetrics::Get().entries[shard_index]->Set(
        static_cast<std::int64_t>(shard.table.size()));
  }
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  EvictIfNeeded();
  return true;
}

std::uint64_t CompileService::ArmProbation(
    const std::shared_ptr<FunctionHandle::Slot>& slot, const SpecKey& key,
    std::uint64_t fingerprint, std::uint64_t entry) {
  if (breaker_ == nullptr || entry == 0 || slot->generic == 0 ||
      entry == slot->generic) {
    return entry;  // containment off, or nothing (new) to guard
  }

  // The stub address is not known until Create() returns, but the hooks are
  // baked in before; the holder closes the loop. Written before the stub is
  // published, read only by calls going through the published stub.
  auto stub_holder = std::make_shared<std::uint64_t>(0);
  std::weak_ptr<FunctionHandle::Slot> weak_slot = slot;
  std::shared_ptr<AliveToken> alive = alive_;
  const std::string breaker_key(key.blob().begin(), key.blob().end());

  ProbationGuard::Hooks hooks;
  hooks.on_clean = [alive, weak_slot, breaker_key, entry, stub_holder] {
    // N clean calls: re-bind the raw entry so the steady-state hot path
    // stops paying the dispatcher. CAS, not a store -- a promotion/deopt
    // that swapped the target while we probed stays authoritative.
    if (std::shared_ptr<FunctionHandle::Slot> s = weak_slot.lock()) {
      std::uint64_t expected = *stub_holder;
      s->target.compare_exchange_strong(expected, entry,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> alive_lock(alive->mutex);
    if (alive->svc == nullptr) return;
    alive->svc->counters_.probation_clean.fetch_add(1,
                                                    std::memory_order_relaxed);
    if (alive->svc->breaker_ != nullptr) {
      alive->svc->breaker_->OnSuccess(breaker_key);
    }
  };
  hooks.on_fault = [alive, weak_slot, breaker_key,
                    fingerprint](const support::FaultInfo& info) {
    // Runs in normal calling context on the thread that caught the fault
    // (the handler only longjmp'd); the caller is already being served from
    // the Tier-2 fallback entry. Demote first -- every *other* thread must
    // stop reaching the poisoned entry as soon as possible.
    Error fault_error(
        ErrorKind::kInternal,
        std::string("probation caught ") +
            (info.signo != 0 ? support::GuardSignalName(info.signo)
                             : "an injected fault") +
            " in freshly installed code; demoted to the generic entry",
        info.fault_pc);
    if (std::shared_ptr<FunctionHandle::Slot> s = weak_slot.lock()) {
      s->Rebind(Tier::kGeneric, s->generic, StageTimes{}, &fault_error);
      // Crashing code disqualifies the whole ladder for this slot: no
      // promotion may ever reinstall a sibling of the poisoned entry.
      if (s->profile) s->profile->Abandon();
    }
    std::lock_guard<std::mutex> alive_lock(alive->mutex);
    CompileService* svc = alive->svc;
    if (svc == nullptr) return;
    svc->counters_.probation_faults.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(svc->mutex_);
      svc->last_error_ = fault_error;
    }
    if (fingerprint != 0) {
      if (std::shared_ptr<ObjectStore> st = svc->store()) {
        (void)st->QuarantineFingerprint(fingerprint, fault_error.message());
        svc->counters_.quarantined.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (svc->breaker_ != nullptr) {
      svc->breaker_->OnFault(breaker_key, NowNs());
    }
  };

  auto guard = ProbationGuard::Create(entry, slot->generic,
                                      options_.containment.probation_calls,
                                      std::move(hooks));
  if (!guard.has_value()) {
    // Stub emission failed (code-buffer exhaustion): serve unguarded rather
    // than not at all -- containment degrades, the install never does.
    return entry;
  }
  *stub_holder = (*guard)->stub_entry();
  {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->guards.push_back(*guard);
  }
  counters_.probation_installs.fetch_add(1, std::memory_order_relaxed);
  return (*guard)->stub_entry();
}

void CompileService::BreakerOnFault(const SpecKey& key) {
  if (breaker_ == nullptr) return;
  breaker_->OnFault(std::string(key.blob().begin(), key.blob().end()),
                    NowNs());
}

Expected<std::uint64_t> CompileService::CompileSync(
    const CompileRequest& request) {
  FunctionHandle handle = Request(request);
  const std::uint64_t entry = handle.wait();
  if (handle.state() == FunctionHandle::State::kFailed) {
    return handle.error();
  }
  return entry;
}

void CompileService::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_jobs_ == 0; });
}

void CompileService::Clear() {
  std::size_t cleared = 0;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    cleared += shards_[i].table.size();
    shards_[i].table.clear();
    shards_[i].lru.clear();
    ShardMetrics::Get().entries[i]->Set(0);
  }
  entry_count_.fetch_sub(cleared, std::memory_order_relaxed);
  counters_.evictions.fetch_add(cleared, std::memory_order_relaxed);
  CacheMetrics::Get().evictions.Add(cleared);
}

void CompileService::set_default_deadline_ms(std::uint32_t deadline_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.default_deadline_ms = deadline_ms;
}

void CompileService::set_tiering(TieringOptions tiering) {
  tiering.Clamp();
  std::lock_guard<std::mutex> lock(mutex_);
  options_.tiering = tiering;
  tiering_enabled_.store(tiering.enabled, std::memory_order_release);
}

TieringOptions CompileService::tiering() {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.tiering;
}

void CompileService::set_shm_options(bool enabled, std::uint32_t slots,
                                     std::uint64_t slot_bytes) {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options_.shm = enabled;
    if (slots != 0) options_.shm_slots = slots;
    if (slot_bytes != 0) options_.shm_slot_bytes = slot_bytes;
    if (store_ != nullptr) dir = store_->dir();
  }
  // Re-attach the current store so the new ring configuration takes effect
  // now, not at the next set_persist_dir. Counters restart from zero, the
  // documented behaviour of re-attaching.
  if (!dir.empty()) (void)set_persist_dir(dir);
}

Status CompileService::set_persist_dir(const std::string& dir) {
  auto store = std::make_shared<ObjectStore>(ObjectStore::Options{
      dir, options_.persist_max_bytes, options_.persist_max_entries,
      options_.shm, options_.shm_slots, options_.shm_slot_bytes});
  std::lock_guard<std::mutex> lock(mutex_);
  if (!store->init_status().ok()) {
    last_error_ = store->init_status().error();
    return last_error_;
  }
  store_ = std::move(store);
  return Status::Ok();
}

bool CompileService::persist_enabled() const {
  std::shared_ptr<ObjectStore> st = store();
  return st != nullptr && st->init_status().ok();
}

ObjectStoreStats CompileService::persist_stats() const {
  std::shared_ptr<ObjectStore> st = store();
  return st != nullptr ? st->stats() : ObjectStoreStats{};
}

Status CompileService::QuarantineObject(std::uint64_t fingerprint,
                                        const std::string& reason) {
  if (fingerprint == 0) {
    return Error(ErrorKind::kUnsupported, "cannot quarantine fingerprint 0");
  }
  std::shared_ptr<ObjectStore> st = store();
  if (st == nullptr || !st->init_status().ok()) {
    return Error(
        ErrorKind::kUnsupported,
        "quarantine needs a persistent store (dbll_cache_set_persist_dir)");
  }
  Status status = st->QuarantineFingerprint(fingerprint, reason);
  if (status.ok()) {
    counters_.quarantined.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

CacheStats CompileService::stats() const {
  const auto get = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  CacheStats s;
  s.hits = get(counters_.hits);
  s.coalesced = get(counters_.coalesced);
  s.misses = get(counters_.misses);
  s.evictions = get(counters_.evictions);
  s.failures = get(counters_.failures);
  s.compiles = get(counters_.compiles);
  s.tier0_failures = get(counters_.tier0_failures);
  s.tier1_serves = get(counters_.tier1_serves);
  s.tier2_serves = get(counters_.tier2_serves);
  s.retries = get(counters_.retries);
  s.timeouts = get(counters_.timeouts);
  s.negative_hits = get(counters_.negative_hits);
  s.queue_rejected = get(counters_.queue_rejected);
  s.stage_total.lift_ns = get(counters_.lift_ns);
  s.stage_total.opt_ns = get(counters_.opt_ns);
  s.stage_total.jit_ns = get(counters_.jit_ns);
  s.stage_total.tier1_ns = get(counters_.tier1_ns);
  s.stage_total.tier0a_ns = get(counters_.tier0a_ns);
  s.tier0a_compiles = get(counters_.tier0a_compiles);
  s.interim_installs = get(counters_.interim_installs);
  s.baseline_installs = get(counters_.baseline_installs);
  s.promotions = get(counters_.promotions);
  s.promote_failures = get(counters_.promote_failures);
  s.deopts = get(counters_.deopts);
  s.probation_installs = get(counters_.probation_installs);
  s.probation_clean = get(counters_.probation_clean);
  s.probation_faults = get(counters_.probation_faults);
  s.quarantined = get(counters_.quarantined);
  if (breaker_ != nullptr) {
    // The board is the authority on its own transitions (an OnFault call
    // does not tell the caller whether it tripped the breaker).
    const BreakerBoard::Stats breaker = breaker_->stats();
    s.breaker_opens = breaker.opens;
    s.breaker_closes = breaker.closes;
    s.breaker_probes = breaker.probes;
    s.breaker_denials = breaker.denials;
  }
  // The disk view belongs to the *current* store; redirecting the cache with
  // set_persist_dir starts these from zero again (documented).
  const ObjectStoreStats disk = persist_stats();
  s.disk_hits = disk.hits;
  s.disk_misses = disk.misses;
  s.disk_stores = disk.stores;
  s.disk_evictions = disk.evictions;
  s.disk_load_ns = disk.load_ns;
  s.disk_store_ns = disk.store_ns;
  s.shm_attached = disk.shm_attached;
  s.shm_entries = disk.shm_entries;
  s.shm_hits = disk.shm_hits;
  s.shm_misses = disk.shm_misses;
  s.shm_inserts = disk.shm_inserts;
  s.shm_evictions = disk.shm_evictions;
  s.shm_errors = disk.shm_errors;
  return s;
}

std::size_t CompileService::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.table.size();
  }
  return total;
}

Error CompileService::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void CompileService::EvictIfNeeded() {
  if (options_.capacity == 0) return;
  // Cross-shard global LRU: pick each shard's oldest non-pending entry (its
  // LRU tail-ward walk) and evict the globally oldest of those. Pending
  // entries are pinned -- their compile is still running and must stay
  // discoverable for coalescing. Bounded retries keep a racing hit (which
  // can move the chosen victim) from livelocking us.
  int attempts = 0;
  while (entry_count_.load(std::memory_order_relaxed) > options_.capacity &&
         attempts++ < static_cast<int>(4 * kShardCount)) {
    std::size_t victim_shard = kShardCount;
    SpecKey victim_key;
    std::uint64_t victim_used = ~0ULL;
    for (std::size_t i = 0; i < kShardCount; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mutex);
      for (auto it = shards_[i].lru.rbegin(); it != shards_[i].lru.rend();
           ++it) {
        auto found = shards_[i].table.find(*it);
        if (found == shards_[i].table.end()) continue;  // defensive
        const auto state = static_cast<FunctionHandle::State>(
            found->second.slot->state.load(std::memory_order_acquire));
        if (state == FunctionHandle::State::kPending) continue;
        if (found->second.last_used_ns < victim_used) {
          victim_used = found->second.last_used_ns;
          victim_key = *it;
          victim_shard = i;
        }
        break;  // oldest non-pending entry of this shard found
      }
    }
    if (victim_shard == kShardCount) return;  // everything pending
    std::lock_guard<std::mutex> lock(shards_[victim_shard].mutex);
    auto found = shards_[victim_shard].table.find(victim_key);
    if (found == shards_[victim_shard].table.end()) continue;  // raced away
    const auto state = static_cast<FunctionHandle::State>(
        found->second.slot->state.load(std::memory_order_acquire));
    if (state == FunctionHandle::State::kPending) continue;  // raced to pend?
    shards_[victim_shard].lru.erase(found->second.lru_pos);
    shards_[victim_shard].table.erase(found);
    ShardMetrics::Get().entries[victim_shard]->Set(
        static_cast<std::int64_t>(shards_[victim_shard].table.size()));
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    counters_.evictions.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().evictions.Add(1);
  }
}

void CompileService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_jobs_;
    }
    switch (job.kind) {
      case Job::Kind::kBaseline:
        CompileBaseline(job);
        break;
      case Job::Kind::kPromote:
        CompilePromote(job);
        break;
      case Job::Kind::kNormal:
        CompileOne(job);
        break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_jobs_;
      if (queue_.empty() && active_jobs_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

/// Applies the memory fixations of a request. When the snapshots hold
/// pointer slots that provably address other fixed regions
/// (analysis::FindPointerLinks), every region -- parameter-bound kConstMem
/// and unanchored kConstRange alike -- is specialized as one linked graph so
/// the optimizer can chase the indirection at Tier 0
/// (docs/static_analysis.md). Without links this degenerates to the flat
/// per-parameter path; a link-free kConstRange has no Tier-0 effect (the
/// Tier-1 fallback still pins it with SetMemRange).
Status SpecializeMemory(lift::LiftedFunction& lifted,
                        const std::vector<SpecAction>& specs) {
  std::vector<const SpecAction*> mem;
  for (const SpecAction& spec : specs) {
    if (spec.kind != SpecAction::Kind::kParam) mem.push_back(&spec);
  }
  if (mem.empty()) return Status::Ok();

  std::vector<analysis::FixedRegion> regions;
  regions.reserve(mem.size());
  for (const SpecAction* spec : mem) {
    regions.push_back(analysis::FixedRegion{
        spec->mem_addr, std::span<const std::uint8_t>(spec->bytes)});
  }
  const std::vector<analysis::PointerLink> links =
      analysis::FindPointerLinks(regions);

  if (links.empty()) {
    for (const SpecAction* spec : mem) {
      if (spec->kind != SpecAction::Kind::kConstMem) continue;
      DBLL_TRY_STATUS(lifted.SpecializeParamToConstMem(
          spec->index, spec->bytes.data(), spec->bytes.size()));
    }
    return Status::Ok();
  }

  std::vector<lift::LiftedFunction::ConstMemRegion> graph;
  graph.reserve(mem.size());
  for (const SpecAction* spec : mem) {
    lift::LiftedFunction::ConstMemRegion region;
    region.param_index =
        spec->kind == SpecAction::Kind::kConstMem ? spec->index : -1;
    region.address = spec->mem_addr;
    region.bytes = spec->bytes;
    graph.push_back(std::move(region));
  }
  for (const analysis::PointerLink& link : links) {
    graph[static_cast<std::size_t>(link.src_region)].links.push_back(
        lift::LiftedFunction::ConstMemRegion::Link{
            link.src_offset, link.dst_region, link.dst_offset});
  }
  return lifted.SpecializeConstMemGraph(graph);
}

}  // namespace

Error CompileService::TryTier0(const CompileRequest& request,
                               StageTimes& times, std::uint64_t* entry,
                               const std::string& cache_tag,
                               ObjectEntry* captured) {
  Error failure;

  // Stage 1: decode + lift (+ IR-level specialization, which mutates the
  // pre-optimization module and is therefore part of this stage).
  const std::uint64_t t0 = NowNs();
  lift::Lifter lifter(request.config);
  auto lifted = lifter.Lift(request.address, request.signature);
  if (!lifted.has_value()) {
    failure = std::move(lifted).error();
  } else {
    Status status = Status::Ok();
    for (const SpecAction& spec : request.specs) {
      if (spec.kind != SpecAction::Kind::kParam) continue;
      status = lifted->SpecializeParam(spec.index, spec.value);
      if (!status.ok()) break;
    }
    if (status.ok()) status = SpecializeMemory(*lifted, request.specs);
    if (!status.ok()) failure = status.error();
  }
  times.lift_ns += NowNs() - t0;

  // Stage 2: optimization pipeline.
  if (failure.ok()) {
    const std::uint64_t t1 = NowNs();
    Status status = lifted->Optimize();
    times.opt_ns += NowNs() - t1;
    if (!status.ok()) failure = status.error();

    // Stage 3: JIT codegen. Module installation into the shared LLJIT
    // session is serialized; lift and optimize above run fully parallel.
    if (failure.ok()) {
      // Tagging makes the compile leave its relocatable object behind for
      // the persistent store (LiftedFunction::SetCacheTag). Must happen
      // before Compile(): the capture keys on the module identifier.
      if (captured != nullptr && !cache_tag.empty()) {
        lifted->SetCacheTag(cache_tag);
      }
      const std::uint64_t t2 = NowNs();
      std::lock_guard<std::mutex> jit_lock(jit_mutex_);
      auto compiled = lifted->Compile(jit_);
      times.jit_ns += NowNs() - t2;
      if (compiled.has_value()) {
        *entry = *compiled;
        if (captured != nullptr && !cache_tag.empty()) {
          captured->object = lift::TakeCapturedObject(jit_, cache_tag);
          captured->wrapper_name = lifted->wrapper_name();
          captured->membase_symbol = lifted->membase_symbol();
          captured->membase_value = lifted->membase_value();
        }
      } else {
        failure = std::move(compiled).error();
      }
    }
  }
  return failure;
}

void CompileService::CompileBaseline(Job& job) {
  DBLL_TRACE_SPAN("tiering.baseline");
  CacheMetrics& metrics = CacheMetrics::Get();
  TierMetrics& tm = TierMetrics::Get();
  const std::shared_ptr<TierProfile> profile = job.slot->profile;
  const std::uint32_t gen =
      job.slot->generation.load(std::memory_order_acquire);

  const std::uint64_t dequeue_ns = NowNs();
  const std::uint64_t queue_wait_ns = dequeue_ns - job.enqueue_ns;
  obs::Tracer::Default().RecordManual("cache.queue_wait", job.enqueue_ns,
                                      queue_wait_ns);
  metrics.queue_wait_ns.Record(queue_wait_ns);

  StageTimes times;
  std::uint64_t entry = 0;
  ObjectEntry captured;
  const std::string cache_tag =
      job.persist ? CacheTag(job.fingerprint) : std::string();

  // Progressive install, stage 1: the interim DBrew seed. A plain rewrite
  // of the *original* request costs tens of microseconds -- three orders of
  // magnitude under even the minimal LLVM pipeline -- so wait() returns with
  // real specialized code while stages 2/3 below still run. The seed serves
  // as Tier-0a (it IS the baseline tier, just its cheapest body); the LLVM
  // compile rebinds over it in place. Rewrite failures are non-fatal: the
  // classic install below still happens, wait() just blocks until then.
  bool interim = false;
  if (profile->options().interim) {
    DBLL_TRACE_SPAN("tiering.interim");
    StageTimes seed_times;
    const std::uint64_t seed_start_ns = NowNs();
    auto tier1 = Tier1Rewrite(job.original);
    seed_times.tier0a_ns = NowNs() - seed_start_ns;
    counters_.tier0a_ns.fetch_add(seed_times.tier0a_ns,
                                  std::memory_order_relaxed);
    tm.tier0a_ns.Add(seed_times.tier0a_ns);
    if (tier1.has_value()) {
      std::uint64_t seed = tier1->entry;
      if (profile->options().guard) {
        const std::vector<GuardCheck> checks = GuardableChecks(job.original);
        if (!checks.empty()) {
          auto stub = BuildGuardStub(checks, tier1->entry, job.slot->generic,
                                     profile->deopt_cell());
          if (stub.has_value()) {
            seed = stub->entry;
            profile->AdoptGuard(std::move(*stub));
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        tier1_code_.push_back(std::move(tier1->rewriter));
      }
      // Same ordering discipline as the classic install below: phase first,
      // publication second. The seed is a fresh install like any other, so
      // it serves its first calls under probation too (no fingerprint: the
      // interim rewrite is never a persisted object).
      profile->OnBaselineInstalled(seed);
      const std::uint64_t guarded_seed =
          ArmProbation(job.slot, job.key, 0, seed);
      if (job.slot->Finish(gen, FunctionHandle::State::kSpecialized,
                           Tier::kBaseline, guarded_seed, {}, seed_times)) {
        interim = true;
        counters_.interim_installs.fetch_add(1, std::memory_order_relaxed);
        counters_.baseline_installs.fetch_add(1, std::memory_order_relaxed);
        tm.interim_installs.Add(1);
        tm.baseline_installs.Add(1);
        metrics.installs.Add(1);
      }
    }
  }

  // Warm start of the *baseline* tier: the Tier-0a object is cacheable like
  // any other (its fingerprint derives from the baseline SpecKey).
  bool from_disk = false;
  if (job.persist) {
    if (std::shared_ptr<ObjectStore> st = store()) {
      ObjectEntry disk_entry;
      if (st->Load(job.fingerprint, &disk_entry)) {
        Expected<std::uint64_t> installed = [&]() -> Expected<std::uint64_t> {
          std::lock_guard<std::mutex> jit_lock(jit_mutex_);
          return lift::LoadCachedObject(jit_, disk_entry.object,
                                        disk_entry.wrapper_name,
                                        disk_entry.membase_symbol,
                                        disk_entry.membase_value);
        }();
        if (installed.has_value()) {
          entry = *installed;
          from_disk = true;
        }
      }
    }
  }

  if (!from_disk) {
    StageTimes attempt;
    Error failure = TryTier0(job.request, attempt, &entry, cache_tag,
                             job.persist ? &captured : nullptr);
    // The whole baseline effort is charged to the dedicated tier0a bucket
    // (cache.tier0a_ns), never to the O3 stage counters -- the bench's
    // breakeven math depends on the two being separable.
    times.tier0a_ns = attempt.lift_ns + attempt.opt_ns + attempt.jit_ns;
    counters_.tier0a_ns.fetch_add(times.tier0a_ns, std::memory_order_relaxed);
    counters_.tier0a_compiles.fetch_add(1, std::memory_order_relaxed);
    tm.tier0a_ns.Add(times.tier0a_ns);
    tm.tier0a_compiles.Add(1);
    if (!failure.ok()) {
      if (interim) {
        // The LLVM baseline refused to build, but the interim seed already
        // serves this handle -- exactly what the classic degradation chain
        // would install after an LLVM failure. Keep it, record the failure
        // on the handle and the service, and leave the promotion ladder
        // open: a later hot crossing still gets its O3 attempt.
        counters_.tier0_failures.fetch_add(1, std::memory_order_relaxed);
        metrics.tier0_fail.Add(1);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          last_error_ = failure;
        }
        const Tier expected = Tier::kBaseline;
        job.slot->Rebind(Tier::kBaseline,
                         job.slot->target.load(std::memory_order_acquire),
                         times, &failure, &expected);
        return;
      }
      // No seed either: tiering has nothing to serve from, so the slot goes
      // down the classic path on the original request -- full O3, then the
      // normal degradation chain. The profile stops firing actions.
      profile->Abandon();
      job.kind = Job::Kind::kNormal;
      job.request = job.original;
      job.enqueue_ns = NowNs();
      job.fingerprint = 0;
      job.persist = false;  // the O3 fingerprint was not carried on this job
      CompileOne(job);
      return;
    }
  }

  // Guard-wrap the entry so a violated fixed-parameter assumption routes to
  // the generic entry (and is counted for the deopt policy) instead of
  // reaching code specialized for different values.
  std::uint64_t serve = entry;
  if (profile->options().guard) {
    const std::vector<GuardCheck> checks = GuardableChecks(job.original);
    if (!checks.empty()) {
      auto stub = BuildGuardStub(checks, entry, job.slot->generic,
                                 profile->deopt_cell());
      if (stub.has_value()) {
        serve = stub->entry;
        profile->AdoptGuard(std::move(*stub));
      }
    }
  }

  // One probation guard covers both install shapes below: the baseline body
  // is new code either way (freshly compiled or warm-loaded from disk), and
  // `job.fingerprint` is the baseline object's -- a caught fault quarantines
  // exactly the entry that produced it (including one stored moments later:
  // QuarantineFingerprint deletes the file and Store refuses the poisoned
  // fingerprint).
  serve = ArmProbation(job.slot, job.key, job.persist ? job.fingerprint : 0,
                       serve);

  {
    DBLL_TRACE_SPAN("cache.install");
    const std::uint64_t install_start_ns = NowNs();
    if (interim) {
      // Progressive install, stage 3: the LLVM body replaces the DBrew seed
      // in place -- same tier, same phase, better code. The expected-tier
      // check makes this lose against any promotion or deopt that landed
      // while the compile ran; their swap stays authoritative.
      const Tier expected = Tier::kBaseline;
      if (job.slot->Rebind(Tier::kBaseline, serve, times, nullptr,
                           &expected)) {
        profile->OnBaselineRefined(serve);
        metrics.installs.Add(1);
        metrics.install_ns.Record(NowNs() - install_start_ns);
      }
    } else {
      // Phase first, publication second: a caller woken by Finish() must
      // already observe TierPhase::kBaseline, or its first profile samples
      // run against the stale queued phase and skip promotion/deopt checks.
      // (Nothing else can finish a baseline slot, so the window where the
      // phase says kBaseline but the slot is still pending is harmless: the
      // guard entry is not reachable yet, and a premature promote attempt
      // bounces off Rebind's state check.)
      profile->OnBaselineInstalled(serve);
      if (job.slot->Finish(gen, FunctionHandle::State::kSpecialized,
                           Tier::kBaseline, serve, {}, times)) {
        counters_.baseline_installs.fetch_add(1, std::memory_order_relaxed);
        tm.baseline_installs.Add(1);
        metrics.installs.Add(1);
        metrics.install_ns.Record(NowNs() - install_start_ns);
      }
    }
  }
  if (!from_disk && job.persist && !captured.object.empty()) {
    captured.fingerprint = job.fingerprint;
    captured.opt_tier = 1;
    captured.isa_level =
        static_cast<std::uint32_t>(job.request.config.isa_level);
    if (std::shared_ptr<ObjectStore> st = store()) st->Store(captured);
  }
}

void CompileService::CompilePromote(Job& job) {
  DBLL_TRACE_SPAN("tiering.promote");
  CacheMetrics& metrics = CacheMetrics::Get();
  TierMetrics& tm = TierMetrics::Get();
  const std::shared_ptr<TierProfile> profile = job.slot->profile;
  if (!profile) return;

  const std::uint64_t dequeue_ns = NowNs();
  const std::uint64_t queue_wait_ns = dequeue_ns - job.enqueue_ns;
  obs::Tracer::Default().RecordManual("cache.queue_wait", job.enqueue_ns,
                                      queue_wait_ns);
  metrics.queue_wait_ns.Record(queue_wait_ns);

  StageTimes attempt;
  std::uint64_t entry = 0;
  ObjectEntry captured;
  const std::string cache_tag =
      job.persist ? CacheTag(job.fingerprint) : std::string();
  Error failure = TryTier0(job.request, attempt, &entry, cache_tag,
                           job.persist ? &captured : nullptr);
  // A promotion is a real O3 compile: account it exactly like a miss-path
  // one so stage_total keeps meaning "every LLVM run".
  counters_.compiles.fetch_add(1, std::memory_order_relaxed);
  counters_.lift_ns.fetch_add(attempt.lift_ns, std::memory_order_relaxed);
  counters_.opt_ns.fetch_add(attempt.opt_ns, std::memory_order_relaxed);
  counters_.jit_ns.fetch_add(attempt.jit_ns, std::memory_order_relaxed);
  metrics.compiles.Add(1);
  metrics.lift_ns.Add(attempt.lift_ns);
  metrics.opt_ns.Add(attempt.opt_ns);
  metrics.jit_ns.Add(attempt.jit_ns);

  if (failure.ok()) {
    std::uint64_t serve = entry;
    if (profile->options().guard) {
      const std::vector<GuardCheck> checks = GuardableChecks(job.request);
      if (!checks.empty()) {
        auto stub = BuildGuardStub(checks, entry, job.slot->generic,
                                   profile->deopt_cell());
        if (stub.has_value()) {
          serve = stub->entry;
          profile->AdoptGuard(std::move(*stub));
        }
      }
    }
    // The profile remembers the *raw* entry (probation is a property of one
    // install, not of the code): a re-promotion after a deopt re-arms its
    // own guard around the saved entry in EnqueuePromotion.
    const std::uint64_t armed = ArmProbation(
        job.slot, job.key, job.persist ? job.fingerprint : 0, serve);
    if (job.slot->Rebind(Tier::kLlvm, armed, attempt, nullptr)) {
      profile->OnPromoted(serve);
      counters_.promotions.fetch_add(1, std::memory_order_relaxed);
      tm.promotions.Add(1);
      metrics.installs.Add(1);
    } else {
      profile->OnPromoteFailed(/*deterministic=*/false);
    }
    if (job.persist && !captured.object.empty()) {
      captured.fingerprint = job.fingerprint;
      captured.opt_tier = 0;
      captured.isa_level =
          static_cast<std::uint32_t>(job.request.config.isa_level);
      if (std::shared_ptr<ObjectStore> st = store()) st->Store(captured);
    }
    return;
  }

  // Failed promotion: the baseline keeps serving -- a *working* slower
  // entry always beats thrashing. Deterministic failures pin the ladder
  // (re-running LLVM on the same input fails identically); transient ones
  // release the in-flight latch so a later sample may retry.
  counters_.tier0_failures.fetch_add(1, std::memory_order_relaxed);
  counters_.promote_failures.fetch_add(1, std::memory_order_relaxed);
  metrics.tier0_fail.Add(1);
  tm.promote_failures.Add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = failure;
  }
  const Tier current_tier =
      static_cast<Tier>(job.slot->tier.load(std::memory_order_acquire));
  const std::uint64_t current_target =
      job.slot->target.load(std::memory_order_acquire);
  job.slot->Rebind(current_tier, current_target, StageTimes{}, &failure);
  profile->OnPromoteFailed(IsDeterministic(failure.kind()));
  BreakerOnFault(job.key);
}

void CompileService::EnqueuePromotion(
    const std::shared_ptr<FunctionHandle::Slot>& slot,
    const CompileRequest& request, std::uint64_t fingerprint, bool persist) {
  const std::shared_ptr<TierProfile> profile = slot->profile;
  if (!profile) return;
  // Re-promotion after a deopt: the optimized code still exists in the JIT;
  // swap it back in with no compile at all.
  if (const std::uint64_t saved = profile->optimized_entry()) {
    DBLL_TRACE_SPAN("tiering.promote");
    // The code already exists, but this slot just deopted out of it -- the
    // re-install earns a fresh probation window like any other rebind.
    const std::uint64_t armed =
        ArmProbation(slot, SpecKey(request), persist ? fingerprint : 0, saved);
    if (slot->Rebind(Tier::kLlvm, armed, StageTimes{}, nullptr)) {
      profile->OnPromoted(saved);
      counters_.promotions.fetch_add(1, std::memory_order_relaxed);
      TierMetrics::Get().promotions.Add(1);
    } else {
      profile->OnPromoteFailed(/*deterministic=*/false);
    }
    return;
  }
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ ||
        (options_.max_queue != 0 && queue_.size() >= options_.max_queue)) {
      rejected = true;
    } else {
      Job job;
      job.kind = Job::Kind::kPromote;
      job.request = request;
      job.slot = slot;
      job.key = SpecKey(request);
      job.enqueue_ns = NowNs();
      job.fingerprint = fingerprint;
      job.persist = persist;
      queue_.push_back(std::move(job));
    }
  }
  if (rejected) {
    counters_.promote_failures.fetch_add(1, std::memory_order_relaxed);
    TierMetrics::Get().promote_failures.Add(1);
    profile->OnPromoteFailed(/*deterministic=*/false);
    return;
  }
  work_cv_.notify_one();
}

void CompileService::CompileOne(Job& job) {
  DBLL_TRACE_SPAN("cache.compile");
  const CompileRequest& request = job.request;
  CacheMetrics& metrics = CacheMetrics::Get();
  StageTimes times;
  std::vector<Error> chain;
  const std::uint32_t gen =
      job.slot->generation.load(std::memory_order_acquire);

  // How long the job sat in the queue behind other compiles. The interval
  // starts on the requesting thread and ends here on the worker, so it is
  // recorded manually rather than with an RAII span.
  const std::uint64_t dequeue_ns = NowNs();
  const std::uint64_t queue_wait_ns = dequeue_ns - job.enqueue_ns;
  obs::Tracer::Default().RecordManual("cache.queue_wait", job.enqueue_ns,
                                      queue_wait_ns);
  metrics.queue_wait_ns.Record(queue_wait_ns);

  // Static lift-eligibility audit (Options::audit): a kFatal diagnostic
  // proves Tier 0 would fail deterministically, so the job is routed to the
  // Tier-1 fallback -- and the negative cache seeded -- without constructing
  // a single LLVM object. Worst-case cost is one CFG walk per audited
  // function; it runs here on the worker so Request() stays non-blocking.
  if (!job.skip_tier0 && options_.audit) {
    analysis::AuditOptions audit_options;
    audit_options.cfg.max_instructions = request.config.max_instructions;
    audit_options.follow_calls = request.config.lift_calls;
    audit_options.max_call_depth = request.config.max_call_depth;
    // Mirror the lifter's range-analysis knobs so the audit verdict matches
    // what the lift will actually attempt: a jump table the lifter would
    // resolve must not be reported as a fatal indirect jump here (and vice
    // versa with the knob off).
    audit_options.value_ranges = request.config.value_ranges;
    audit_options.range_budget = request.config.range_budget;
    const analysis::AuditReport report =
        analysis::AuditFunction(request.address, audit_options);
    if (const analysis::Diagnostic* fatal = report.first_fatal()) {
      job.skip_tier0 = true;
      job.negative_error =
          Error(ErrorKind::kUnsupported,
                std::string("lift-eligibility audit: ") +
                    analysis::ToString(fatal->kind) + ": " + fatal->message,
                fatal->site);
      if (options_.negative_capacity > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (negative_.size() >= options_.negative_capacity) {
          negative_.clear();
        }
        negative_.emplace(job.key, job.negative_error);
      }
    }
  }

  std::uint64_t entry = 0;
  bool tier0_ok = false;
  ObjectEntry captured;
  const std::string cache_tag =
      job.persist ? CacheTag(job.fingerprint) : std::string();
  ObjectEntry* capture_into = job.persist ? &captured : nullptr;
  if (job.skip_tier0) {
    // Negative-cache hit: the deterministic Tier-0 failure was remembered at
    // Request time; go straight to the fallback without touching LLVM.
    chain.push_back(job.negative_error);
  } else {
    // Register with the deadline monitor for the whole Tier-0 effort
    // (including the one transient retry).
    bool watched = false;
    if (job.deadline_ms > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.push_front(
          InFlight{job.slot, request,
                   NowNs() + std::uint64_t{job.deadline_ms} * 1'000'000ULL,
                   job.deadline_ms, false});
      watched = true;
      monitor_cv_.notify_one();
    }

    auto account_attempt = [&](const StageTimes& attempt,
                               const Error& failure) {
      counters_.compiles.fetch_add(1, std::memory_order_relaxed);
      counters_.lift_ns.fetch_add(attempt.lift_ns, std::memory_order_relaxed);
      counters_.opt_ns.fetch_add(attempt.opt_ns, std::memory_order_relaxed);
      counters_.jit_ns.fetch_add(attempt.jit_ns, std::memory_order_relaxed);
      if (!failure.ok()) {
        counters_.tier0_failures.fetch_add(1, std::memory_order_relaxed);
      }
      metrics.compiles.Add(1);
      metrics.lift_ns.Add(attempt.lift_ns);
      metrics.opt_ns.Add(attempt.opt_ns);
      metrics.jit_ns.Add(attempt.jit_ns);
      if (!failure.ok()) metrics.tier0_fail.Add(1);
    };

    StageTimes attempt;
    Error failure = TryTier0(request, attempt, &entry, cache_tag, capture_into);
    account_attempt(attempt, failure);
    times.lift_ns += attempt.lift_ns;
    times.opt_ns += attempt.opt_ns;
    times.jit_ns += attempt.jit_ns;

    if (!failure.ok() && IsTransient(failure.kind())) {
      // One retry with decorrelated backoff: transient failures (resource
      // pressure) are the one class where trying again can help.
      chain.push_back(failure);
      const std::uint32_t backoff = BackoffMs(options_.retry_backoff_ms);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      counters_.retries.fetch_add(1, std::memory_order_relaxed);
      metrics.retries.Add(1);
      StageTimes retry_attempt;
      entry = 0;
      failure = TryTier0(request, retry_attempt, &entry, cache_tag,
                         capture_into);
      account_attempt(retry_attempt, failure);
      times.lift_ns += retry_attempt.lift_ns;
      times.opt_ns += retry_attempt.opt_ns;
      times.jit_ns += retry_attempt.jit_ns;
      if (failure.ok()) {
        tier0_ok = true;  // chain keeps the transient error as history
      } else {
        chain.push_back(failure);
      }
    } else if (!failure.ok()) {
      chain.push_back(failure);
      if (IsDeterministic(failure.kind()) && options_.negative_capacity > 0) {
        // This failure will recur on every identical request: remember it so
        // a re-request (after eviction/Clear) skips Tier 0 entirely.
        std::lock_guard<std::mutex> lock(mutex_);
        if (negative_.size() >= options_.negative_capacity) {
          negative_.clear();  // crude bound; correctness only needs "cached"
        }
        negative_.emplace(job.key, failure);
      }
    } else {
      tier0_ok = true;
    }

    if (watched) {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (it->slot == job.slot) {
          inflight_.erase(it);
          break;
        }
      }
    }

    // The monitor may have taken this slot over mid-compile (deadline
    // overrun). The generation mismatch makes any Finish below a no-op; skip
    // the degrade too -- the monitor already ran it.
    if (job.slot->generation.load(std::memory_order_acquire) != gen) {
      return;
    }
  }

  if (tier0_ok) {
    // The swap-install: publishing the terminal state and waking waiters.
    {
      DBLL_TRACE_SPAN("cache.install");
      const std::uint64_t install_start_ns = NowNs();
      const std::uint64_t serve = ArmProbation(
          job.slot, job.key, job.persist ? job.fingerprint : 0, entry);
      if (job.slot->Finish(gen, FunctionHandle::State::kSpecialized,
                           Tier::kLlvm, serve, std::move(chain), times)) {
        metrics.installs.Add(1);
        metrics.install_ns.Record(NowNs() - install_start_ns);
      }
    }
    // Persist *after* the install: the caller already has the specialized
    // entry; the disk write is a warm-start optimization for the next
    // process and must never delay this one's swap.
    if (job.persist && !captured.object.empty()) {
      captured.fingerprint = job.fingerprint;
      captured.isa_level =
          static_cast<std::uint32_t>(job.request.config.isa_level);
      if (std::shared_ptr<ObjectStore> st = store()) st->Store(captured);
    }
    return;
  }

  // A genuine Tier-0 failure feeds the breaker (a skip_tier0 job never ran
  // Tier 0 here -- re-counting a remembered failure or a breaker denial
  // would hold the breaker open forever under constant traffic).
  if (!job.skip_tier0) BreakerOnFault(job.key);
  Degrade(job.slot, gen, request, std::move(chain), times);
}

void CompileService::Degrade(
    const std::shared_ptr<FunctionHandle::Slot>& slot,
    std::uint32_t expected_generation, const CompileRequest& request,
    std::vector<Error> chain, StageTimes times) {
  CacheMetrics& metrics = CacheMetrics::Get();
  if (options_.tier1_fallback) {
    const std::uint64_t t = NowNs();
    auto tier1 = Tier1Rewrite(request);
    times.tier1_ns += NowNs() - t;
    counters_.tier1_ns.fetch_add(times.tier1_ns, std::memory_order_relaxed);
    metrics.tier1_ns.Add(times.tier1_ns);
    if (tier1.has_value()) {
      const std::uint64_t entry = tier1->entry;
      {
        // The rewriter owns the emitted code buffer; park it on the service
        // so the documented "code lives until the service is destroyed"
        // lifetime holds for fallback code too (even across slot eviction).
        std::lock_guard<std::mutex> lock(mutex_);
        tier1_code_.push_back(std::move(tier1->rewriter));
      }
      counters_.tier1_serves.fetch_add(1, std::memory_order_relaxed);
      metrics.tier1_serve.Add(1);
      DBLL_TRACE_SPAN("cache.install");
      const std::uint64_t install_start_ns = NowNs();
      if (slot->Finish(expected_generation,
                       FunctionHandle::State::kSpecialized, Tier::kDbrew,
                       entry, std::move(chain), times)) {
        metrics.installs.Add(1);
        metrics.install_ns.Record(NowNs() - install_start_ns);
      }
      return;
    }
    chain.push_back(std::move(tier1).error());
  }

  // Tier 2: every tier exhausted; the handle pins the generic entry and the
  // terminal state is kFailed, with the whole per-tier chain attached.
  const Error root = chain.empty() ? Error(ErrorKind::kInternal,
                                           "degraded with an empty chain")
                                   : chain.front();
  counters_.tier2_serves.fetch_add(1, std::memory_order_relaxed);
  counters_.failures.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = root;
  }
  metrics.tier2_serve.Add(1);
  metrics.failures.Add(1);
  slot->Finish(expected_generation, FunctionHandle::State::kFailed,
               Tier::kGeneric, 0, std::move(chain), times);
}

void CompileService::RejectImmediately(
    const std::shared_ptr<FunctionHandle::Slot>& slot, Error error) {
  CacheMetrics& metrics = CacheMetrics::Get();
  counters_.tier2_serves.fetch_add(1, std::memory_order_relaxed);
  counters_.failures.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = error;
  }
  metrics.tier2_serve.Add(1);
  metrics.failures.Add(1);
  slot->Finish(slot->generation.load(std::memory_order_relaxed),
               FunctionHandle::State::kFailed, Tier::kGeneric, 0,
               {std::move(error)}, StageTimes{});
}

void CompileService::TakeOver(
    const std::shared_ptr<FunctionHandle::Slot>& slot,
    const CompileRequest& request, std::uint32_t deadline_ms) {
  std::uint32_t new_generation;
  {
    // Serialize against the worker's Finish: whoever gets the slot mutex
    // first wins. If the worker finished a hair before the deadline fired,
    // its result stands and there is nothing to take over.
    std::lock_guard<std::mutex> slot_lock(slot->mutex);
    if (static_cast<FunctionHandle::State>(
            slot->state.load(std::memory_order_relaxed)) !=
        FunctionHandle::State::kPending) {
      return;
    }
    new_generation =
        slot->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().timeouts.Add(1);
  Error timeout(ErrorKind::kTimeout,
                "Tier-0 compile exceeded its " + std::to_string(deadline_ms) +
                    "ms deadline; degrading",
                request.address);
  Degrade(slot, new_generation, request, {std::move(timeout)}, StageTimes{});
}

void CompileService::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    // Earliest pending deadline decides how long to sleep; no deadlines
    // means sleeping until a worker registers one (or shutdown).
    std::uint64_t next_deadline = 0;
    for (const InFlight& flight : inflight_) {
      if (flight.fired) continue;
      if (next_deadline == 0 || flight.deadline_ns < next_deadline) {
        next_deadline = flight.deadline_ns;
      }
    }
    if (next_deadline == 0) {
      monitor_cv_.wait(lock);
      continue;
    }
    const std::uint64_t now = NowNs();
    if (now < next_deadline) {
      monitor_cv_.wait_for(lock,
                           std::chrono::nanoseconds(next_deadline - now));
      continue;
    }
    // Collect everything expired, then process outside mutex_ (the degrade
    // runs a real DBrew rewrite). `fired` keeps an entry from being taken
    // over twice; the owning worker still erases it on its way out.
    struct Expired {
      std::shared_ptr<FunctionHandle::Slot> slot;
      CompileRequest request;
      std::uint32_t deadline_ms;
    };
    std::vector<Expired> expired;
    for (InFlight& flight : inflight_) {
      if (!flight.fired && flight.deadline_ns <= now) {
        flight.fired = true;
        expired.push_back({flight.slot, flight.request, flight.deadline_ms});
      }
    }
    // The degrades count as active work so WaitIdle() cannot return while a
    // take-over is still installing the fallback.
    active_jobs_ += static_cast<int>(expired.size());
    lock.unlock();
    for (Expired& e : expired) {
      TakeOver(e.slot, e.request, e.deadline_ms);
    }
    lock.lock();
    active_jobs_ -= static_cast<int>(expired.size());
    if (queue_.empty() && active_jobs_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace dbll::runtime
