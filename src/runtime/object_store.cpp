// dbll -- persistent compiled-object cache (see
// include/dbll/runtime/object_store.h for the design and contracts).
#include "dbll/runtime/object_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "dbll/lift/lifter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/containment.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/fault.h"
#include "dbll/support/file_io.h"

namespace dbll::runtime {

namespace {

using support::FileLock;

/// Entry container layout (all integers little-endian):
///   magic   8B  "DBLLOBJ1"
///   version u32 (kFormatVersion)
///   fingerprint u64
///   llvm_version    u32 len + bytes
///   target_cpu      u32 len + bytes
///   wrapper_name    u32 len + bytes
///   membase_symbol  u32 len + bytes
///   membase_value   u64
///   opt_tier        u32  (0 = full O3, 1 = Tier-0a baseline; v2+)
///   isa_level       u32  (ISA ladder level, support/cpu_features.h; v3+)
///   payload_size    u64
///   payload_fnv     u64  (FNV-1a over the payload bytes)
///   payload         payload_size bytes
/// Header fields are validated structurally (bounded lengths, exact file
/// size); the payload is validated by length + checksum. Anything off is
/// "corrupt", which the loader treats as a miss and deletes.
///
/// v1 -> v2 added the opt_tier field for the tiering engine (tiering.h).
/// v2 -> v3 added the isa_level field for multi-versioned codegen; the
/// per-entry target_cpu stamp became the per-level cpu+features string
/// (lift::JitTargetCpuFor). Old-version entries fail the version check and
/// are dropped on load -- a one-time cold start, never a wrong object.
constexpr char kMagic[8] = {'D', 'B', 'L', 'L', 'O', 'B', 'J', '1'};
constexpr std::uint32_t kFormatVersion = 3;
constexpr std::uint32_t kMaxStringLen = 4096;
constexpr std::uint64_t kMaxPayload = 1ull << 30;
/// Window of target-function code bytes folded into the fingerprint. Large
/// enough to catch any real recompile of a kernel, small enough to stay off
/// the hot path; bounded by the mapping via SafeReadMemory.
constexpr std::size_t kCodeWindowBytes = 512;

const char kManifestName[] = "manifest.tsv";
const char kLockName[] = ".lock";

std::uint64_t Fnv1aBytes(const std::uint8_t* data, std::size_t size,
                         std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t NowNs() { return obs::Tracer::NowNs(); }

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutStr(std::vector<std::uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over a byte buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ReadU32(std::uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool ReadU64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool ReadStr(std::string* s) {
    std::uint32_t len = 0;
    if (!ReadU32(&len) || len > kMaxStringLen || size_ - pos_ < len) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool Skip(std::uint64_t n) {
    if (size_ - pos_ < n) return false;
    pos_ += static_cast<std::size_t>(n);
    return true;
  }
  std::size_t remaining() const { return size_ - pos_; }
  const std::uint8_t* cursor() const { return data_ + pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> Serialize(const ObjectEntry& entry,
                                    const std::string& llvm_version,
                                    const std::string& target_cpu) {
  std::vector<std::uint8_t> out;
  out.reserve(entry.object.size() + 256);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  PutU32(out, kFormatVersion);
  PutU64(out, entry.fingerprint);
  PutStr(out, llvm_version);
  PutStr(out, target_cpu);
  PutStr(out, entry.wrapper_name);
  PutStr(out, entry.membase_symbol);
  PutU64(out, entry.membase_value);
  PutU32(out, entry.opt_tier);
  PutU32(out, entry.isa_level);
  PutU64(out, entry.object.size());
  PutU64(out, Fnv1aBytes(entry.object.data(), entry.object.size()));
  out.insert(out.end(), entry.object.begin(), entry.object.end());
  return out;
}

/// Parses and fully validates one serialized entry. On failure, *detail
/// explains the first violated check.
bool Deserialize(const std::vector<std::uint8_t>& bytes, ObjectEntry* out,
                 std::string* llvm_version, std::string* target_cpu,
                 std::string* detail) {
  Reader reader(bytes.data(), bytes.size());
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    *detail = "bad magic";
    return false;
  }
  Reader body(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic));
  std::uint32_t version = 0;
  if (!body.ReadU32(&version) || version != kFormatVersion) {
    *detail = "unknown format version";
    return false;
  }
  std::uint64_t payload_size = 0, payload_fnv = 0;
  if (!body.ReadU64(&out->fingerprint) || !body.ReadStr(llvm_version) ||
      !body.ReadStr(target_cpu) || !body.ReadStr(&out->wrapper_name) ||
      !body.ReadStr(&out->membase_symbol) ||
      !body.ReadU64(&out->membase_value) || !body.ReadU32(&out->opt_tier) ||
      !body.ReadU32(&out->isa_level) || !body.ReadU64(&payload_size) ||
      !body.ReadU64(&payload_fnv)) {
    *detail = "truncated header";
    return false;
  }
  if (out->isa_level > static_cast<std::uint32_t>(support::kMaxIsaLevel)) {
    // A level outside the ladder can only come from a hostile or corrupted
    // file; no host could ever validate or run it.
    *detail = "implausible isa level";
    return false;
  }
  if (payload_size > kMaxPayload || body.remaining() != payload_size) {
    *detail = "payload length mismatch";
    return false;
  }
  if (Fnv1aBytes(body.cursor(), static_cast<std::size_t>(payload_size)) !=
      payload_fnv) {
    *detail = "payload checksum mismatch";
    return false;
  }
  out->object.assign(body.cursor(), body.cursor() + payload_size);
  detail->clear();
  return true;
}

/// manifest.tsv: one "<16-hex-fingerprint>\t<last-used-ns>" line per entry,
/// advisory recency data only -- the directory listing is ground truth.
std::map<std::uint64_t, std::uint64_t> ReadManifest(const std::string& dir) {
  std::map<std::uint64_t, std::uint64_t> used;
  auto bytes = support::ReadFileBytes(dir + "/" + kManifestName);
  if (!bytes.has_value()) return used;
  std::istringstream in(
      std::string(bytes->begin(), bytes->end()));
  std::string line;
  while (std::getline(in, line)) {
    std::uint64_t fp = 0, ns = 0;
    if (std::sscanf(line.c_str(), "%lx\t%lu", &fp, &ns) == 2) used[fp] = ns;
  }
  return used;
}

void WriteManifest(const std::string& dir,
                   const std::map<std::uint64_t, std::uint64_t>& used) {
  std::string text;
  char buf[64];
  for (const auto& [fp, ns] : used) {
    std::snprintf(buf, sizeof(buf), "%016lx\t%lu\n", fp, ns);
    text += buf;
  }
  (void)support::WriteFileAtomic(dir + "/" + kManifestName, text.data(),
                                 text.size());
}

bool ParseEntryFileName(const std::string& name, std::uint64_t* fp) {
  if (name.size() != 20 || name.substr(16) != ".dbo") return false;
  std::uint64_t value = 0;
  for (char c : name.substr(0, 16)) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  *fp = value;
  return true;
}

struct ObjcacheMetrics {
  obs::Counter& disk_hits;
  obs::Counter& disk_misses;
  obs::Counter& disk_stores;
  obs::Counter& disk_evictions;
  obs::Counter& disk_errors;
  obs::Counter& disk_load_ns;
  obs::Counter& disk_store_ns;
  obs::Counter& disk_isa_refused;

  static ObjcacheMetrics& Get() {
    static ObjcacheMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new ObjcacheMetrics{
          r.GetCounter("cache.disk_hits"),   r.GetCounter("cache.disk_misses"),
          r.GetCounter("cache.disk_stores"), r.GetCounter("cache.disk_evictions"),
          r.GetCounter("cache.disk_errors"), r.GetCounter("cache.disk_load_ns"),
          r.GetCounter("cache.disk_store_ns"),
          r.GetCounter("cache.disk_isa_refused")};
    }();
    return *instance;
  }
};

}  // namespace

std::string ObjectStore::EntryFileName(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016lx.dbo", fingerprint);
  return buf;
}

ObjectStore::ObjectStore(Options options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    init_ = Error(ErrorKind::kBadConfig, "ObjectStore: empty directory");
    return;
  }
  init_ = support::EnsureDir(options_.dir);
  if (init_.ok() && options_.shm) {
    // A failed attach (unsupported ring format, unmappable file, ...) keeps
    // the detached ring around for stats and degrades to disk-only.
    ring_ = std::make_unique<ShmRing>(
        ShmRing::Options{options_.dir, options_.shm_slots,
                         options_.shm_slot_bytes},
        ToolchainFingerprint());
  }
  if (init_.ok()) {
    // Quarantine enforcement is unconditional: the sidecar (if any) loads
    // here and every lookup ladder rung below consults it first.
    quarantine_ = std::make_shared<Quarantine>(options_.dir);
    if (ring_ != nullptr) ring_->SetQuarantine(quarantine_);
  }
}

Status ObjectStore::QuarantineFingerprint(std::uint64_t fingerprint,
                                          const std::string& reason) {
  if (!init_.ok()) return init_.error();
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  // Scrub the fast rungs first so no peer can re-serve the object while the
  // sidecar write is still in flight, then make the record durable.
  if (ring_ != nullptr) (void)ring_->Invalidate(fingerprint);
  (void)support::RemoveFile(options_.dir + "/" + EntryFileName(fingerprint));
  return quarantine_->Add(fingerprint, reason);
}

bool ObjectStore::Load(std::uint64_t fingerprint, ObjectEntry* out) {
  if (!init_.ok()) return false;
  DBLL_TRACE_SPAN("jit.objcache.load");
  const std::uint64_t t0 = NowNs();
  bool hit = false;
  const std::string path = options_.dir + "/" + EntryFileName(fingerprint);
  // Rung 0: the quarantine veto, *before* the ring or the disk can serve a
  // hit. A poisoned fingerprint is a hard miss on every rung.
  if (quarantine_ != nullptr && quarantine_->Contains(fingerprint)) {
    quarantine_->NoteBlocked();
    misses_.fetch_add(1, std::memory_order_relaxed);
    ObjcacheMetrics::Get().disk_misses.Add(1);
    return false;
  }
  // Rung 1 of the lookup ladder: the shared-memory hot-entry ring. The slot
  // payload is a full serialized entry, so it passes the exact same
  // validation as a disk read; anything off falls through to disk. A shm
  // hit skips the manifest touch -- recency there only steers *disk*
  // eviction, and the entry is demonstrably hot in the ring.
  const auto effective_isa =
      static_cast<std::uint32_t>(support::EffectiveIsaLevel());
  if (ring_ != nullptr) {
    std::vector<std::uint8_t> shm_bytes;
    if (ring_->Lookup(fingerprint, &shm_bytes)) {
      std::string llvm_version, target_cpu, detail;
      ObjectEntry entry;
      const bool entry_ok =
          Deserialize(shm_bytes, &entry, &llvm_version, &target_cpu,
                      &detail) &&
          entry.fingerprint == fingerprint &&
          llvm_version == lift::LlvmVersionString() &&
          target_cpu == lift::JitTargetCpuFor(static_cast<int>(entry.isa_level));
      if (entry_ok && entry.isa_level > effective_isa) {
        // A peer on this box published a variant this process cannot run
        // (it is masked lower via DBLL_JIT_ISA, or the ring file moved
        // hosts). Clean miss, nothing installed, slot left for the peers.
        isa_refused_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        ObjcacheMetrics::Get().disk_misses.Add(1);
        ObjcacheMetrics::Get().disk_isa_refused.Add(1);
        return false;
      }
      if (entry_ok) {
        *out = std::move(entry);
        hits_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t elapsed = NowNs() - t0;
        load_ns_.fetch_add(elapsed, std::memory_order_relaxed);
        // A shm hit is a persistent-layer hit: keep the documented
        // "shm_hits is a subset of disk_hits" invariant in the obs
        // registry's cache.disk_* mirror as well.
        ObjcacheMetrics::Get().disk_hits.Add(1);
        ObjcacheMetrics::Get().disk_load_ns.Add(elapsed);
        return true;
      }
      // The ring-level checksum passed but the entry itself does not hold
      // up (possible only against a hostile or buggy peer): degraded miss,
      // the disk path below is authoritative.
      errors_.fetch_add(1, std::memory_order_relaxed);
      ObjcacheMetrics::Get().disk_errors.Add(1);
    }
  }
  do {
    // Fault site for the robustness suite: a firing `objcache.load` behaves
    // as an I/O error -- a degraded miss. The file is *kept* (it is not
    // corrupt; the disk is pretending to be unreadable).
    if (fault::AnyArmed()) {
      if (fault::Hit("objcache.load")) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ObjcacheMetrics::Get().disk_errors.Add(1);
        break;
      }
    }
    auto bytes = support::ReadFileBytes(path);
    if (!bytes.has_value()) break;  // plain miss (or unreadable: same thing)
    std::string llvm_version, target_cpu, detail;
    ObjectEntry entry;
    if (!Deserialize(*bytes, &entry, &llvm_version, &target_cpu, &detail) ||
        entry.fingerprint != fingerprint) {
      // Hostile/corrupt/truncated entry: drop it so it cannot waste another
      // read, and count it. Never fatal, never trusted.
      (void)support::RemoveFile(path);
      corrupt_dropped_.fetch_add(1, std::memory_order_relaxed);
      ObjcacheMetrics::Get().disk_errors.Add(1);
      break;
    }
    if (llvm_version != lift::LlvmVersionString() ||
        target_cpu !=
            lift::JitTargetCpuFor(static_cast<int>(entry.isa_level))) {
      // A different toolchain wrote this entry. It is a *valid* file that a
      // matching toolchain could still use -- but under fingerprint keying
      // (which folds in the version) it is unreachable garbage: delete it.
      (void)support::RemoveFile(path);
      corrupt_dropped_.fetch_add(1, std::memory_order_relaxed);
      ObjcacheMetrics::Get().disk_errors.Add(1);
      break;
    }
    if (entry.isa_level > effective_isa) {
      // Valid entry for a better ISA than this host effectively has
      // (weaker hardware, or masked down via DBLL_JIT_ISA). Installing it
      // would fault on the first wide instruction, so it is a clean miss --
      // but unlike toolchain garbage the file is KEPT: the variant is
      // reachable for every capable host sharing the directory, and the
      // capable host's own dispatch probes it under a different
      // per-level fingerprint anyway. Not written through to the ring
      // either: this process cannot vouch for code it cannot run.
      isa_refused_.fetch_add(1, std::memory_order_relaxed);
      ObjcacheMetrics::Get().disk_isa_refused.Add(1);
      break;
    }
    *out = std::move(entry);
    hit = true;
    // Write the disk hit back into the ring: the next process asking for
    // this fingerprint gets it without touching the filesystem.
    if (ring_ != nullptr) (void)ring_->Insert(fingerprint, bytes->data(), bytes->size());
  } while (false);

  const std::uint64_t elapsed = NowNs() - t0;
  load_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  ObjcacheMetrics::Get().disk_load_ns.Add(elapsed);
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    ObjcacheMetrics::Get().disk_hits.Add(1);
    TouchManifest(fingerprint);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ObjcacheMetrics::Get().disk_misses.Add(1);
  }
  return hit;
}

void ObjectStore::Store(const ObjectEntry& entry) {
  if (!init_.ok()) return;
  // A quarantined fingerprint is never re-published -- not to disk, not to
  // the ring -- no matter who recompiled it.
  if (quarantine_ != nullptr && quarantine_->Contains(entry.fingerprint)) {
    quarantine_->NoteBlocked();
    return;
  }
  DBLL_TRACE_SPAN("jit.objcache.store");
  const std::uint64_t t0 = NowNs();
  // Serialize once; the identical bytes go to the disk file and the shm
  // ring, so a ring hit and a disk hit are byte-equivalent by construction.
  // The CPU stamp is the entry's *level* stamp (cpu + feature string): a
  // reader validates it against what its own toolchain would emit for that
  // level, so a feature-string drift (e.g. different DBLL_JIT_FEATURES)
  // invalidates instead of mis-serving.
  const std::vector<std::uint8_t> bytes =
      Serialize(entry, lift::LlvmVersionString(),
                lift::JitTargetCpuFor(static_cast<int>(entry.isa_level)));
  Status status = support::WriteFileAtomic(
      options_.dir + "/" + EntryFileName(entry.fingerprint), bytes.data(),
      bytes.size());
  if (!status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    ObjcacheMetrics::Get().disk_errors.Add(1);
  } else {
    stores_.fetch_add(1, std::memory_order_relaxed);
    ObjcacheMetrics::Get().disk_stores.Add(1);
    if (ring_ != nullptr) {
      (void)ring_->Insert(entry.fingerprint, bytes.data(), bytes.size());
    }
    FileLock lock(options_.dir + "/" + kLockName);
    if (lock.ok()) {
      auto used = ReadManifest(options_.dir);
      used[entry.fingerprint] = NowNs();
      WriteManifest(options_.dir, used);
      EvictLocked();
    }
  }
  const std::uint64_t elapsed = NowNs() - t0;
  store_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  ObjcacheMetrics::Get().disk_store_ns.Add(elapsed);
}

void ObjectStore::TouchManifest(std::uint64_t fingerprint) {
  FileLock lock(options_.dir + "/" + kLockName);
  if (!lock.ok()) return;
  auto used = ReadManifest(options_.dir);
  used[fingerprint] = NowNs();
  WriteManifest(options_.dir, used);
}

void ObjectStore::EvictLocked() {
  if (options_.max_bytes == 0 && options_.max_entries == 0) return;
  auto names = support::ListDir(options_.dir);
  if (!names.has_value()) return;
  struct OnDisk {
    std::uint64_t fp;
    std::uint64_t size;
    std::uint64_t last_used;
  };
  auto used = ReadManifest(options_.dir);
  std::vector<OnDisk> entries;
  std::uint64_t total_bytes = 0;
  const std::uint64_t now = NowNs();
  for (const std::string& name : *names) {
    std::uint64_t fp = 0;
    if (!ParseEntryFileName(name, &fp)) continue;
    auto size = support::FileSize(options_.dir + "/" + name);
    if (!size.has_value()) continue;
    const auto it = used.find(fp);
    // Unknown to the manifest = written by a racing process whose manifest
    // update we beat; treat as freshest so we never evict a brand-new entry.
    entries.push_back({fp, *size, it != used.end() ? it->second : now});
    total_bytes += *size;
  }
  std::sort(entries.begin(), entries.end(),
            [](const OnDisk& a, const OnDisk& b) {
              return a.last_used < b.last_used;
            });
  std::size_t victim = 0;
  bool changed = false;
  while (victim < entries.size() &&
         ((options_.max_bytes != 0 && total_bytes > options_.max_bytes) ||
          (options_.max_entries != 0 &&
           entries.size() - victim > options_.max_entries))) {
    const OnDisk& target = entries[victim++];
    if (support::RemoveFile(options_.dir + "/" + EntryFileName(target.fp))
            .ok()) {
      total_bytes -= target.size;
      used.erase(target.fp);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      ObjcacheMetrics::Get().disk_evictions.Add(1);
      changed = true;
    }
  }
  if (changed) WriteManifest(options_.dir, used);
}

ObjectStoreStats ObjectStore::stats() const {
  ObjectStoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.corrupt_dropped = corrupt_dropped_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.load_ns = load_ns_.load(std::memory_order_relaxed);
  s.store_ns = store_ns_.load(std::memory_order_relaxed);
  if (ring_ != nullptr && ring_->attached()) {
    const ShmRingStats rs = ring_->stats();
    const ShmRingOccupancy occ = ring_->occupancy();
    s.shm_attached = 1;
    s.shm_slots = occ.slot_count;
    s.shm_entries = occ.used_slots;
    s.shm_hits = rs.hits;
    s.shm_misses = rs.misses;
    s.shm_inserts = rs.inserts;
    s.shm_evictions = rs.evictions;
    s.shm_errors = rs.errors;
  }
  s.isa_refused = isa_refused_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  if (quarantine_ != nullptr) {
    s.quarantine_entries = quarantine_->size();
    // One counter covers every rung: disk, ring and store vetoes all report
    // through the shared Quarantine::NoteBlocked.
    s.quarantine_blocked = quarantine_->blocked();
  }
  return s;
}

Status ObjectStore::WriteEntry(const std::string& dir,
                               const ObjectEntry& entry,
                               const std::string& llvm_version,
                               const std::string& target_cpu) {
  DBLL_TRY_STATUS(support::EnsureDir(dir));
  const std::vector<std::uint8_t> bytes =
      Serialize(entry, llvm_version, target_cpu);
  return support::WriteFileAtomic(dir + "/" + EntryFileName(entry.fingerprint),
                                  bytes.data(), bytes.size());
}

Expected<std::vector<ObjectScanEntry>> ObjectStore::Scan(
    const std::string& dir) {
  // A never-created cache directory is a valid, empty cache.
  if (!support::DirExists(dir)) return std::vector<ObjectScanEntry>{};
  DBLL_TRY(std::vector<std::string> names, support::ListDir(dir));
  std::vector<ObjectScanEntry> result;
  for (const std::string& name : names) {
    std::uint64_t name_fp = 0;
    if (!ParseEntryFileName(name, &name_fp)) continue;
    ObjectScanEntry scan;
    scan.file = name;
    auto bytes = support::ReadFileBytes(dir + "/" + name);
    if (!bytes.has_value()) {
      scan.detail = bytes.error().message();
      result.push_back(std::move(scan));
      continue;
    }
    scan.file_size = bytes->size();
    ObjectEntry entry;
    std::string detail;
    if (Deserialize(*bytes, &entry, &scan.llvm_version, &scan.target_cpu,
                    &detail)) {
      scan.fingerprint = entry.fingerprint;
      scan.payload_size = entry.object.size();
      scan.wrapper_name = entry.wrapper_name;
      scan.opt_tier = entry.opt_tier;
      scan.isa_level = entry.isa_level;
      if (entry.fingerprint != name_fp) {
        scan.detail = "fingerprint does not match file name";
      } else {
        scan.valid = true;
      }
    } else {
      scan.fingerprint = name_fp;
      scan.detail = detail;
    }
    result.push_back(std::move(scan));
  }
  std::sort(result.begin(), result.end(),
            [](const ObjectScanEntry& a, const ObjectScanEntry& b) {
              return a.file < b.file;
            });
  return result;
}

Expected<std::uint64_t> ObjectStore::Purge(const std::string& dir) {
  if (!support::DirExists(dir)) return std::uint64_t{0};
  DBLL_TRY(std::vector<std::string> names, support::ListDir(dir));
  std::uint64_t removed = 0;
  for (const std::string& name : names) {
    std::uint64_t fp = 0;
    const bool is_entry = ParseEntryFileName(name, &fp);
    const bool is_meta = name == kManifestName || name == kLockName ||
                         name == ShmRing::RingFileName() ||
                         name == Quarantine::FileName() ||
                         name.find(".tmp.") != std::string::npos;
    if (!is_entry && !is_meta) continue;
    if (support::RemoveFile(dir + "/" + name).ok() && is_entry) ++removed;
  }
  return removed;
}

///// Bundle container layout (all integers little-endian):
///   magic   8B  "DBLLBND1"
///   version u32 (kBundleVersion)
///   count   u32 (number of entries)
///   entries count x { size u64, bytes[size] }   -- exact .dbo file bytes
///   fnv     u64  (FNV-1a over every preceding byte)
/// Each contained entry is itself a self-validating DBLLOBJ1 container, and
/// import re-validates both layers before publishing anything.
namespace {
constexpr char kBundleMagic[8] = {'D', 'B', 'L', 'L', 'B', 'N', 'D', '1'};
constexpr std::uint32_t kBundleVersion = 1;
constexpr std::uint32_t kBundleMaxEntries = 1u << 20;
}  // namespace

Expected<std::uint64_t> ObjectStore::ExportBundle(const std::string& dir,
                                                  const std::string& path) {
  DBLL_TRY(std::vector<ObjectScanEntry> scans, Scan(dir));
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kBundleMagic, kBundleMagic + sizeof(kBundleMagic));
  PutU32(out, kBundleVersion);
  std::uint64_t count = 0;
  const std::size_t count_pos = out.size();
  PutU32(out, 0);  // patched once the valid entries are known
  for (const ObjectScanEntry& scan : scans) {
    if (!scan.valid) continue;  // skip hostile/corrupt files, never fatal
    auto bytes = support::ReadFileBytes(dir + "/" + scan.file);
    if (!bytes.has_value()) continue;
    PutU64(out, bytes->size());
    out.insert(out.end(), bytes->begin(), bytes->end());
    ++count;
  }
  for (int i = 0; i < 4; ++i) {
    out[count_pos + i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  PutU64(out, Fnv1aBytes(out.data(), out.size()));
  DBLL_TRY_STATUS(support::WriteFileAtomic(path, out.data(), out.size()));
  return count;
}

Expected<std::uint64_t> ObjectStore::ImportBundle(const std::string& path,
                                                  const std::string& dir,
                                                  std::uint64_t* skipped_isa) {
  if (skipped_isa != nullptr) *skipped_isa = 0;
  DBLL_TRY(std::vector<std::uint8_t> bytes, support::ReadFileBytes(path));
  if (bytes.size() < sizeof(kBundleMagic) + 4 + 4 + 8 ||
      std::memcmp(bytes.data(), kBundleMagic, sizeof(kBundleMagic)) != 0) {
    return Error(ErrorKind::kIo, "not a dbll bundle: " + path);
  }
  const std::uint64_t body_size = bytes.size() - 8;
  Reader trailer(bytes.data() + body_size, 8);
  std::uint64_t fnv = 0;
  (void)trailer.ReadU64(&fnv);
  if (Fnv1aBytes(bytes.data(), body_size) != fnv) {
    return Error(ErrorKind::kIo, "bundle checksum mismatch: " + path);
  }
  Reader body(bytes.data() + sizeof(kBundleMagic),
              body_size - sizeof(kBundleMagic));
  std::uint32_t version = 0, count = 0;
  if (!body.ReadU32(&version) || version != kBundleVersion) {
    return Error(ErrorKind::kUnsupported, "unknown bundle version: " + path);
  }
  if (!body.ReadU32(&count) || count > kBundleMaxEntries) {
    return Error(ErrorKind::kIo, "implausible bundle entry count: " + path);
  }
  // Parse and validate everything up front: a bundle that fails any check
  // publishes nothing (all-or-nothing, so a truncated download cannot leave
  // a half-warm cache that masks the problem).
  struct Pending {
    std::uint64_t fingerprint;
    std::uint32_t isa_level;
    const std::uint8_t* data;
    std::uint64_t size;
  };
  std::vector<Pending> pending;
  pending.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t size = 0;
    if (!body.ReadU64(&size) || body.remaining() < size) {
      return Error(ErrorKind::kIo, "truncated bundle entry: " + path);
    }
    const std::uint8_t* data = body.cursor();
    std::vector<std::uint8_t> entry_bytes(data, data + size);
    ObjectEntry entry;
    std::string llvm_version, target_cpu, detail;
    if (!Deserialize(entry_bytes, &entry, &llvm_version, &target_cpu,
                     &detail)) {
      return Error(ErrorKind::kIo,
                   "invalid entry " + std::to_string(i) + " in bundle: " +
                       detail);
    }
    pending.push_back({entry.fingerprint, entry.isa_level, data, size});
    (void)body.Skip(size);  // bounds already checked above
  }
  DBLL_TRY_STATUS(support::EnsureDir(dir));
  // The target directory's quarantine vetoes bundle entries too: a fleet
  // that poisoned a fingerprint must not get it back via a stale bundle.
  Quarantine quarantine(dir);
  const auto effective_isa =
      static_cast<std::uint32_t>(support::EffectiveIsaLevel());
  std::uint64_t imported = 0;
  for (const Pending& p : pending) {
    if (p.isa_level > effective_isa) {
      // A mixed-fleet bundle legitimately carries variants this host cannot
      // run; they are counted (not an error) so tooling can report them.
      if (skipped_isa != nullptr) ++(*skipped_isa);
      continue;
    }
    if (quarantine.Contains(p.fingerprint)) {
      quarantine.NoteBlocked();
      continue;
    }
    // Publish the original bytes verbatim: export -> import round-trips are
    // byte-identical, so fingerprints and checksums keep holding.
    if (support::WriteFileAtomic(dir + "/" + EntryFileName(p.fingerprint),
                                 p.data, p.size)
            .ok()) {
      ++imported;
    }
  }
  return imported;
}

namespace {
std::uint64_t PersistFingerprintWithCpu(const SpecKey& key,
                                        std::uint64_t address,
                                        const std::string& cpu) {
  std::uint64_t hash = Fnv1aBytes(key.blob().data(), key.blob().size());
  // Window of the target's machine code: a recompiled/patched function must
  // change the fingerprint even at an identical address. SafeReadMemory
  // bounds the window at the end of the mapping instead of faulting.
  std::uint8_t code[kCodeWindowBytes];
  const std::size_t read = support::SafeReadMemory(address, code, sizeof(code));
  std::uint64_t n = read;
  hash = Fnv1aBytes(reinterpret_cast<const std::uint8_t*>(&n), sizeof(n), hash);
  hash = Fnv1aBytes(code, read, hash);
  const std::string& llvm_version = lift::LlvmVersionString();
  hash = Fnv1aBytes(reinterpret_cast<const std::uint8_t*>(llvm_version.data()),
                    llvm_version.size(), hash);
  hash = Fnv1aBytes(reinterpret_cast<const std::uint8_t*>(cpu.data()),
                    cpu.size(), hash);
  return hash;
}
}  // namespace

std::uint64_t PersistFingerprint(const SpecKey& key, std::uint64_t address) {
  return PersistFingerprintWithCpu(key, address, lift::JitTargetCpu());
}

std::uint64_t PersistFingerprint(const SpecKey& key, std::uint64_t address,
                                 int isa_level) {
  return PersistFingerprintWithCpu(key, address,
                                   lift::JitTargetCpuFor(isa_level));
}

std::uint64_t ToolchainFingerprint() {
  const std::string& llvm_version = lift::LlvmVersionString();
  const std::string& cpu = lift::JitTargetCpu();
  std::uint64_t hash = Fnv1aBytes(
      reinterpret_cast<const std::uint8_t*>(llvm_version.data()),
      llvm_version.size());
  hash = Fnv1aBytes(reinterpret_cast<const std::uint8_t*>(cpu.data()),
                    cpu.size(), hash);
  return hash;
}

}  // namespace dbll::runtime
