// dbll -- profile-guided tiering engine (see include/dbll/runtime/tiering.h).
#include "dbll/runtime/tiering.h"

#include <chrono>

#include "dbll/obs/obs.h"
#include "dbll/runtime/spec_cache.h"
#include "env_util.h"

namespace dbll::runtime {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The DBLL_* parsing grammar lives in env_util.h, shared with
// CompileService::Options::ApplyEnv so C and C++ entry points agree.
constexpr auto EnvFlag = env::Flag;
constexpr auto EnvU64 = env::U64;
constexpr auto EnvF64 = env::F64;

/// Rounds up to the next power of two (>= 1).
std::uint64_t Pow2Ceil(std::uint64_t v) {
  if (v <= 1) return 1;
  --v;
  for (int shift = 1; shift < 64; shift <<= 1) v |= v >> shift;
  return v + 1;
}

}  // namespace

TieringOptions& TieringOptions::Clamp() {
  if (baseline_opt_level < 0) baseline_opt_level = 0;
  if (baseline_opt_level > 1) baseline_opt_level = 1;
  if (hot_threshold == 0) hot_threshold = 1;
  sample_period = static_cast<std::uint32_t>(Pow2Ceil(sample_period));
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) ewma_alpha = 0.3;
  if (min_rate_hz < 0.0) min_rate_hz = 0.0;
  return *this;
}

TieringOptions& TieringOptions::ApplyEnv() {
  enabled = EnvFlag("DBLL_TIER", enabled);
  baseline_opt_level = static_cast<int>(
      EnvU64("DBLL_TIER_BASELINE_LEVEL",
             static_cast<std::uint64_t>(baseline_opt_level)));
  hot_threshold = EnvU64("DBLL_TIER_THRESHOLD", hot_threshold);
  sample_period = static_cast<std::uint32_t>(
      EnvU64("DBLL_TIER_SAMPLE", sample_period));
  ewma_alpha = EnvF64("DBLL_TIER_ALPHA", ewma_alpha);
  min_rate_hz = EnvF64("DBLL_TIER_MIN_RATE", min_rate_hz);
  max_deopts = static_cast<std::uint32_t>(
      EnvU64("DBLL_TIER_MAX_DEOPTS", max_deopts));
  guard = EnvFlag("DBLL_TIER_GUARD", guard);
  interim = EnvFlag("DBLL_TIER_INTERIM", interim);
  return Clamp();
}

std::string_view ToString(TierPhase phase) noexcept {
  switch (phase) {
    case TierPhase::kBaselineQueued: return "baseline-queued";
    case TierPhase::kBaseline: return "baseline";
    case TierPhase::kPromoteQueued: return "promote-queued";
    case TierPhase::kOptimized: return "optimized";
    case TierPhase::kDeoptimized: return "deoptimized";
    case TierPhase::kPinnedGeneric: return "pinned-generic";
  }
  return "unknown";
}

std::vector<GuardCheck> GuardableChecks(const CompileRequest& request) {
  std::vector<GuardCheck> checks;
  for (const SpecAction& spec : request.specs) {
    if (spec.kind != SpecAction::Kind::kParam) continue;  // const-mem: no guard
    const int index = spec.index;
    if (index < 0 ||
        static_cast<std::size_t>(index) >= request.signature.args.size()) {
      continue;
    }
    if (request.signature.args[static_cast<std::size_t>(index)] !=
        lift::ArgKind::kInt) {
      continue;  // FP fixations are not register-comparable here
    }
    // Public index -> GP argument register index (kInt args only), mirroring
    // the int/sse split used by the lifter wrapper and the Tier-1 fallback.
    int gp_index = 0;
    for (int i = 0; i < index; ++i) {
      if (request.signature.args[static_cast<std::size_t>(i)] ==
          lift::ArgKind::kInt) {
        ++gp_index;
      }
    }
    if (gp_index > 5) continue;  // stack-passed: not guardable
    checks.push_back(GuardCheck{gp_index, spec.value});
  }
  return checks;
}

namespace {

/// SysV integer argument registers in order: rdi, rsi, rdx, rcx, r8, r9.
/// Each encoded as (needs REX.B for the extended set, ModRM reg bits).
struct GpReg {
  bool rex_b;
  std::uint8_t modrm;  ///< low 3 bits of the register number
};
constexpr GpReg kGpArgRegs[6] = {
    {false, 7},  // rdi
    {false, 6},  // rsi
    {false, 2},  // rdx
    {false, 1},  // rcx
    {true, 0},   // r8
    {true, 1},   // r9
};

void Emit(std::vector<std::uint8_t>& out,
          std::initializer_list<std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void EmitImm64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void EmitImm32At(std::vector<std::uint8_t>& out, std::size_t pos,
                 std::int32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(static_cast<std::uint32_t>(value) >> (8 * i));
  }
}

}  // namespace

Expected<GuardStub> BuildGuardStub(const std::vector<GuardCheck>& checks,
                                   std::uint64_t specialized_entry,
                                   std::uint64_t generic_entry,
                                   std::atomic<std::uint64_t>* deopt_hits) {
  if (checks.empty()) {
    return Error(ErrorKind::kBadConfig, "guard stub needs at least one check");
  }
  if (deopt_hits == nullptr) {
    return Error(ErrorKind::kInternal, "guard stub needs a deopt counter");
  }

  // Layout:
  //   per check:  movabs rax, value        48 B8 imm64
  //               cmp    reg, rax          48/4C 39 C0+reg  (REX.W [+B])
  //               jne    .deopt            0F 85 rel32
  //   match:      movabs rax, spec_entry   48 B8 imm64
  //               jmp    rax               FF E0
  //   .deopt:     movabs rax, &deopt_hits  48 B8 imm64
  //               lock inc qword [rax]     F0 48 FF 00
  //               movabs rax, generic      48 B8 imm64
  //               jmp    rax               FF E0
  // Only rax is clobbered (caller-saved, not an argument register), so both
  // tails observe the original arguments unchanged.
  std::vector<std::uint8_t> code;
  code.reserve(32 * checks.size() + 48);
  std::vector<std::size_t> jne_rel32_at;  // positions of rel32 to patch
  for (const GuardCheck& check : checks) {
    if (check.gp_index < 0 || check.gp_index > 5) {
      return Error(ErrorKind::kInternal, "guard check register out of range");
    }
    const GpReg reg = kGpArgRegs[check.gp_index];
    Emit(code, {0x48, 0xB8});  // movabs rax, imm64
    EmitImm64(code, check.value);
    // cmp reg, rax: REX.W (+B when reg is r8/r9), 39 /r with rax as source.
    Emit(code, {static_cast<std::uint8_t>(reg.rex_b ? 0x49 : 0x48), 0x39,
                static_cast<std::uint8_t>(0xC0 | reg.modrm)});
    Emit(code, {0x0F, 0x85});  // jne rel32 (patched below)
    jne_rel32_at.push_back(code.size());
    Emit(code, {0x00, 0x00, 0x00, 0x00});
  }
  // Match tail.
  Emit(code, {0x48, 0xB8});
  EmitImm64(code, specialized_entry);
  Emit(code, {0xFF, 0xE0});
  // Deopt tail.
  const std::size_t deopt_at = code.size();
  Emit(code, {0x48, 0xB8});
  EmitImm64(code, reinterpret_cast<std::uint64_t>(deopt_hits));
  Emit(code, {0xF0, 0x48, 0xFF, 0x00});  // lock inc qword ptr [rax]
  Emit(code, {0x48, 0xB8});
  EmitImm64(code, generic_entry);
  Emit(code, {0xFF, 0xE0});
  for (const std::size_t pos : jne_rel32_at) {
    EmitImm32At(code, pos,
                static_cast<std::int32_t>(deopt_at - (pos + 4)));
  }

  DBLL_TRY(CodeBuffer buffer, CodeBuffer::Allocate(code.size()));
  DBLL_TRY(std::uint8_t * base,
           buffer.Append(std::span<const std::uint8_t>(code)));
  DBLL_TRY_STATUS(buffer.Seal());
  GuardStub stub;
  stub.entry = reinterpret_cast<std::uint64_t>(base);
  stub.guards = checks.size();
  stub.code = std::move(buffer);
  return stub;
}

TierProfile::TierProfile(const TieringOptions& options,
                         std::uint64_t generic_entry)
    : options_(options), generic_entry_(generic_entry) {
  options_.Clamp();
  sample_mask_ = options_.sample_period - 1;
}

void TierProfile::SetHooks(std::function<void()> promote,
                           std::function<void()> demote) {
  std::lock_guard<std::mutex> lock(hook_mutex_);
  promote_hook_ = std::move(promote);
  demote_hook_ = std::move(demote);
}

void TierProfile::FirePromote() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook = promote_hook_;
  }
  if (hook) hook();
}

void TierProfile::FireDemote() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook = demote_hook_;
  }
  if (hook) hook();
}

void TierProfile::AdoptGuard(GuardStub stub) {
  std::lock_guard<std::mutex> lock(hook_mutex_);
  guards_.push_back(std::move(stub));
}

double TierProfile::ewma_rate_hz() const {
  const std::uint64_t bits = ewma_bits_.load(std::memory_order_relaxed);
  double rate;
  std::memcpy(&rate, &bits, sizeof rate);
  return rate;
}

void TierProfile::OnBaselineInstalled(std::uint64_t guarded_entry) {
  baseline_entry_.store(guarded_entry, std::memory_order_release);
  phase_.store(static_cast<std::uint8_t>(TierPhase::kBaseline),
               std::memory_order_release);
}

void TierProfile::OnBaselineRefined(std::uint64_t guarded_entry) {
  baseline_entry_.store(guarded_entry, std::memory_order_release);
}

void TierProfile::OnPromoted(std::uint64_t guarded_entry) {
  optimized_entry_.store(guarded_entry, std::memory_order_release);
  phase_.store(static_cast<std::uint8_t>(TierPhase::kOptimized),
               std::memory_order_release);
  // promote_inflight_ stays latched: the optimized entry is terminal on the
  // promote axis; only a deopt resets the ladder.
}

void TierProfile::OnPromoteFailed(bool deterministic) {
  phase_.store(static_cast<std::uint8_t>(TierPhase::kBaseline),
               std::memory_order_release);
  if (!deterministic) {
    // Transient failure: release the latch so a later sample may retry.
    promote_inflight_.store(false, std::memory_order_release);
  }
}

void TierProfile::OnDemoted() {
  deopts_.fetch_add(1, std::memory_order_relaxed);
  // Swallow the hits that triggered this demotion so the next sample does
  // not immediately re-demote.
  deopt_seen_.store(deopt_hits_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  calls_.store(0, std::memory_order_relaxed);
  ewma_bits_.store(0, std::memory_order_relaxed);
  last_sample_ns_.store(0, std::memory_order_relaxed);
  const bool pinned =
      deopts_.load(std::memory_order_relaxed) > options_.max_deopts;
  phase_.store(static_cast<std::uint8_t>(pinned ? TierPhase::kPinnedGeneric
                                                : TierPhase::kDeoptimized),
               std::memory_order_release);
  if (!pinned) {
    // Re-profile: allow a later promotion of the saved optimized/baseline
    // entry once the workload proves it is back on the fixed values.
    promote_inflight_.store(false, std::memory_order_release);
  }
  demote_inflight_.store(false, std::memory_order_release);
}

void TierProfile::Abandon() {
  phase_.store(static_cast<std::uint8_t>(TierPhase::kPinnedGeneric),
               std::memory_order_release);
}

TierAction TierProfile::Sample(std::uint64_t calls_now) {
  // EWMA of the call rate from the inter-sample wall time. Lost updates
  // between concurrent samplers are fine -- this is a smoothed estimate.
  const std::uint64_t now = NowNs();
  const std::uint64_t prev = last_sample_ns_.load(std::memory_order_relaxed);
  last_sample_ns_.store(now, std::memory_order_relaxed);
  if (prev != 0 && now > prev) {
    const double inst_rate =
        static_cast<double>(options_.sample_period) * 1e9 /
        static_cast<double>(now - prev);
    const double old_rate = ewma_rate_hz();
    const double next = old_rate == 0.0
                            ? inst_rate
                            : options_.ewma_alpha * inst_rate +
                                  (1.0 - options_.ewma_alpha) * old_rate;
    std::uint64_t bits;
    std::memcpy(&bits, &next, sizeof bits);
    ewma_bits_.store(bits, std::memory_order_relaxed);
  }

  const auto phase =
      static_cast<TierPhase>(phase_.load(std::memory_order_acquire));

  // Deopt detection: the guard stub bumped deopt_hits_ past what we have
  // acted on. Latch the demote so exactly one caller fires it.
  if (phase == TierPhase::kBaseline || phase == TierPhase::kOptimized ||
      phase == TierPhase::kPromoteQueued) {
    const std::uint64_t hits = deopt_hits_.load(std::memory_order_relaxed);
    if (hits > deopt_seen_.load(std::memory_order_relaxed)) {
      bool expected = false;
      if (demote_inflight_.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return TierAction::kDemote;
      }
      return TierAction::kNone;
    }
  }

  // Promotion: only from a serving baseline (or from re-profiling after a
  // deopt, where the saved entries make re-promotion recompile-free).
  if (phase != TierPhase::kBaseline && phase != TierPhase::kDeoptimized) {
    return TierAction::kNone;
  }
  if (calls_now < options_.hot_threshold) return TierAction::kNone;
  if (options_.min_rate_hz > 0.0 && ewma_rate_hz() < options_.min_rate_hz) {
    return TierAction::kNone;
  }
  crossings_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::Default().GetCounter("tiering.threshold_crossings").Add(1);
  bool expected = false;
  if (!promote_inflight_.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
    return TierAction::kNone;  // someone else already enqueued
  }
  phase_.store(static_cast<std::uint8_t>(TierPhase::kPromoteQueued),
               std::memory_order_release);
  return TierAction::kPromote;
}

}  // namespace dbll::runtime
