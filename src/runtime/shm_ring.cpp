// dbll -- shared-memory hot-entry ring (see include/dbll/runtime/shm_ring.h
// for the design, safety model, and failure semantics).
#include "dbll/runtime/shm_ring.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "dbll/obs/obs.h"
#include "dbll/runtime/containment.h"
#include "dbll/support/fault.h"
#include "dbll/support/file_io.h"

namespace dbll::runtime {

namespace {

constexpr char kRingMagic[8] = {'D', 'B', 'L', 'L', 'S', 'H', 'M', '1'};
constexpr std::uint32_t kShmFormatVersion = 1;
constexpr const char kRingFile[] = "hotring.dbshm";

/// Fixed-size regions of the ring file. The header gets a full page so the
/// slot array starts page-aligned; each slot's bookkeeping gets one cache
/// line so racing readers of neighbouring slots never false-share.
constexpr std::uint64_t kHeaderBytes = 4096;
constexpr std::uint64_t kSlotHeaderBytes = 64;

/// Geometry sanity bounds, applied both to requested Options and to the
/// header of an existing file (which is untrusted input).
constexpr std::uint32_t kMinSlots = 1, kMaxSlots = 65536;
constexpr std::uint64_t kMinSlotBytes = 4096;
constexpr std::uint64_t kMaxSlotBytes = 256ull << 20;

enum InitState : std::uint32_t {
  kRaw = 0,          ///< freshly created, never initialized
  kInitializing = 1, ///< an initializer is (or died) mid-setup
  kReady = 2,        ///< published; safe to use
};

std::uint64_t AlignUp(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

std::uint64_t SlotStride(std::uint64_t slot_bytes) {
  return kSlotHeaderBytes + AlignUp(slot_bytes, 64);
}

std::uint64_t FileBytes(std::uint32_t slots, std::uint64_t slot_bytes) {
  return kHeaderBytes + slots * SlotStride(slot_bytes);
}

bool GeometrySane(std::uint32_t slots, std::uint64_t slot_bytes) {
  return slots >= kMinSlots && slots <= kMaxSlots &&
         slot_bytes >= kMinSlotBytes && slot_bytes <= kMaxSlotBytes;
}

std::uint64_t Fnv1aBytes(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t NowNs() { return obs::Tracer::NowNs(); }

struct ShmMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& inserts;
  obs::Counter& evictions;
  obs::Counter& errors;
  obs::Counter& attaches;
  obs::Counter& reinits;
  obs::Counter& lookup_ns;
  obs::Counter& insert_ns;

  static ShmMetrics& Get() {
    static ShmMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new ShmMetrics{
          r.GetCounter("shmcache.hits"),      r.GetCounter("shmcache.misses"),
          r.GetCounter("shmcache.inserts"),   r.GetCounter("shmcache.evictions"),
          r.GetCounter("shmcache.errors"),    r.GetCounter("shmcache.attaches"),
          r.GetCounter("shmcache.reinits"),   r.GetCounter("shmcache.lookup_ns"),
          r.GetCounter("shmcache.insert_ns")};
    }();
    return *instance;
  }
};

/// Plain-old-data mirrors of the shared-memory layouts, used for untrusted
/// pread-based header inspection before (or instead of) mapping the file.
/// std::atomic<T> of these widths is layout-compatible with T on every
/// supported target; the static_asserts below pin that down.
struct HeaderImage {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t slot_count;
  std::uint64_t slot_bytes;
  std::uint64_t toolchain_fp;
  std::uint32_t init_state;
  std::uint32_t init_pid;
  std::uint64_t clock;
  std::uint64_t fleet_hits;
  std::uint64_t fleet_inserts;
  std::uint64_t fleet_evictions;
};

struct SlotImage {
  std::uint32_t seq;
  std::uint32_t writer_pid;
  std::uint64_t last_used;
  std::uint64_t fingerprint;
  std::uint64_t payload_size;
  std::uint64_t payload_fnv;
};

}  // namespace

/// Shared ring-file header (one per cache directory, lives in page 0).
struct ShmRing::Header {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t slot_count;
  std::uint64_t slot_bytes;
  std::uint64_t toolchain_fp;
  std::atomic<std::uint32_t> init_state;
  std::uint32_t init_pid;              ///< diagnostics: who initialized
  std::atomic<std::uint64_t> clock;    ///< logical LRU clock (monotonic)
  std::atomic<std::uint64_t> fleet_hits;
  std::atomic<std::uint64_t> fleet_inserts;
  std::atomic<std::uint64_t> fleet_evictions;
};

/// Per-slot bookkeeping; the payload follows at kSlotHeaderBytes.
struct ShmRing::Slot {
  std::atomic<std::uint32_t> seq;  ///< seqlock word: odd = write in progress
  std::uint32_t writer_pid;        ///< diagnostics: last writer
  std::atomic<std::uint64_t> last_used;  ///< logical clock at last hit/insert
  std::atomic<std::uint64_t> fingerprint;
  std::atomic<std::uint64_t> payload_size;  ///< 0 = slot is free
  std::atomic<std::uint64_t> payload_fnv;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "the ring requires address-free lock-free atomics");

const char* ShmRing::RingFileName() { return kRingFile; }

ShmRing::Slot* ShmRing::SlotAt(std::uint32_t index) const {
  return reinterpret_cast<Slot*>(static_cast<std::uint8_t*>(map_) +
                                 kHeaderBytes + index * slot_stride_);
}

ShmRing::ShmRing(Options options, std::uint64_t toolchain_fp)
    : options_(std::move(options)) {
  static_assert(sizeof(Header) == sizeof(HeaderImage),
                "shared header must be layout-compatible with its POD image");
  static_assert(sizeof(Slot) == sizeof(SlotImage),
                "shared slot must be layout-compatible with its POD image");
  static_assert(sizeof(Header) <= kHeaderBytes);
  static_assert(sizeof(Slot) <= kSlotHeaderBytes);
  if (options_.dir.empty()) {
    init_ = Error(ErrorKind::kBadConfig, "ShmRing: empty directory");
    return;
  }
  init_ = support::EnsureDir(options_.dir);
  if (!init_.ok()) return;
  if (!GeometrySane(options_.slots, options_.slot_bytes)) {
    init_ = Error(ErrorKind::kBadConfig, "ShmRing: geometry out of bounds");
    return;
  }
  const std::string path = options_.dir + "/" + kRingFile;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    init_ = Error(ErrorKind::kIo, "ShmRing: cannot open " + path);
    return;
  }
  if (::flock(fd_, LOCK_EX) != 0) {
    init_ = Error(ErrorKind::kIo, "ShmRing: flock failed on " + path);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  const bool ok = AttachLocked(toolchain_fp);
  ::flock(fd_, LOCK_UN);
  if (!ok) {
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    map_ = nullptr;
    header_ = nullptr;
    ::close(fd_);
    fd_ = -1;
    return;
  }
  ShmMetrics::Get().attaches.Add(1);
}

ShmRing::~ShmRing() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

/// Caller holds the exclusive flock. Decides between adopting an existing
/// initialized ring, refusing an unknown newer format, and (re)initializing.
bool ShmRing::AttachLocked(std::uint64_t toolchain_fp) {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    init_ = Error(ErrorKind::kIo, "ShmRing: fstat failed");
    return false;
  }
  HeaderImage img{};
  bool adopt = false;
  const bool had_header =
      st.st_size >= static_cast<off_t>(sizeof(img)) &&
      ::pread(fd_, &img, sizeof(img), 0) == static_cast<ssize_t>(sizeof(img)) &&
      std::memcmp(img.magic, kRingMagic, sizeof(kRingMagic)) == 0;
  if (had_header) {
    if (img.format_version != kShmFormatVersion && img.init_state == kReady) {
      // A published ring owned by a format we do not speak (likely newer).
      // Never reinterpret or destroy it -- this process degrades to disk.
      init_ = Error(ErrorKind::kUnsupported,
                    "ShmRing: unsupported ring format version " +
                        std::to_string(img.format_version));
      return false;
    }
    if (img.format_version == kShmFormatVersion && img.init_state == kReady &&
        GeometrySane(img.slot_count, img.slot_bytes) &&
        st.st_size ==
            static_cast<off_t>(FileBytes(img.slot_count, img.slot_bytes)) &&
        img.toolchain_fp == toolchain_fp) {
      adopt = true;
    }
    // Everything else -- a crashed initializer (state != ready under the
    // exclusive lock proves its owner died), an implausible geometry, a
    // truncated file, or a ring stamped by a different toolchain -- is
    // re-initialized below, same as the ObjectStore's invalidation rule.
  }
  slot_count_ = adopt ? img.slot_count : options_.slots;
  slot_bytes_ = adopt ? img.slot_bytes : options_.slot_bytes;
  slot_stride_ = SlotStride(slot_bytes_);
  map_bytes_ = FileBytes(slot_count_, slot_bytes_);
  if (!adopt && ::ftruncate(fd_, static_cast<off_t>(map_bytes_)) != 0) {
    init_ = Error(ErrorKind::kIo, "ShmRing: ftruncate failed");
    return false;
  }
  map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                0);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    init_ = Error(ErrorKind::kIo, "ShmRing: mmap failed");
    return false;
  }
  header_ = static_cast<Header*>(map_);
  if (!adopt) {
    InitializeLocked(toolchain_fp);
    if (st.st_size != 0) {
      // There was *something* here (crashed init, stale toolchain, garbage)
      // and we wiped it -- worth a counter, it costs the fleet its warmth.
      reinit_.fetch_add(1, std::memory_order_relaxed);
      ShmMetrics::Get().reinits.Add(1);
    }
  }
  return true;
}

/// Caller holds the exclusive flock and a fresh ftruncate'd mapping.
void ShmRing::InitializeLocked(std::uint64_t toolchain_fp) {
  header_->init_state.store(kInitializing, std::memory_order_relaxed);
  header_->init_pid = static_cast<std::uint32_t>(::getpid());
  std::memcpy(header_->magic, kRingMagic, sizeof(kRingMagic));
  header_->format_version = kShmFormatVersion;
  header_->slot_count = slot_count_;
  header_->slot_bytes = slot_bytes_;
  header_->toolchain_fp = toolchain_fp;
  header_->clock.store(0, std::memory_order_relaxed);
  header_->fleet_hits.store(0, std::memory_order_relaxed);
  header_->fleet_inserts.store(0, std::memory_order_relaxed);
  header_->fleet_evictions.store(0, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot* slot = SlotAt(i);
    slot->seq.store(0, std::memory_order_relaxed);
    slot->writer_pid = 0;
    slot->last_used.store(0, std::memory_order_relaxed);
    slot->fingerprint.store(0, std::memory_order_relaxed);
    slot->payload_size.store(0, std::memory_order_relaxed);
    slot->payload_fnv.store(0, std::memory_order_relaxed);
  }
  // Publish: any later attacher that observes kReady (under the flock) also
  // observes every initialization write above.
  header_->init_state.store(kReady, std::memory_order_release);
}

bool ShmRing::Lookup(std::uint64_t fingerprint,
                     std::vector<std::uint8_t>* out) {
  if (!attached()) return false;
  DBLL_TRACE_SPAN("jit.objcache.shm_load");
  const std::uint64_t t0 = NowNs();
  bool hit = false;
  do {
    // Fault site for the robustness suite: a firing `objcache.shm` makes the
    // ring behave as unavailable -- a degraded miss, the caller falls
    // through to the disk store.
    if (fault::AnyArmed() && fault::Hit("objcache.shm")) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      ShmMetrics::Get().errors.Add(1);
      break;
    }
    // Quarantine veto *before* any slot is read: a poisoned fingerprint
    // must never leave the ring, even if a peer managed to insert it.
    if (quarantine_ && quarantine_->Contains(fingerprint)) {
      quarantine_->NoteBlocked();
      quarantine_blocked_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    for (std::uint32_t i = 0; i < slot_count_ && !hit; ++i) {
      Slot* slot = SlotAt(i);
      if (slot->fingerprint.load(std::memory_order_relaxed) != fingerprint) {
        continue;
      }
      // Seqlock read: snapshot an even sequence, copy, re-check. A torn or
      // concurrently-rewritten slot simply fails the recheck (or, belt and
      // braces, the checksum) and stays a miss.
      const std::uint32_t seq1 = slot->seq.load(std::memory_order_acquire);
      if (seq1 & 1u) continue;  // writer mid-copy
      const std::uint64_t size =
          slot->payload_size.load(std::memory_order_relaxed);
      const std::uint64_t fnv =
          slot->payload_fnv.load(std::memory_order_relaxed);
      if (slot->fingerprint.load(std::memory_order_relaxed) != fingerprint ||
          size == 0 || size > slot_bytes_) {
        continue;
      }
      out->resize(static_cast<std::size_t>(size));
      std::memcpy(out->data(),
                  reinterpret_cast<const std::uint8_t*>(slot) +
                      kSlotHeaderBytes,
                  static_cast<std::size_t>(size));
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot->seq.load(std::memory_order_relaxed) != seq1) continue;
      if (Fnv1aBytes(out->data(), out->size()) != fnv) {
        // Survived the seqlock but fails the checksum: hostile or corrupted
        // shared memory. Count it loudly; the caller falls back to disk.
        errors_.fetch_add(1, std::memory_order_relaxed);
        ShmMetrics::Get().errors.Add(1);
        continue;
      }
      slot->last_used.store(
          header_->clock.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      header_->fleet_hits.fetch_add(1, std::memory_order_relaxed);
      hit = true;
    }
  } while (false);
  const std::uint64_t elapsed = NowNs() - t0;
  lookup_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  ShmMetrics::Get().lookup_ns.Add(elapsed);
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    ShmMetrics::Get().hits.Add(1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ShmMetrics::Get().misses.Add(1);
  }
  return hit;
}

bool ShmRing::Insert(std::uint64_t fingerprint, const std::uint8_t* data,
                     std::size_t size) {
  if (!attached() || size == 0) return false;
  DBLL_TRACE_SPAN("jit.objcache.shm_insert");
  const std::uint64_t t0 = NowNs();
  bool inserted = false;
  do {
    if (fault::AnyArmed() && fault::Hit("objcache.shm")) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      ShmMetrics::Get().errors.Add(1);
      break;
    }
    // A quarantined fingerprint is never re-published into shared memory.
    if (quarantine_ && quarantine_->Contains(fingerprint)) {
      quarantine_->NoteBlocked();
      quarantine_blocked_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (size > slot_bytes_) {
      // Oversized objects stay disk-only; the ring is a hot-entry cache,
      // not the store of record.
      too_big_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (::flock(fd_, LOCK_EX) != 0) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      ShmMetrics::Get().errors.Add(1);
      break;
    }
    // Victim selection under the writer lock: reuse this fingerprint's slot,
    // else reclaim a crashed writer's slot (odd sequence while *we* hold the
    // exclusive lock proves its owner died mid-copy), else a free slot, else
    // evict the least-recently-used.
    int same = -1, stale = -1, free_slot = -1, lru = -1;
    std::uint64_t lru_used = ~0ull;
    for (std::uint32_t i = 0; i < slot_count_; ++i) {
      Slot* slot = SlotAt(i);
      if (slot->seq.load(std::memory_order_relaxed) & 1u) {
        if (stale < 0) stale = static_cast<int>(i);
        continue;
      }
      if (slot->payload_size.load(std::memory_order_relaxed) == 0) {
        if (free_slot < 0) free_slot = static_cast<int>(i);
        continue;
      }
      if (slot->fingerprint.load(std::memory_order_relaxed) == fingerprint) {
        same = static_cast<int>(i);
        break;
      }
      const std::uint64_t used =
          slot->last_used.load(std::memory_order_relaxed);
      if (lru < 0 || used < lru_used) {
        lru_used = used;
        lru = static_cast<int>(i);
      }
    }
    const int index = same >= 0 ? same
                      : stale >= 0 ? stale
                      : free_slot >= 0 ? free_slot
                                       : lru;
    if (index < 0) {
      ::flock(fd_, LOCK_UN);
      break;
    }
    if (same < 0 && stale >= 0 && index == stale) {
      stale_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (index == lru && same < 0 && stale < 0 && free_slot < 0) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      ShmMetrics::Get().evictions.Add(1);
      header_->fleet_evictions.fetch_add(1, std::memory_order_relaxed);
    }
    Slot* slot = SlotAt(static_cast<std::uint32_t>(index));
    // Seqlock write: force the sequence odd (a stale slot already is),
    // publish the payload, then bump to the next even value. The fences give
    // readers the store-store ordering the protocol needs; the checksum
    // covers anything exotic.
    const std::uint32_t begin =
        slot->seq.load(std::memory_order_relaxed) | 1u;
    slot->seq.store(begin, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot->writer_pid = static_cast<std::uint32_t>(::getpid());
    slot->fingerprint.store(fingerprint, std::memory_order_relaxed);
    slot->payload_size.store(size, std::memory_order_relaxed);
    slot->payload_fnv.store(Fnv1aBytes(data, size),
                            std::memory_order_relaxed);
    std::memcpy(reinterpret_cast<std::uint8_t*>(slot) + kSlotHeaderBytes,
                data, size);
    slot->last_used.store(
        header_->clock.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot->seq.store(begin + 1, std::memory_order_release);
    header_->fleet_inserts.fetch_add(1, std::memory_order_relaxed);
    ::flock(fd_, LOCK_UN);
    inserted = true;
  } while (false);
  const std::uint64_t elapsed = NowNs() - t0;
  insert_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  ShmMetrics::Get().insert_ns.Add(elapsed);
  if (inserted) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    ShmMetrics::Get().inserts.Add(1);
  }
  return inserted;
}

ShmRingStats ShmRing::stats() const {
  ShmRingStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.too_big = too_big_.load(std::memory_order_relaxed);
  s.stale_reclaimed = stale_reclaimed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.reinit = reinit_.load(std::memory_order_relaxed);
  s.lookup_ns = lookup_ns_.load(std::memory_order_relaxed);
  s.insert_ns = insert_ns_.load(std::memory_order_relaxed);
  s.quarantine_blocked =
      quarantine_blocked_.load(std::memory_order_relaxed);
  return s;
}

void ShmRing::SetQuarantine(std::shared_ptr<Quarantine> quarantine) {
  quarantine_ = std::move(quarantine);
}

bool ShmRing::Invalidate(std::uint64_t fingerprint) {
  if (!attached() || fingerprint == 0) return false;
  if (::flock(fd_, LOCK_EX) != 0) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    ShmMetrics::Get().errors.Add(1);
    return false;
  }
  bool cleared = false;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot* slot = SlotAt(i);
    if (slot->fingerprint.load(std::memory_order_relaxed) != fingerprint) {
      continue;
    }
    // Seqlock write of an empty slot, same protocol as Insert: readers
    // mid-copy fail their sequence recheck and miss.
    const std::uint32_t begin =
        slot->seq.load(std::memory_order_relaxed) | 1u;
    slot->seq.store(begin, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot->writer_pid = static_cast<std::uint32_t>(::getpid());
    slot->fingerprint.store(0, std::memory_order_relaxed);
    slot->payload_size.store(0, std::memory_order_relaxed);
    slot->payload_fnv.store(0, std::memory_order_relaxed);
    slot->last_used.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot->seq.store(begin + 1, std::memory_order_release);
    cleared = true;
  }
  ::flock(fd_, LOCK_UN);
  return cleared;
}

ShmRingOccupancy ShmRing::occupancy() const {
  ShmRingOccupancy occ;
  if (!attached()) return occ;
  occ.format_version = header_->format_version;
  occ.slot_count = slot_count_;
  occ.slot_bytes = slot_bytes_;
  occ.toolchain_fp = header_->toolchain_fp;
  occ.fleet_hits = header_->fleet_hits.load(std::memory_order_relaxed);
  occ.fleet_inserts = header_->fleet_inserts.load(std::memory_order_relaxed);
  occ.fleet_evictions =
      header_->fleet_evictions.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot* slot = SlotAt(i);
    if (slot->seq.load(std::memory_order_relaxed) & 1u) continue;
    const std::uint64_t size =
        slot->payload_size.load(std::memory_order_relaxed);
    if (size == 0) continue;
    ++occ.used_slots;
    occ.payload_bytes += size;
  }
  return occ;
}

Expected<ShmRingOccupancy> ShmRing::Inspect(const std::string& dir) {
  const std::string path = dir + "/" + kRingFile;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Error(ErrorKind::kIo, "no shm ring at " + path);
  }
  HeaderImage img{};
  const bool header_ok =
      ::pread(fd, &img, sizeof(img), 0) == static_cast<ssize_t>(sizeof(img)) &&
      std::memcmp(img.magic, kRingMagic, sizeof(kRingMagic)) == 0;
  if (!header_ok) {
    ::close(fd);
    return Error(ErrorKind::kIo, "unreadable shm ring header at " + path);
  }
  if (img.format_version != kShmFormatVersion) {
    ::close(fd);
    return Error(ErrorKind::kUnsupported,
                 "shm ring format version " +
                     std::to_string(img.format_version) + " at " + path);
  }
  if (img.init_state != kReady || !GeometrySane(img.slot_count,
                                                img.slot_bytes)) {
    ::close(fd);
    return Error(ErrorKind::kIo, "uninitialized shm ring at " + path);
  }
  ShmRingOccupancy occ;
  occ.format_version = img.format_version;
  occ.slot_count = img.slot_count;
  occ.slot_bytes = img.slot_bytes;
  occ.toolchain_fp = img.toolchain_fp;
  occ.fleet_hits = img.fleet_hits;
  occ.fleet_inserts = img.fleet_inserts;
  occ.fleet_evictions = img.fleet_evictions;
  const std::uint64_t stride = SlotStride(img.slot_bytes);
  for (std::uint32_t i = 0; i < img.slot_count; ++i) {
    SlotImage slot{};
    const off_t offset = static_cast<off_t>(kHeaderBytes + i * stride);
    if (::pread(fd, &slot, sizeof(slot), offset) !=
        static_cast<ssize_t>(sizeof(slot))) {
      break;  // truncated file: report what we saw
    }
    if ((slot.seq & 1u) || slot.payload_size == 0) continue;
    ++occ.used_slots;
    occ.payload_bytes += slot.payload_size;
  }
  ::close(fd);
  return occ;
}

int ShmRing::TestFindSlot(std::uint64_t fingerprint) const {
  if (!attached()) return -1;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot* slot = SlotAt(i);
    if (slot->fingerprint.load(std::memory_order_relaxed) == fingerprint &&
        slot->payload_size.load(std::memory_order_relaxed) != 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void ShmRing::TestSetSlotSeq(std::uint32_t slot_index, std::uint32_t seq) {
  if (!attached() || slot_index >= slot_count_) return;
  SlotAt(slot_index)->seq.store(seq, std::memory_order_relaxed);
}

void ShmRing::TestCorruptSlotPayload(std::uint32_t slot_index) {
  if (!attached() || slot_index >= slot_count_) return;
  Slot* slot = SlotAt(slot_index);
  if (slot->payload_size.load(std::memory_order_relaxed) == 0) return;
  std::uint8_t* payload =
      reinterpret_cast<std::uint8_t*>(slot) + kSlotHeaderBytes;
  payload[0] ^= 0xFF;
}

}  // namespace dbll::runtime
