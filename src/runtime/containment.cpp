// dbll -- crash containment (see include/dbll/runtime/containment.h for the
// model; docs/robustness.md for the signal-safety rules).
#include "dbll/runtime/containment.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <sstream>

#include "dbll/obs/obs.h"
#include "dbll/support/fault.h"
#include "dbll/support/file_io.h"
#include "env_util.h"

namespace dbll::runtime {

namespace {

const char kQuarantineFile[] = "quarantine.dbq";
const char kQuarantineMagic[] = "DBLLQ1";
const char kLockName[] = ".lock";
constexpr std::size_t kMaxQuarantineRecords = 65536;
constexpr std::size_t kMaxReasonLen = 256;

std::uint64_t NowNs() { return obs::Tracer::NowNs(); }

/// `containment.*` counters (obs registry); leaky singleton like the other
/// runtime metric bundles so resolution happens once.
struct ContainmentMetrics {
  obs::Counter& probation_installs;
  obs::Counter& probation_clean;
  obs::Counter& probation_faults;
  obs::Counter& breaker_opens;
  obs::Counter& breaker_closes;
  obs::Counter& breaker_denials;
  obs::Counter& quarantined;
  obs::Counter& quarantine_blocked;

  static ContainmentMetrics& Get() {
    static ContainmentMetrics* instance = [] {
      obs::Registry& r = obs::Registry::Default();
      return new ContainmentMetrics{
          r.GetCounter("containment.probation_installs"),
          r.GetCounter("containment.probation_clean"),
          r.GetCounter("containment.probation_faults"),
          r.GetCounter("containment.breaker_opens"),
          r.GetCounter("containment.breaker_closes"),
          r.GetCounter("containment.breaker_denials"),
          r.GetCounter("containment.quarantined"),
          r.GetCounter("containment.quarantine_blocked")};
    }();
    return *instance;
  }
};

/// The raw call model: six System-V integer argument registers in, integer
/// (or void) return in rax -- the same signature surface CompileRequest
/// supports.
using RawFn = std::uint64_t (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                                std::uint64_t, std::uint64_t, std::uint64_t);

std::uint64_t CallRaw(std::uint64_t entry, const std::uint64_t* args) {
  return reinterpret_cast<RawFn>(entry)(args[0], args[1], args[2], args[3],
                                        args[4], args[5]);
}

void Emit(std::vector<std::uint8_t>& out,
          std::initializer_list<std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void EmitImm64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

}  // namespace

/// extern "C" thunk: gives the stub a plain, stable symbol to movabs.
extern "C" std::uint64_t dbll_probation_dispatch(void* guard,
                                                 const std::uint64_t* args) {
  return ProbationGuard::Dispatch(static_cast<ProbationGuard*>(guard), args);
}

void ContainmentOptions::ApplyEnv() {
  enabled = env::Flag("DBLL_CONTAIN", enabled);
  probation_calls = static_cast<std::uint32_t>(
      env::U64("DBLL_CONTAIN_CALLS", probation_calls));
  breaker_threshold = static_cast<std::uint32_t>(
      env::U64("DBLL_CONTAIN_BREAKER_K", breaker_threshold));
  breaker_cooldown_ms =
      env::U64("DBLL_CONTAIN_COOLDOWN_MS", breaker_cooldown_ms);
  Clamp();
}

void ContainmentOptions::Clamp() {
  probation_calls = std::max<std::uint32_t>(1, probation_calls);
  breaker_threshold = std::max<std::uint32_t>(1, breaker_threshold);
  breaker_capacity = std::max<std::uint32_t>(16, breaker_capacity);
}

// --- ProbationGuard ---------------------------------------------------------

Expected<std::shared_ptr<ProbationGuard>> ProbationGuard::Create(
    std::uint64_t entry, std::uint64_t fallback_entry,
    std::uint32_t probation_calls, Hooks hooks) {
  if (entry == 0 || fallback_entry == 0) {
    return Error(ErrorKind::kInternal, "probation guard needs two entries");
  }
  auto guard = std::shared_ptr<ProbationGuard>(new ProbationGuard());
  guard->entry_ = entry;
  guard->fallback_ = fallback_entry;
  guard->probation_calls_ = std::max<std::uint32_t>(1, probation_calls);
  guard->hooks_ = std::move(hooks);

  // Stub: spill the six integer argument registers to the stack, hand the
  // dispatcher (guard, &args[0]) and return whatever it returns. Stack
  // stays 16-byte aligned at the call (entry rsp%16==8, push rbp -> 0,
  // sub 0x30 -> 0).
  //   push rbp                55
  //   mov  rbp, rsp           48 89 E5
  //   sub  rsp, 0x30          48 83 EC 30
  //   mov  [rsp+0x00], rdi    48 89 3C 24
  //   mov  [rsp+0x08], rsi    48 89 74 24 08
  //   mov  [rsp+0x10], rdx    48 89 54 24 10
  //   mov  [rsp+0x18], rcx    48 89 4C 24 18
  //   mov  [rsp+0x20], r8     4C 89 44 24 20
  //   mov  [rsp+0x28], r9     4C 89 4C 24 28
  //   mov  rsi, rsp           48 89 E6
  //   movabs rdi, guard       48 BF imm64
  //   movabs rax, dispatch    48 B8 imm64
  //   call rax                FF D0
  //   leave                   C9
  //   ret                     C3
  std::vector<std::uint8_t> code;
  code.reserve(64);
  Emit(code, {0x55});
  Emit(code, {0x48, 0x89, 0xE5});
  Emit(code, {0x48, 0x83, 0xEC, 0x30});
  Emit(code, {0x48, 0x89, 0x3C, 0x24});
  Emit(code, {0x48, 0x89, 0x74, 0x24, 0x08});
  Emit(code, {0x48, 0x89, 0x54, 0x24, 0x10});
  Emit(code, {0x48, 0x89, 0x4C, 0x24, 0x18});
  Emit(code, {0x4C, 0x89, 0x44, 0x24, 0x20});
  Emit(code, {0x4C, 0x89, 0x4C, 0x24, 0x28});
  Emit(code, {0x48, 0x89, 0xE6});
  Emit(code, {0x48, 0xBF});
  EmitImm64(code, reinterpret_cast<std::uint64_t>(guard.get()));
  Emit(code, {0x48, 0xB8});
  EmitImm64(code, reinterpret_cast<std::uint64_t>(&dbll_probation_dispatch));
  Emit(code, {0xFF, 0xD0});
  Emit(code, {0xC9});
  Emit(code, {0xC3});

  DBLL_TRY(CodeBuffer buffer, CodeBuffer::Allocate(code.size()));
  DBLL_TRY(std::uint8_t * base,
           buffer.Append(std::span<const std::uint8_t>(code)));
  DBLL_TRY_STATUS(buffer.Seal());
  guard->stub_entry_ = reinterpret_cast<std::uint64_t>(base);
  guard->code_ = std::move(buffer);
  ContainmentMetrics::Get().probation_installs.Add(1);
  return guard;
}

bool ProbationGuard::poisoned() const {
  return state_.load(std::memory_order_acquire) == kPoisoned;
}

bool ProbationGuard::completed() const {
  return state_.load(std::memory_order_acquire) == kClean;
}

void ProbationGuard::NoteClean() {
  const std::uint64_t n = clean_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n != probation_calls_) return;
  std::uint32_t expected = kProbing;
  if (!state_.compare_exchange_strong(expected, kClean,
                                      std::memory_order_acq_rel)) {
    return;  // a racing fault (or a duplicate crossing) won
  }
  ContainmentMetrics::Get().probation_clean.Add(1);
  if (hooks_.on_clean) hooks_.on_clean();
}

void ProbationGuard::HandleFault(const support::FaultInfo& info) {
  // exchange: exactly one thread observes the transition into kPoisoned and
  // runs the recovery hook, no matter how many threads fault concurrently
  // or what state the probation was in.
  const std::uint32_t prev =
      state_.exchange(kPoisoned, std::memory_order_acq_rel);
  if (prev == kPoisoned) return;
  fault_ = info;
  ContainmentMetrics::Get().probation_faults.Add(1);
  if (hooks_.on_fault) hooks_.on_fault(fault_);
}

std::uint64_t ProbationGuard::Dispatch(ProbationGuard* guard,
                                       const std::uint64_t* args) {
  if (guard->state_.load(std::memory_order_acquire) == kPoisoned) {
    return CallRaw(guard->fallback_, args);
  }
  // Synthetic fault (robustness suite): behaves exactly like a caught
  // signal -- demotion, quarantine, breaker -- without raising one, so the
  // containment plumbing is testable under any sanitizer.
  if (fault::AnyArmed()) {
    if (auto injected = fault::Hit("exec.probation")) {
      support::FaultInfo info;
      info.signo = 0;
      info.fault_pc = guard->entry_;
      guard->HandleFault(info);
      return CallRaw(guard->fallback_, args);
    }
  }
  support::GuardFrame frame;
  if (sigsetjmp(frame.jump_buffer(), 1) == 0) {
    frame.Arm();
    const std::uint64_t result = CallRaw(guard->entry_, args);
    frame.Disarm();
    guard->NoteClean();
    return result;
  }
  // The entry faulted and never returned; recovery work happens here, in
  // normal calling context (the handler only longjmp'd).
  guard->HandleFault(frame.fault());
  return CallRaw(guard->fallback_, args);
}

// --- BreakerBoard -----------------------------------------------------------

std::string_view ToString(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

BreakerBoard::BreakerBoard(std::uint32_t threshold, std::uint64_t cooldown_ms,
                           std::uint32_t capacity)
    : threshold_(std::max<std::uint32_t>(1, threshold)),
      cooldown_ns_(cooldown_ms * 1'000'000ull),
      capacity_(std::max<std::uint32_t>(16, capacity)) {}

BreakerBoard::Decision BreakerBoard::Check(const std::string& key,
                                           std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Decision::kAllow;
  Entry& e = it->second;
  switch (e.state) {
    case BreakerState::kClosed:
      return Decision::kAllow;
    case BreakerState::kOpen:
      if (now_ns - e.opened_ns < cooldown_ns_) {
        ++denials_;
        ContainmentMetrics::Get().breaker_denials.Add(1);
        return Decision::kDeny;
      }
      e.state = BreakerState::kHalfOpen;
      e.probing = true;
      ++probes_;
      return Decision::kProbe;
    case BreakerState::kHalfOpen:
      if (!e.probing) {
        e.probing = true;
        ++probes_;
        return Decision::kProbe;
      }
      ++denials_;
      ContainmentMetrics::Get().breaker_denials.Add(1);
      return Decision::kDeny;
  }
  return Decision::kAllow;
}

void BreakerBoard::OnFault(const std::string& key, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_ && !order_.empty()) {
      entries_.erase(order_.front());
      order_.erase(order_.begin());
    }
    it = entries_.emplace(key, Entry{}).first;
    order_.push_back(key);
  }
  Entry& e = it->second;
  ++e.faults;
  e.probing = false;
  if (e.state != BreakerState::kOpen && e.faults >= threshold_) {
    e.state = BreakerState::kOpen;
    ++opens_;
    ContainmentMetrics::Get().breaker_opens.Add(1);
  }
  if (e.state == BreakerState::kOpen) e.opened_ns = now_ns;
}

void BreakerBoard::OnSuccess(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  const bool was_tripped = e.state != BreakerState::kClosed;
  e.state = BreakerState::kClosed;
  e.faults = 0;
  e.probing = false;
  if (was_tripped) {
    ++closes_;
    ContainmentMetrics::Get().breaker_closes.Add(1);
  }
}

BreakerState BreakerBoard::StateOf(const std::string& key,
                                   std::uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return BreakerState::kClosed;
  const Entry& e = it->second;
  if (e.state == BreakerState::kOpen && now_ns - e.opened_ns >= cooldown_ns_) {
    return BreakerState::kHalfOpen;  // would probe on the next Check
  }
  return e.state;
}

BreakerBoard::Stats BreakerBoard::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.opens = opens_;
  s.closes = closes_;
  s.probes = probes_;
  s.denials = denials_;
  s.tracked = entries_.size();
  return s;
}

// --- Quarantine -------------------------------------------------------------

namespace {

/// Parses sidecar text into records. Tolerates trailing garbage per line
/// (reason is everything after the tab); unknown/corrupt lines are skipped,
/// never fatal -- a hostile sidecar can cost protection, not correctness.
std::vector<Quarantine::Record> ParseQuarantine(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<Quarantine::Record> records;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  std::string line;
  bool first = true;
  while (std::getline(in, line) && records.size() < kMaxQuarantineRecords) {
    if (first) {
      first = false;
      if (line == kQuarantineMagic) continue;  // header line
    }
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const unsigned long long fp = std::strtoull(line.c_str(), &end, 16);
    if (end == line.c_str() || fp == 0) continue;
    Quarantine::Record record;
    record.fingerprint = static_cast<std::uint64_t>(fp);
    const std::size_t tab = line.find('\t');
    if (tab != std::string::npos) {
      record.reason = line.substr(tab + 1, kMaxReasonLen);
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string QuarantinePath(const std::string& dir) {
  return dir + "/" + kQuarantineFile;
}

std::string FormatQuarantine(
    const std::unordered_map<std::uint64_t, std::string>& entries) {
  std::vector<std::uint64_t> fps;
  fps.reserve(entries.size());
  for (const auto& [fp, reason] : entries) fps.push_back(fp);
  std::sort(fps.begin(), fps.end());
  std::string out = kQuarantineMagic;
  out += '\n';
  char buf[32];
  for (const std::uint64_t fp : fps) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    out += buf;
    out += '\t';
    out += entries.at(fp);
    out += '\n';
  }
  return out;
}

}  // namespace

const char* Quarantine::FileName() { return kQuarantineFile; }

Quarantine::Quarantine(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  (void)MergeFromDisk();  // missing sidecar is simply an empty set
}

bool Quarantine::Contains(std::uint64_t fingerprint) const {
  if (count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(fingerprint) != entries_.end();
}

void Quarantine::NoteBlocked() {
  blocked_.fetch_add(1, std::memory_order_relaxed);
  ContainmentMetrics::Get().quarantine_blocked.Add(1);
}

Status Quarantine::MergeFromDisk() {
  auto bytes = support::ReadFileBytes(QuarantinePath(dir_));
  if (!bytes) return Status::Ok();  // no sidecar yet
  for (auto& record : ParseQuarantine(*bytes)) {
    entries_.emplace(record.fingerprint, std::move(record.reason));
  }
  count_.store(entries_.size(), std::memory_order_release);
  return Status::Ok();
}

Status Quarantine::Add(std::uint64_t fingerprint, const std::string& reason) {
  if (dir_.empty()) {
    return Error(ErrorKind::kBadConfig, "quarantine: no cache directory");
  }
  if (fingerprint == 0) {
    return Error(ErrorKind::kBadConfig, "quarantine: zero fingerprint");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // The in-memory set is updated unconditionally: even when the sidecar
  // write below fails (disk full, injected fault), *this* process must
  // keep refusing the fingerprint.
  entries_.emplace(fingerprint,
                   reason.substr(0, std::min(reason.size(), kMaxReasonLen)));
  count_.store(entries_.size(), std::memory_order_release);
  ContainmentMetrics::Get().quarantined.Add(1);
  DBLL_FAULT_POINT("objcache.quarantine");
  if (!support::EnsureDir(dir_).ok()) {
    return Error(ErrorKind::kIo, "quarantine: cannot create cache dir");
  }
  support::FileLock dirlock(dir_ + "/" + kLockName);
  if (!dirlock.ok()) {
    return Error(ErrorKind::kIo, "quarantine: cannot take cache lock");
  }
  DBLL_TRY_STATUS(MergeFromDisk());  // merge concurrent peers before rewrite
  const std::string text = FormatQuarantine(entries_);
  return support::WriteFileAtomic(QuarantinePath(dir_), text.data(),
                                  text.size());
}

Status Quarantine::Refresh() {
  if (dir_.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(mutex_);
  return MergeFromDisk();
}

std::vector<Quarantine::Record> Quarantine::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Record> records;
  records.reserve(entries_.size());
  for (const auto& [fp, reason] : entries_) {
    records.push_back(Record{fp, reason});
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.fingerprint < b.fingerprint;
            });
  return records;
}

std::uint64_t Quarantine::size() const {
  return count_.load(std::memory_order_acquire);
}

Expected<std::vector<Quarantine::Record>> Quarantine::ReadDir(
    const std::string& dir) {
  if (dir.empty()) {
    return Error(ErrorKind::kBadConfig, "quarantine: empty directory");
  }
  auto bytes = support::ReadFileBytes(QuarantinePath(dir));
  if (!bytes) return std::vector<Record>{};  // no sidecar = empty set
  std::vector<Record> records = ParseQuarantine(*bytes);
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.fingerprint < b.fingerprint;
            });
  return records;
}

Expected<std::uint64_t> Quarantine::Clear(const std::string& dir) {
  if (dir.empty()) {
    return Error(ErrorKind::kBadConfig, "quarantine: empty directory");
  }
  auto bytes = support::ReadFileBytes(QuarantinePath(dir));
  const std::uint64_t count =
      bytes ? ParseQuarantine(*bytes).size() : 0;
  support::FileLock dirlock(dir + "/" + kLockName);
  DBLL_TRY_STATUS(support::RemoveFile(QuarantinePath(dir)));
  return count;
}

}  // namespace dbll::runtime
