// dbll -- shared DBLL_* environment-variable parsing (internal).
//
// One grammar for every runtime knob, used by both configuration surfaces:
// CompileService::Options::ApplyEnv() (which the C++ constructor and every
// C entry point funnel through) and TieringOptions::ApplyEnv(). Flags accept
// "0"/"off"/"false" as false and anything else non-empty as true; numeric
// knobs fall back to the compiled default on an unparsable value rather
// than guessing.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace dbll::runtime::env {

inline bool Flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

inline std::uint64_t U64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end == v) ? fallback : static_cast<std::uint64_t>(parsed);
}

inline double F64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v) ? fallback : parsed;
}

inline std::string Str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace dbll::runtime::env
