// dbll -- cache key construction (see include/dbll/runtime/spec_cache.h).
#include "dbll/runtime/spec_cache.h"

#include <cstring>

namespace dbll::runtime {

CompileRequest& CompileRequest::FixParam(int index, std::uint64_t value) {
  SpecAction action;
  action.kind = SpecAction::Kind::kParam;
  action.index = index;
  action.value = value;
  specs.push_back(std::move(action));
  return *this;
}

CompileRequest& CompileRequest::FixConstMem(int index, const void* data,
                                            std::size_t size) {
  SpecAction action;
  action.kind = SpecAction::Kind::kConstMem;
  action.index = index;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  action.bytes.assign(bytes, bytes + size);
  action.mem_addr = reinterpret_cast<std::uint64_t>(data);
  specs.push_back(std::move(action));
  return *this;
}

CompileRequest& CompileRequest::AddConstRange(const void* data,
                                              std::size_t size) {
  SpecAction action;
  action.kind = SpecAction::Kind::kConstRange;
  action.index = -1;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  action.bytes.assign(bytes, bytes + size);
  action.mem_addr = reinterpret_cast<std::uint64_t>(data);
  specs.push_back(std::move(action));
  return *this;
}

namespace {

void Append64(std::vector<std::uint8_t>& blob, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    blob.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

/// FNV-1a over the canonical blob: cheap, stable across runs of one process
/// (addresses are process-specific anyway), and collision-checked by the
/// full-blob equality comparison.
std::uint64_t Fnv1a(const std::vector<std::uint8_t>& blob) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : blob) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

SpecKey::SpecKey(const CompileRequest& request) {
  blob_.reserve(64);
  Append64(blob_, request.address);
  blob_.push_back(static_cast<std::uint8_t>(request.signature.ret));
  Append64(blob_, request.signature.args.size());
  for (lift::ArgKind arg : request.signature.args) {
    blob_.push_back(static_cast<std::uint8_t>(arg));
  }
  Append64(blob_, lift::Fingerprint(request.config));
  Append64(blob_, request.specs.size());
  for (const SpecAction& spec : request.specs) {
    blob_.push_back(static_cast<std::uint8_t>(spec.kind));
    Append64(blob_, static_cast<std::uint64_t>(spec.index));
    if (spec.kind == SpecAction::Kind::kParam) {
      Append64(blob_, spec.value);
    } else {
      // Every memory fixation is identified by address *and* contents: the
      // bytes feed flat constant folding, while the absolute addresses decide
      // the pointer-link graph (analysis::FindPointerLinks) that
      // SpecializeConstMemGraph bakes into Tier-0 code -- byte-identical
      // regions at different addresses are not interchangeable.
      Append64(blob_, spec.mem_addr);
      Append64(blob_, spec.bytes.size());
      blob_.insert(blob_.end(), spec.bytes.begin(), spec.bytes.end());
    }
  }
  hash_ = Fnv1a(blob_);
}

}  // namespace dbll::runtime
