#include "dbll/x86/decoder.h"

#include <cstring>

#include "dbll/support/fault.h"

namespace dbll::x86 {
namespace {

// REX prefix bit masks.
constexpr std::uint8_t kRexW = 0x8;
constexpr std::uint8_t kRexR = 0x4;
constexpr std::uint8_t kRexX = 0x2;
constexpr std::uint8_t kRexB = 0x1;

/// Decoder state for one instruction: byte cursor plus collected prefixes.
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  std::uint64_t address;

  bool has_rex = false;
  std::uint8_t rex = 0;
  bool osz = false;    // 0x66 operand-size override
  bool rep = false;    // 0xF3
  bool repne = false;  // 0xF2
  Segment segment = Segment::kNone;

  Error Err(const char* message) const {
    return Error(ErrorKind::kDecode, message, address);
  }

  Expected<std::uint8_t> U8() {
    if (pos >= size) return Err("instruction truncated");
    return data[pos++];
  }
  Expected<std::uint8_t> Peek() const {
    if (pos >= size) return Err("instruction truncated");
    return data[pos];
  }
  Expected<std::int32_t> S8() {
    DBLL_TRY(std::uint8_t b, U8());
    return static_cast<std::int32_t>(static_cast<std::int8_t>(b));
  }
  Expected<std::int32_t> S16() {
    if (pos + 2 > size) return Err("instruction truncated");
    std::uint16_t v;
    std::memcpy(&v, data + pos, 2);
    pos += 2;
    return static_cast<std::int32_t>(static_cast<std::int16_t>(v));
  }
  Expected<std::int32_t> S32() {
    if (pos + 4 > size) return Err("instruction truncated");
    std::uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return static_cast<std::int32_t>(v);
  }
  Expected<std::int64_t> S64() {
    if (pos + 8 > size) return Err("instruction truncated");
    std::uint64_t v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return static_cast<std::int64_t>(v);
  }

  /// Effective GP operand size in bytes given prefixes (non-byte ops).
  std::uint8_t OpSize() const {
    if (rex & kRexW) return 8;
    if (osz) return 2;
    return 4;
  }
};

/// Parsed ModRM byte with resolved register/memory operand.
struct ModRm {
  std::uint8_t mod = 0;
  std::uint8_t reg_field = 0;  // includes REX.R extension
  std::uint8_t rm_field = 0;   // includes REX.B extension (register form)
  bool is_mem = false;
  MemOperand mem;
};

Expected<ModRm> ParseModRm(Cursor& cur) {
  DBLL_TRY(std::uint8_t modrm, cur.U8());
  ModRm out;
  out.mod = modrm >> 6;
  out.reg_field = static_cast<std::uint8_t>(((modrm >> 3) & 7) | ((cur.rex & kRexR) ? 8 : 0));
  const std::uint8_t rm = modrm & 7;

  if (out.mod == 3) {
    out.rm_field = static_cast<std::uint8_t>(rm | ((cur.rex & kRexB) ? 8 : 0));
    return out;
  }

  out.is_mem = true;
  out.mem.segment = cur.segment;

  if (rm == 4) {
    // SIB byte follows.
    DBLL_TRY(std::uint8_t sib, cur.U8());
    const std::uint8_t scale_bits = sib >> 6;
    const std::uint8_t index = static_cast<std::uint8_t>(((sib >> 3) & 7) | ((cur.rex & kRexX) ? 8 : 0));
    const std::uint8_t base = static_cast<std::uint8_t>((sib & 7) | ((cur.rex & kRexB) ? 8 : 0));
    out.mem.scale = static_cast<std::uint8_t>(1u << scale_bits);
    if (index != 4) {  // index==4 (no REX.X) means "no index"
      out.mem.index = Gp(index);
    } else {
      out.mem.scale = 1;
    }
    if ((sib & 7) == 5 && out.mod == 0) {
      // No base register, disp32 follows.
      DBLL_TRY(std::int32_t disp, cur.S32());
      out.mem.disp = disp;
    } else {
      out.mem.base = Gp(base);
    }
  } else if (rm == 5 && out.mod == 0) {
    // RIP-relative addressing; disp resolved by the caller via Instr::target.
    out.mem.base = kRip;
    DBLL_TRY(std::int32_t disp, cur.S32());
    out.mem.disp = disp;
  } else {
    out.mem.base = Gp(static_cast<std::uint8_t>(rm | ((cur.rex & kRexB) ? 8 : 0)));
  }

  if (out.mod == 1) {
    DBLL_TRY(std::int32_t disp, cur.S8());
    out.mem.disp = disp;
  } else if (out.mod == 2) {
    DBLL_TRY(std::int32_t disp, cur.S32());
    out.mem.disp = disp;
  }
  return out;
}

/// Builds the r/m operand (register or memory) at access width `size`.
Operand RmOperand(const Cursor& cur, const ModRm& modrm, std::uint8_t size,
                  RegClass cls = RegClass::kGp) {
  if (modrm.is_mem) {
    return Operand::MemOp(modrm.mem, size);
  }
  if (cls == RegClass::kVec) {
    return Operand::RegOp(Xmm(modrm.rm_field), 16);
  }
  // Without a REX prefix, byte registers 4..7 are the legacy high-byte regs.
  const bool high8 = size == 1 && !cur.has_rex && modrm.rm_field >= 4 &&
                     modrm.rm_field <= 7;
  const std::uint8_t index = high8 ? static_cast<std::uint8_t>(modrm.rm_field - 4)
                                   : modrm.rm_field;
  return Operand::RegOp(Gp(index), size, high8);
}

/// Builds the reg-field operand at access width `size`.
Operand RegOperand(const Cursor& cur, const ModRm& modrm, std::uint8_t size,
                   RegClass cls = RegClass::kGp) {
  if (cls == RegClass::kVec) {
    return Operand::RegOp(Xmm(modrm.reg_field), 16);
  }
  const bool high8 = size == 1 && !cur.has_rex && modrm.reg_field >= 4 &&
                     modrm.reg_field <= 7;
  const std::uint8_t index = high8 ? static_cast<std::uint8_t>(modrm.reg_field - 4)
                                   : modrm.reg_field;
  return Operand::RegOp(Gp(index), size, high8);
}

/// Reads an immediate of the standard width for the current operand size
/// (imm16 for 16-bit, imm32 otherwise -- sign-extended for 64-bit ops).
Expected<std::int64_t> ReadImmZ(Cursor& cur) {
  if (cur.osz && !(cur.rex & kRexW)) {
    DBLL_TRY(std::int32_t v, cur.S16());
    return static_cast<std::int64_t>(v);
  }
  DBLL_TRY(std::int32_t v, cur.S32());
  return static_cast<std::int64_t>(v);
}

const Mnemonic kAluGroup[8] = {Mnemonic::kAdd, Mnemonic::kOr,  Mnemonic::kAdc,
                               Mnemonic::kSbb, Mnemonic::kAnd, Mnemonic::kSub,
                               Mnemonic::kXor, Mnemonic::kCmp};
const Mnemonic kShiftGroup[8] = {Mnemonic::kRol, Mnemonic::kRor,
                                 Mnemonic::kInvalid, Mnemonic::kInvalid,
                                 Mnemonic::kShl, Mnemonic::kShr,
                                 Mnemonic::kShl, Mnemonic::kSar};

/// Selects among the {none, 66, F3, F2}-prefixed variants of an SSE opcode.
Mnemonic SsePick(const Cursor& cur, Mnemonic none, Mnemonic osz, Mnemonic f3,
                 Mnemonic f2) {
  if (cur.rep) return f3;
  if (cur.repne) return f2;
  if (cur.osz) return osz;
  return none;
}

struct Builder {
  Instr instr;

  Builder(std::uint64_t address) { instr.address = address; }

  Builder& M(Mnemonic mnemonic) {
    instr.mnemonic = mnemonic;
    return *this;
  }
  Builder& C(Cond cond) {
    instr.cond = cond;
    return *this;
  }
  Builder& Op(Operand op) {
    instr.ops[instr.op_count++] = op;
    return *this;
  }
};

Expected<Instr> DecodeTwoByte(Cursor& cur, Builder& b);

Expected<Instr> Finish(Cursor& cur, Builder& b) {
  b.instr.length = static_cast<std::uint8_t>(cur.pos);
  // Resolve RIP-relative memory operands now that the length is known.
  for (int i = 0; i < b.instr.op_count; ++i) {
    Operand& op = b.instr.ops[i];
    if (op.is_mem() && op.mem.base == kRip) {
      b.instr.target = cur.address + b.instr.length +
                       static_cast<std::int64_t>(op.mem.disp);
    }
  }
  return b.instr;
}

/// Finishes a rel8/rel32 branch: target = end-of-instruction + displacement.
Expected<Instr> FinishBranch(Cursor& cur, Builder& b, std::int64_t rel) {
  b.instr.length = static_cast<std::uint8_t>(cur.pos);
  b.instr.target = cur.address + b.instr.length + rel;
  b.Op(Operand::ImmOp(rel, 4));
  b.instr.length = static_cast<std::uint8_t>(cur.pos);
  return b.instr;
}

Expected<Instr> DecodeOneByte(Cursor& cur, Builder& b, std::uint8_t opcode) {
  // ALU block 0x00..0x3D: add/or/adc/sbb/and/sub/xor/cmp.
  if (opcode < 0x40 && (opcode & 7) <= 5) {
    const Mnemonic mnemonic = kAluGroup[(opcode >> 3) & 7];
    const std::uint8_t form = opcode & 7;
    switch (form) {
      case 0: {  // op r/m8, r8
        DBLL_TRY(ModRm modrm, ParseModRm(cur));
        b.M(mnemonic).Op(RmOperand(cur, modrm, 1)).Op(RegOperand(cur, modrm, 1));
        return Finish(cur, b);
      }
      case 1: {  // op r/m, r
        DBLL_TRY(ModRm modrm, ParseModRm(cur));
        const std::uint8_t size = cur.OpSize();
        b.M(mnemonic).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
        return Finish(cur, b);
      }
      case 2: {  // op r8, r/m8
        DBLL_TRY(ModRm modrm, ParseModRm(cur));
        b.M(mnemonic).Op(RegOperand(cur, modrm, 1)).Op(RmOperand(cur, modrm, 1));
        return Finish(cur, b);
      }
      case 3: {  // op r, r/m
        DBLL_TRY(ModRm modrm, ParseModRm(cur));
        const std::uint8_t size = cur.OpSize();
        b.M(mnemonic).Op(RegOperand(cur, modrm, size)).Op(RmOperand(cur, modrm, size));
        return Finish(cur, b);
      }
      case 4: {  // op al, imm8
        DBLL_TRY(std::int32_t imm, cur.S8());
        b.M(mnemonic).Op(Operand::RegOp(kRax, 1)).Op(Operand::ImmOp(imm, 1));
        return Finish(cur, b);
      }
      case 5: {  // op eax/rax, immz
        const std::uint8_t size = cur.OpSize();
        DBLL_TRY(std::int64_t imm, ReadImmZ(cur));
        b.M(mnemonic).Op(Operand::RegOp(kRax, size)).Op(Operand::ImmOp(imm, 4));
        return Finish(cur, b);
      }
    }
  }

  switch (opcode) {
    case 0x50: case 0x51: case 0x52: case 0x53:
    case 0x54: case 0x55: case 0x56: case 0x57: {
      const std::uint8_t index = static_cast<std::uint8_t>((opcode - 0x50) | ((cur.rex & kRexB) ? 8 : 0));
      b.M(Mnemonic::kPush).Op(Operand::RegOp(Gp(index), 8));
      return Finish(cur, b);
    }
    case 0x58: case 0x59: case 0x5a: case 0x5b:
    case 0x5c: case 0x5d: case 0x5e: case 0x5f: {
      const std::uint8_t index = static_cast<std::uint8_t>((opcode - 0x58) | ((cur.rex & kRexB) ? 8 : 0));
      b.M(Mnemonic::kPop).Op(Operand::RegOp(Gp(index), 8));
      return Finish(cur, b);
    }
    case 0x63: {  // movsxd r, r/m32
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kMovsxd)
          .Op(RegOperand(cur, modrm, cur.OpSize()))
          .Op(RmOperand(cur, modrm, 4));
      return Finish(cur, b);
    }
    case 0x68: {  // push imm32
      DBLL_TRY(std::int32_t imm, cur.S32());
      b.M(Mnemonic::kPush).Op(Operand::ImmOp(imm, 4));
      return Finish(cur, b);
    }
    case 0x69: {  // imul r, r/m, imm32
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int64_t imm, ReadImmZ(cur));
      b.M(Mnemonic::kImul)
          .Op(RegOperand(cur, modrm, size))
          .Op(RmOperand(cur, modrm, size))
          .Op(Operand::ImmOp(imm, 4));
      return Finish(cur, b);
    }
    case 0x6a: {  // push imm8
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(Mnemonic::kPush).Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0x6b: {  // imul r, r/m, imm8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(Mnemonic::kImul)
          .Op(RegOperand(cur, modrm, size))
          .Op(RmOperand(cur, modrm, size))
          .Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0x70: case 0x71: case 0x72: case 0x73:
    case 0x74: case 0x75: case 0x76: case 0x77:
    case 0x78: case 0x79: case 0x7a: case 0x7b:
    case 0x7c: case 0x7d: case 0x7e: case 0x7f: {  // jcc rel8
      DBLL_TRY(std::int32_t rel, cur.S8());
      b.M(Mnemonic::kJcc).C(static_cast<Cond>(opcode & 0xf));
      return FinishBranch(cur, b, rel);
    }
    case 0x80: {  // grp1 r/m8, imm8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(kAluGroup[modrm.reg_field & 7])
          .Op(RmOperand(cur, modrm, 1))
          .Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0x81: {  // grp1 r/m, immz
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int64_t imm, ReadImmZ(cur));
      b.M(kAluGroup[modrm.reg_field & 7])
          .Op(RmOperand(cur, modrm, size))
          .Op(Operand::ImmOp(imm, 4));
      return Finish(cur, b);
    }
    case 0x83: {  // grp1 r/m, imm8 (sign-extended)
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(kAluGroup[modrm.reg_field & 7])
          .Op(RmOperand(cur, modrm, size))
          .Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0x84: {  // test r/m8, r8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kTest).Op(RmOperand(cur, modrm, 1)).Op(RegOperand(cur, modrm, 1));
      return Finish(cur, b);
    }
    case 0x85: {  // test r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kTest).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0x86: case 0x87: {  // xchg
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = opcode == 0x86 ? 1 : cur.OpSize();
      b.M(Mnemonic::kXchg).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0x88: {  // mov r/m8, r8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kMov).Op(RmOperand(cur, modrm, 1)).Op(RegOperand(cur, modrm, 1));
      return Finish(cur, b);
    }
    case 0x89: {  // mov r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kMov).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0x8a: {  // mov r8, r/m8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kMov).Op(RegOperand(cur, modrm, 1)).Op(RmOperand(cur, modrm, 1));
      return Finish(cur, b);
    }
    case 0x8b: {  // mov r, r/m
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kMov).Op(RegOperand(cur, modrm, size)).Op(RmOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0x8d: {  // lea r, m
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (!modrm.is_mem) return cur.Err("lea with register operand");
      b.M(Mnemonic::kLea)
          .Op(RegOperand(cur, modrm, cur.OpSize()))
          .Op(Operand::MemOp(modrm.mem, 0));
      return Finish(cur, b);
    }
    case 0x8f: {  // pop r/m
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kPop).Op(RmOperand(cur, modrm, 8));
      return Finish(cur, b);
    }
    case 0x90: {
      if (cur.rex & kRexB) {
        b.M(Mnemonic::kXchg)
            .Op(Operand::RegOp(kRax, cur.OpSize()))
            .Op(Operand::RegOp(Gp(8), cur.OpSize()));
        return Finish(cur, b);
      }
      b.M(Mnemonic::kNop);  // also covers "pause" (F3 90)
      return Finish(cur, b);
    }
    case 0x91: case 0x92: case 0x93:
    case 0x94: case 0x95: case 0x96: case 0x97: {
      const std::uint8_t index = static_cast<std::uint8_t>((opcode - 0x90) | ((cur.rex & kRexB) ? 8 : 0));
      b.M(Mnemonic::kXchg)
          .Op(Operand::RegOp(kRax, cur.OpSize()))
          .Op(Operand::RegOp(Gp(index), cur.OpSize()));
      return Finish(cur, b);
    }
    case 0x98:
      b.M((cur.rex & kRexW) ? Mnemonic::kCdqe
                            : (cur.osz ? Mnemonic::kCbw : Mnemonic::kCwde));
      return Finish(cur, b);
    case 0x99:
      b.M((cur.rex & kRexW) ? Mnemonic::kCqo
                            : (cur.osz ? Mnemonic::kCwd : Mnemonic::kCdq));
      return Finish(cur, b);
    case 0xa8: {  // test al, imm8
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(Mnemonic::kTest).Op(Operand::RegOp(kRax, 1)).Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0xa9: {  // test eax/rax, immz
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int64_t imm, ReadImmZ(cur));
      b.M(Mnemonic::kTest).Op(Operand::RegOp(kRax, size)).Op(Operand::ImmOp(imm, 4));
      return Finish(cur, b);
    }
    case 0xb0: case 0xb1: case 0xb2: case 0xb3:
    case 0xb4: case 0xb5: case 0xb6: case 0xb7: {  // mov r8, imm8
      std::uint8_t index = static_cast<std::uint8_t>(opcode - 0xb0);
      const bool high8 = !cur.has_rex && index >= 4;
      if (high8) index -= 4;
      if (cur.rex & kRexB) index |= 8;
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(Mnemonic::kMov)
          .Op(Operand::RegOp(Gp(index), 1, high8))
          .Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0xb8: case 0xb9: case 0xba: case 0xbb:
    case 0xbc: case 0xbd: case 0xbe: case 0xbf: {  // mov r, imm (imm64 w/ REX.W)
      const std::uint8_t index = static_cast<std::uint8_t>((opcode - 0xb8) | ((cur.rex & kRexB) ? 8 : 0));
      const std::uint8_t size = cur.OpSize();
      std::int64_t imm;
      if (size == 8) {
        DBLL_TRY(std::int64_t v, cur.S64());
        imm = v;
      } else {
        DBLL_TRY(std::int64_t v, ReadImmZ(cur));
        imm = v;
      }
      b.M(Mnemonic::kMov)
          .Op(Operand::RegOp(Gp(index), size))
          .Op(Operand::ImmOp(imm, size));
      return Finish(cur, b);
    }
    case 0xc0: case 0xc1: {  // grp2 r/m, imm8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const Mnemonic mnemonic = kShiftGroup[modrm.reg_field & 7];
      if (mnemonic == Mnemonic::kInvalid) return cur.Err("unsupported shift group op");
      const std::uint8_t size = opcode == 0xc0 ? 1 : cur.OpSize();
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(mnemonic).Op(RmOperand(cur, modrm, size)).Op(Operand::ImmOp(imm & 0x3f, 1));
      return Finish(cur, b);
    }
    case 0xc2: {  // ret imm16
      DBLL_TRY(std::int32_t imm, cur.S16());
      b.M(Mnemonic::kRet).Op(Operand::ImmOp(imm, 2));
      return Finish(cur, b);
    }
    case 0xc3:
      b.M(Mnemonic::kRet);
      return Finish(cur, b);
    case 0xc6: {  // mov r/m8, imm8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (modrm.reg_field & 7) return cur.Err("unsupported C6 group op");
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(Mnemonic::kMov).Op(RmOperand(cur, modrm, 1)).Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0xc7: {  // mov r/m, immz
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (modrm.reg_field & 7) return cur.Err("unsupported C7 group op");
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int64_t imm, ReadImmZ(cur));
      b.M(Mnemonic::kMov).Op(RmOperand(cur, modrm, size)).Op(Operand::ImmOp(imm, 4));
      return Finish(cur, b);
    }
    case 0xc9:
      b.M(Mnemonic::kLeave);
      return Finish(cur, b);
    case 0xd0: case 0xd1: {  // grp2 r/m, 1
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const Mnemonic mnemonic = kShiftGroup[modrm.reg_field & 7];
      if (mnemonic == Mnemonic::kInvalid) return cur.Err("unsupported shift group op");
      const std::uint8_t size = opcode == 0xd0 ? 1 : cur.OpSize();
      b.M(mnemonic).Op(RmOperand(cur, modrm, size)).Op(Operand::ImmOp(1, 1));
      return Finish(cur, b);
    }
    case 0xd2: case 0xd3: {  // grp2 r/m, cl
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const Mnemonic mnemonic = kShiftGroup[modrm.reg_field & 7];
      if (mnemonic == Mnemonic::kInvalid) return cur.Err("unsupported shift group op");
      const std::uint8_t size = opcode == 0xd2 ? 1 : cur.OpSize();
      b.M(mnemonic).Op(RmOperand(cur, modrm, size)).Op(Operand::RegOp(kRcx, 1));
      return Finish(cur, b);
    }
    case 0xe8: {  // call rel32
      DBLL_TRY(std::int32_t rel, cur.S32());
      b.M(Mnemonic::kCall);
      return FinishBranch(cur, b, rel);
    }
    case 0xe9: {  // jmp rel32
      DBLL_TRY(std::int32_t rel, cur.S32());
      b.M(Mnemonic::kJmp);
      return FinishBranch(cur, b, rel);
    }
    case 0xeb: {  // jmp rel8
      DBLL_TRY(std::int32_t rel, cur.S8());
      b.M(Mnemonic::kJmp);
      return FinishBranch(cur, b, rel);
    }
    case 0xcc:
      b.M(Mnemonic::kInt3);
      return Finish(cur, b);
    case 0xf8:
      b.M(Mnemonic::kClc);
      return Finish(cur, b);
    case 0xf9:
      b.M(Mnemonic::kStc);
      return Finish(cur, b);
    case 0xf6: case 0xf7: {  // grp3
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = opcode == 0xf6 ? 1 : cur.OpSize();
      switch (modrm.reg_field & 7) {
        case 0: case 1: {  // test r/m, imm
          std::int64_t imm;
          if (size == 1) {
            DBLL_TRY(std::int32_t v, cur.S8());
            imm = v;
          } else {
            DBLL_TRY(std::int64_t v, ReadImmZ(cur));
            imm = v;
          }
          b.M(Mnemonic::kTest).Op(RmOperand(cur, modrm, size)).Op(Operand::ImmOp(imm, 4));
          return Finish(cur, b);
        }
        case 2:
          b.M(Mnemonic::kNot).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 3:
          b.M(Mnemonic::kNeg).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 4:
          b.M(Mnemonic::kMul).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 5:
          b.M(Mnemonic::kImul).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 6:
          b.M(Mnemonic::kDiv).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 7:
          b.M(Mnemonic::kIdiv).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
      }
      return cur.Err("unsupported F6/F7 group op");
    }
    case 0xfe: {  // grp4: inc/dec r/m8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      switch (modrm.reg_field & 7) {
        case 0:
          b.M(Mnemonic::kInc).Op(RmOperand(cur, modrm, 1));
          return Finish(cur, b);
        case 1:
          b.M(Mnemonic::kDec).Op(RmOperand(cur, modrm, 1));
          return Finish(cur, b);
      }
      return cur.Err("unsupported FE group op");
    }
    case 0xff: {  // grp5
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      switch (modrm.reg_field & 7) {
        case 0:
          b.M(Mnemonic::kInc).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 1:
          b.M(Mnemonic::kDec).Op(RmOperand(cur, modrm, size));
          return Finish(cur, b);
        case 2:  // call r/m64 (indirect)
          b.M(Mnemonic::kCall).Op(RmOperand(cur, modrm, 8));
          return Finish(cur, b);
        case 4:  // jmp r/m64 (indirect)
          b.M(Mnemonic::kJmp).Op(RmOperand(cur, modrm, 8));
          return Finish(cur, b);
        case 6:
          b.M(Mnemonic::kPush).Op(RmOperand(cur, modrm, 8));
          return Finish(cur, b);
      }
      return cur.Err("unsupported FF group op");
    }
    default:
      return cur.Err("unsupported one-byte opcode");
  }
}

Expected<Instr> DecodeTwoByte(Cursor& cur, Builder& b) {
  DBLL_TRY(std::uint8_t opcode, cur.U8());

  // Jcc rel32 / SETcc / CMOVcc blocks.
  if (opcode >= 0x80 && opcode <= 0x8f) {
    DBLL_TRY(std::int32_t rel, cur.S32());
    b.M(Mnemonic::kJcc).C(static_cast<Cond>(opcode & 0xf));
    return FinishBranch(cur, b, rel);
  }
  if (opcode >= 0x90 && opcode <= 0x9f) {
    DBLL_TRY(ModRm modrm, ParseModRm(cur));
    b.M(Mnemonic::kSetcc).C(static_cast<Cond>(opcode & 0xf)).Op(RmOperand(cur, modrm, 1));
    return Finish(cur, b);
  }
  if (opcode >= 0x40 && opcode <= 0x4f) {
    DBLL_TRY(ModRm modrm, ParseModRm(cur));
    const std::uint8_t size = cur.OpSize();
    b.M(Mnemonic::kCmovcc)
        .C(static_cast<Cond>(opcode & 0xf))
        .Op(RegOperand(cur, modrm, size))
        .Op(RmOperand(cur, modrm, size));
    return Finish(cur, b);
  }
  if (opcode >= 0xc8 && opcode <= 0xcf) {
    const std::uint8_t index = static_cast<std::uint8_t>((opcode - 0xc8) | ((cur.rex & kRexB) ? 8 : 0));
    b.M(Mnemonic::kBswap).Op(Operand::RegOp(Gp(index), cur.OpSize()));
    return Finish(cur, b);
  }

  // Helper lambdas for the common SSE operand shapes.
  auto sse_rr = [&](Mnemonic mnemonic, std::uint8_t mem_size) -> Expected<Instr> {
    if (mnemonic == Mnemonic::kInvalid) return cur.Err("unsupported SSE variant");
    DBLL_TRY(ModRm modrm, ParseModRm(cur));
    b.M(mnemonic)
        .Op(RegOperand(cur, modrm, 16, RegClass::kVec))
        .Op(RmOperand(cur, modrm, mem_size, RegClass::kVec));
    return Finish(cur, b);
  };
  auto sse_store = [&](Mnemonic mnemonic, std::uint8_t mem_size) -> Expected<Instr> {
    if (mnemonic == Mnemonic::kInvalid) return cur.Err("unsupported SSE variant");
    DBLL_TRY(ModRm modrm, ParseModRm(cur));
    b.M(mnemonic)
        .Op(RmOperand(cur, modrm, mem_size, RegClass::kVec))
        .Op(RegOperand(cur, modrm, 16, RegClass::kVec));
    return Finish(cur, b);
  };
  const Mnemonic kInv = Mnemonic::kInvalid;

  switch (opcode) {
    case 0x05:
      return cur.Err("syscall is not supported");
    case 0x31:
      b.M(Mnemonic::kRdtsc);
      return Finish(cur, b);
    case 0xa2:
      b.M(Mnemonic::kCpuid);
      return Finish(cur, b);
    case 0xb0: case 0xb1: {  // cmpxchg r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = opcode == 0xb0 ? 1 : cur.OpSize();
      b.M(Mnemonic::kCmpxchg)
          .Op(RmOperand(cur, modrm, size))
          .Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xc0: case 0xc1: {  // xadd r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = opcode == 0xc0 ? 1 : cur.OpSize();
      b.M(Mnemonic::kXadd)
          .Op(RmOperand(cur, modrm, size))
          .Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0x0b:
      b.M(Mnemonic::kUd2);
      return Finish(cur, b);
    case 0xa4: case 0xa5: case 0xac: case 0xad: {  // shld/shrd
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      const Mnemonic m =
          opcode < 0xac ? Mnemonic::kShld : Mnemonic::kShrd;
      b.M(m).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      if (opcode == 0xa4 || opcode == 0xac) {
        DBLL_TRY(std::int32_t imm, cur.S8());
        b.Op(Operand::ImmOp(imm & 0x3f, 1));
      } else {
        b.Op(Operand::RegOp(kRcx, 1));
      }
      return Finish(cur, b);
    }
    case 0xab: {  // bts r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kBts).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xb3: {  // btr r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kBtr).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xbb: {  // btc r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kBtc).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xae: {  // fences (mod=3 group)
      DBLL_TRY(std::uint8_t modrm, cur.U8());
      if (modrm == 0xe8) { b.M(Mnemonic::kLfence); return Finish(cur, b); }
      if (modrm == 0xf0) { b.M(Mnemonic::kMfence); return Finish(cur, b); }
      if (modrm == 0xf8) { b.M(Mnemonic::kSfence); return Finish(cur, b); }
      return cur.Err("unsupported 0FAE group op");
    }
    case 0x50: {  // movmskps/movmskpd r32, xmm
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (modrm.is_mem) return cur.Err("movmsk requires a register source");
      b.M(cur.osz ? Mnemonic::kMovmskpd : Mnemonic::kMovmskps)
          .Op(RegOperand(cur, modrm, 4, RegClass::kGp))
          .Op(Operand::RegOp(Xmm(modrm.rm_field), 16));
      return Finish(cur, b);
    }
    case 0xd7: {  // pmovmskb r32, xmm
      if (!cur.osz) return cur.Err("MMX is not supported");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (modrm.is_mem) return cur.Err("pmovmskb requires a register source");
      b.M(Mnemonic::kPmovmskb)
          .Op(RegOperand(cur, modrm, 4, RegClass::kGp))
          .Op(Operand::RegOp(Xmm(modrm.rm_field), 16));
      return Finish(cur, b);
    }
    case 0xc2: {  // cmpps/cmppd/cmpss/cmpsd xmm, xmm/m, imm8
      const Mnemonic m = SsePick(cur, Mnemonic::kCmpps, Mnemonic::kCmppd,
                                 Mnemonic::kCmpss, Mnemonic::kCmpsd);
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(m)
          .Op(RegOperand(cur, modrm, 16, RegClass::kVec))
          .Op(RmOperand(cur, modrm, cur.rep ? 4 : (cur.repne ? 8 : 16),
                        RegClass::kVec))
          .Op(Operand::ImmOp(imm & 7, 1));
      return Finish(cur, b);
    }
    case 0x2d: {  // cvtss2si / cvtsd2si (current rounding mode)
      const Mnemonic m = cur.rep ? Mnemonic::kCvtss2si
                                 : (cur.repne ? Mnemonic::kCvtsd2si
                                              : Mnemonic::kInvalid);
      if (m == Mnemonic::kInvalid) return cur.Err("unsupported 0F2D variant");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = (cur.rex & kRexW) ? 8 : 4;
      b.M(m)
          .Op(RegOperand(cur, modrm, size, RegClass::kGp))
          .Op(RmOperand(cur, modrm, cur.rep ? 4 : 8, RegClass::kVec));
      return Finish(cur, b);
    }
    case 0x71: case 0x72: case 0x73: {  // vector shift immediate groups
      if (!cur.osz) return cur.Err("MMX is not supported");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (modrm.is_mem) return cur.Err("shift group requires a register");
      DBLL_TRY(std::int32_t imm, cur.S8());
      Mnemonic m = Mnemonic::kInvalid;
      const std::uint8_t group = modrm.reg_field & 7;
      if (opcode == 0x71) {
        if (group == 2) m = Mnemonic::kPsrlw;
        if (group == 4) m = Mnemonic::kPsraw;
        if (group == 6) m = Mnemonic::kPsllw;
      } else if (opcode == 0x72) {
        if (group == 2) m = Mnemonic::kPsrld;
        if (group == 4) m = Mnemonic::kPsrad;
        if (group == 6) m = Mnemonic::kPslld;
      } else {
        if (group == 2) m = Mnemonic::kPsrlq;
        if (group == 3) m = Mnemonic::kPsrldq;
        if (group == 6) m = Mnemonic::kPsllq;
        if (group == 7) m = Mnemonic::kPslldq;
      }
      if (m == Mnemonic::kInvalid) return cur.Err("unsupported shift group");
      b.M(m)
          .Op(Operand::RegOp(Xmm(modrm.rm_field), 16))
          .Op(Operand::ImmOp(imm & 0xff, 1));
      return Finish(cur, b);
    }
    case 0x10: {  // movups/movupd/movss/movsd xmm, xmm/m
      const Mnemonic m = SsePick(cur, Mnemonic::kMovups, Mnemonic::kMovupd,
                                 Mnemonic::kMovss, Mnemonic::kMovsdX);
      const std::uint8_t mem_size = cur.rep ? 4 : (cur.repne ? 8 : 16);
      return sse_rr(m, mem_size);
    }
    case 0x11: {  // store forms
      const Mnemonic m = SsePick(cur, Mnemonic::kMovups, Mnemonic::kMovupd,
                                 Mnemonic::kMovss, Mnemonic::kMovsdX);
      const std::uint8_t mem_size = cur.rep ? 4 : (cur.repne ? 8 : 16);
      return sse_store(m, mem_size);
    }
    case 0x12: {  // movlps/movlpd xmm, m64; movhlps xmm, xmm
      DBLL_TRY(ModRm peek, ParseModRm(cur));
      if (!peek.is_mem && !cur.osz && !cur.rep && !cur.repne) {
        b.M(Mnemonic::kMovhlps)
            .Op(Operand::RegOp(Xmm(peek.reg_field), 16))
            .Op(Operand::RegOp(Xmm(peek.rm_field), 16));
        return Finish(cur, b);
      }
      if (!peek.is_mem) return cur.Err("unsupported 0F12 form");
      b.M(cur.osz ? Mnemonic::kMovlpd : Mnemonic::kMovlps)
          .Op(Operand::RegOp(Xmm(peek.reg_field), 16))
          .Op(Operand::MemOp(peek.mem, 8));
      return Finish(cur, b);
    }
    case 0x13: {  // movlps/movlpd m64, xmm
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (!modrm.is_mem) return cur.Err("unsupported 0F13 form");
      b.M(cur.osz ? Mnemonic::kMovlpd : Mnemonic::kMovlps)
          .Op(Operand::MemOp(modrm.mem, 8))
          .Op(Operand::RegOp(Xmm(modrm.reg_field), 16));
      return Finish(cur, b);
    }
    case 0x14:
      return sse_rr(cur.osz ? Mnemonic::kUnpcklpd : Mnemonic::kUnpcklps, 16);
    case 0x15:
      return sse_rr(cur.osz ? Mnemonic::kUnpckhpd : Mnemonic::kUnpckhps, 16);
    case 0x16: {  // movhps/movhpd xmm, m64; movlhps xmm, xmm
      DBLL_TRY(ModRm peek, ParseModRm(cur));
      if (!peek.is_mem && !cur.osz && !cur.rep && !cur.repne) {
        b.M(Mnemonic::kMovlhps)
            .Op(Operand::RegOp(Xmm(peek.reg_field), 16))
            .Op(Operand::RegOp(Xmm(peek.rm_field), 16));
        return Finish(cur, b);
      }
      if (!peek.is_mem) return cur.Err("unsupported 0F16 form");
      b.M(cur.osz ? Mnemonic::kMovhpd : Mnemonic::kMovhps)
          .Op(Operand::RegOp(Xmm(peek.reg_field), 16))
          .Op(Operand::MemOp(peek.mem, 8));
      return Finish(cur, b);
    }
    case 0x17: {  // movhps/movhpd m64, xmm
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      if (!modrm.is_mem) return cur.Err("unsupported 0F17 form");
      b.M(cur.osz ? Mnemonic::kMovhpd : Mnemonic::kMovhps)
          .Op(Operand::MemOp(modrm.mem, 8))
          .Op(Operand::RegOp(Xmm(modrm.reg_field), 16));
      return Finish(cur, b);
    }
    case 0x18: case 0x19: case 0x1a: case 0x1b:
    case 0x1c: case 0x1d: {  // prefetch / hint nops with modrm
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      (void)modrm;
      b.M(Mnemonic::kNop);
      return Finish(cur, b);
    }
    case 0x1e: {  // endbr64 (F3 0F 1E FA) and related hint forms
      DBLL_TRY(std::uint8_t next, cur.U8());
      if (cur.rep && next == 0xfa) {
        b.M(Mnemonic::kEndbr64);
        return Finish(cur, b);
      }
      return cur.Err("unsupported 0F1E form");
    }
    case 0x1f: {  // multi-byte nop
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      (void)modrm;
      b.M(Mnemonic::kNop);
      return Finish(cur, b);
    }
    case 0x28:  // movaps/movapd xmm, xmm/m
      return sse_rr(cur.osz ? Mnemonic::kMovapd : Mnemonic::kMovaps, 16);
    case 0x29:
      return sse_store(cur.osz ? Mnemonic::kMovapd : Mnemonic::kMovaps, 16);
    case 0x2a: {  // cvtsi2ss/sd xmm, r/m32|64
      const Mnemonic m = cur.rep ? Mnemonic::kCvtsi2ss
                                 : (cur.repne ? Mnemonic::kCvtsi2sd : kInv);
      if (m == kInv) return cur.Err("unsupported 0F2A variant");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = (cur.rex & kRexW) ? 8 : 4;
      b.M(m)
          .Op(RegOperand(cur, modrm, 16, RegClass::kVec))
          .Op(RmOperand(cur, modrm, size, RegClass::kGp));
      return Finish(cur, b);
    }
    case 0x2c: {  // cvttss2si/cvttsd2si r, xmm/m
      const Mnemonic m = cur.rep ? Mnemonic::kCvttss2si
                                 : (cur.repne ? Mnemonic::kCvttsd2si : kInv);
      if (m == kInv) return cur.Err("unsupported 0F2C variant");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = (cur.rex & kRexW) ? 8 : 4;
      b.M(m)
          .Op(RegOperand(cur, modrm, size, RegClass::kGp))
          .Op(RmOperand(cur, modrm, cur.rep ? 4 : 8, RegClass::kVec));
      return Finish(cur, b);
    }
    case 0x2e:
      return sse_rr(cur.osz ? Mnemonic::kUcomisd : Mnemonic::kUcomiss,
                    cur.osz ? 8 : 4);
    case 0x2f:
      return sse_rr(cur.osz ? Mnemonic::kComisd : Mnemonic::kComiss,
                    cur.osz ? 8 : 4);
    case 0x51: {
      const Mnemonic m = SsePick(cur, Mnemonic::kSqrtps, Mnemonic::kSqrtpd,
                                 Mnemonic::kSqrtss, Mnemonic::kSqrtsd);
      return sse_rr(m, cur.rep ? 4 : (cur.repne ? 8 : 16));
    }
    case 0x54:
      return sse_rr(cur.osz ? Mnemonic::kAndpd : Mnemonic::kAndps, 16);
    case 0x55:
      return sse_rr(cur.osz ? Mnemonic::kAndnpd : Mnemonic::kAndnps, 16);
    case 0x56:
      return sse_rr(cur.osz ? Mnemonic::kOrpd : Mnemonic::kOrps, 16);
    case 0x57:
      return sse_rr(cur.osz ? Mnemonic::kXorpd : Mnemonic::kXorps, 16);
    case 0x58: {
      const Mnemonic m = SsePick(cur, Mnemonic::kAddps, Mnemonic::kAddpd,
                                 Mnemonic::kAddss, Mnemonic::kAddsd);
      return sse_rr(m, cur.rep ? 4 : (cur.repne ? 8 : 16));
    }
    case 0x59: {
      const Mnemonic m = SsePick(cur, Mnemonic::kMulps, Mnemonic::kMulpd,
                                 Mnemonic::kMulss, Mnemonic::kMulsd);
      return sse_rr(m, cur.rep ? 4 : (cur.repne ? 8 : 16));
    }
    case 0x5a: {  // cvt between float widths
      const Mnemonic m = SsePick(cur, Mnemonic::kCvtps2pd, Mnemonic::kCvtpd2ps,
                                 Mnemonic::kCvtss2sd, Mnemonic::kCvtsd2ss);
      // Memory widths: cvtps2pd m64, cvtpd2ps m128, cvtss2sd m32, cvtsd2ss m64.
      return sse_rr(m, cur.rep ? 4 : (cur.repne ? 8 : (cur.osz ? 16 : 8)));
    }
    case 0x5b: {
      if (cur.osz || cur.rep || cur.repne) return cur.Err("unsupported 0F5B variant");
      return sse_rr(Mnemonic::kCvtdq2ps, 16);
    }
    case 0x5c: {
      const Mnemonic m = SsePick(cur, Mnemonic::kSubps, Mnemonic::kSubpd,
                                 Mnemonic::kSubss, Mnemonic::kSubsd);
      return sse_rr(m, cur.rep ? 4 : (cur.repne ? 8 : 16));
    }
    case 0x5d: {
      const Mnemonic m = SsePick(cur, kInv, kInv, Mnemonic::kMinss, Mnemonic::kMinsd);
      return sse_rr(m, cur.rep ? 4 : 8);
    }
    case 0x5e: {
      const Mnemonic m = SsePick(cur, Mnemonic::kDivps, Mnemonic::kDivpd,
                                 Mnemonic::kDivss, Mnemonic::kDivsd);
      return sse_rr(m, cur.rep ? 4 : (cur.repne ? 8 : 16));
    }
    case 0x5f: {
      const Mnemonic m = SsePick(cur, kInv, kInv, Mnemonic::kMaxss, Mnemonic::kMaxsd);
      return sse_rr(m, cur.rep ? 4 : 8);
    }
    case 0x60:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPunpcklbw, 16);
    case 0x61:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPunpcklwd, 16);
    case 0x62:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPunpckldq, 16);
    case 0x64:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPcmpgtb, 16);
    case 0x65:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPcmpgtw, 16);
    case 0x66:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPcmpgtd, 16);
    case 0x68:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPunpckhbw, 16);
    case 0x69:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPunpckhwd, 16);
    case 0x6a:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPunpckhdq, 16);
    case 0x74:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPcmpeqb, 16);
    case 0x75:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPcmpeqw, 16);
    case 0x76:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPcmpeqd, 16);
    case 0x6c:
      if (!cur.osz) return cur.Err("unsupported 0F6C variant");
      return sse_rr(Mnemonic::kPunpcklqdq, 16);
    case 0x6d:
      if (!cur.osz) return cur.Err("unsupported 0F6D variant");
      return sse_rr(Mnemonic::kPunpckhqdq, 16);
    case 0x6e: {  // movd/movq xmm, r/m
      if (!cur.osz) return cur.Err("unsupported 0F6E variant");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = (cur.rex & kRexW) ? 8 : 4;
      b.M(size == 8 ? Mnemonic::kMovq : Mnemonic::kMovd)
          .Op(RegOperand(cur, modrm, 16, RegClass::kVec))
          .Op(RmOperand(cur, modrm, size, RegClass::kGp));
      return Finish(cur, b);
    }
    case 0x6f:  // movdqa (66) / movdqu (F3) xmm, xmm/m128
      if (cur.osz) return sse_rr(Mnemonic::kMovdqa, 16);
      if (cur.rep) return sse_rr(Mnemonic::kMovdqu, 16);
      return cur.Err("MMX moves are not supported");
    case 0x70: {  // pshufd xmm, xmm/m128, imm8
      if (!cur.osz) return cur.Err("unsupported 0F70 variant");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(Mnemonic::kPshufd)
          .Op(RegOperand(cur, modrm, 16, RegClass::kVec))
          .Op(RmOperand(cur, modrm, 16, RegClass::kVec))
          .Op(Operand::ImmOp(imm & 0xff, 1));
      return Finish(cur, b);
    }
    case 0x7e: {
      if (cur.rep) {  // movq xmm, xmm/m64 (zero upper)
        return sse_rr(Mnemonic::kMovq, 8);
      }
      if (cur.osz) {  // movd/movq r/m, xmm
        DBLL_TRY(ModRm modrm, ParseModRm(cur));
        const std::uint8_t size = (cur.rex & kRexW) ? 8 : 4;
        b.M(size == 8 ? Mnemonic::kMovq : Mnemonic::kMovd)
            .Op(RmOperand(cur, modrm, size, RegClass::kGp))
            .Op(RegOperand(cur, modrm, 16, RegClass::kVec));
        return Finish(cur, b);
      }
      return cur.Err("MMX moves are not supported");
    }
    case 0x7f:  // movdqa/movdqu store
      if (cur.osz) return sse_store(Mnemonic::kMovdqa, 16);
      if (cur.rep) return sse_store(Mnemonic::kMovdqu, 16);
      return cur.Err("MMX moves are not supported");
    case 0xa3: {  // bt r/m, r
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kBt).Op(RmOperand(cur, modrm, size)).Op(RegOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xaf: {  // imul r, r/m
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kImul).Op(RegOperand(cur, modrm, size)).Op(RmOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xb6: case 0xb7: {  // movzx r, r/m8|16
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kMovzx)
          .Op(RegOperand(cur, modrm, cur.OpSize()))
          .Op(RmOperand(cur, modrm, opcode == 0xb6 ? 1 : 2));
      return Finish(cur, b);
    }
    case 0xb8: {  // popcnt (F3)
      if (!cur.rep) return cur.Err("unsupported 0FB8 variant");
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kPopcnt).Op(RegOperand(cur, modrm, size)).Op(RmOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xba: {  // grp8: bt/bts/btr/btc r/m, imm8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      Mnemonic m = Mnemonic::kInvalid;
      switch (modrm.reg_field & 7) {
        case 4: m = Mnemonic::kBt; break;
        case 5: m = Mnemonic::kBts; break;
        case 6: m = Mnemonic::kBtr; break;
        case 7: m = Mnemonic::kBtc; break;
        default: return cur.Err("unsupported 0FBA group op");
      }
      const std::uint8_t size = cur.OpSize();
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(m).Op(RmOperand(cur, modrm, size)).Op(Operand::ImmOp(imm, 1));
      return Finish(cur, b);
    }
    case 0xbc: {  // bsf / tzcnt (F3)
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(cur.rep ? Mnemonic::kTzcnt : Mnemonic::kBsf)
          .Op(RegOperand(cur, modrm, size))
          .Op(RmOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xbd: {  // bsr
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      const std::uint8_t size = cur.OpSize();
      b.M(Mnemonic::kBsr).Op(RegOperand(cur, modrm, size)).Op(RmOperand(cur, modrm, size));
      return Finish(cur, b);
    }
    case 0xbe: case 0xbf: {  // movsx r, r/m8|16
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      b.M(Mnemonic::kMovsx)
          .Op(RegOperand(cur, modrm, cur.OpSize()))
          .Op(RmOperand(cur, modrm, opcode == 0xbe ? 1 : 2));
      return Finish(cur, b);
    }
    case 0xc6: {  // shufps/shufpd xmm, xmm/m, imm8
      DBLL_TRY(ModRm modrm, ParseModRm(cur));
      DBLL_TRY(std::int32_t imm, cur.S8());
      b.M(cur.osz ? Mnemonic::kShufpd : Mnemonic::kShufps)
          .Op(RegOperand(cur, modrm, 16, RegClass::kVec))
          .Op(RmOperand(cur, modrm, 16, RegClass::kVec))
          .Op(Operand::ImmOp(imm & 0xff, 1));
      return Finish(cur, b);
    }
    case 0xd1:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsrlw, 16);
    case 0xd2:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsrld, 16);
    case 0xd3:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsrlq, 16);
    case 0xd5:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPmullw, 16);
    case 0xda:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPminub, 16);
    case 0xde:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPmaxub, 16);
    case 0xe0:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPavgb, 16);
    case 0xe1:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsraw, 16);
    case 0xe2:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsrad, 16);
    case 0xe3:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPavgw, 16);
    case 0xea:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPminsw, 16);
    case 0xee:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPmaxsw, 16);
    case 0xf1:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsllw, 16);
    case 0xf2:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPslld, 16);
    case 0xf3:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsllq, 16);
    case 0xf4:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPmuludq, 16);
    case 0xd4:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPaddq, 16);
    case 0xd6: {  // movq xmm/m64, xmm (store)
      if (!cur.osz) return cur.Err("unsupported 0FD6 variant");
      return sse_store(Mnemonic::kMovq, 8);
    }
    case 0xdb:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPand, 16);
    case 0xdf:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPandn, 16);
    case 0xe6:
      if (cur.rep) return sse_rr(Mnemonic::kCvtdq2pd, 8);
      return cur.Err("unsupported 0FE6 variant");
    case 0xeb:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPor, 16);
    case 0xef:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPxor, 16);
    case 0xf8:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsubb, 16);
    case 0xf9:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsubw, 16);
    case 0xfa:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsubd, 16);
    case 0xfb:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPsubq, 16);
    case 0xfc:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPaddb, 16);
    case 0xfd:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPaddw, 16);
    case 0xfe:
      if (!cur.osz) return cur.Err("MMX is not supported");
      return sse_rr(Mnemonic::kPaddd, 16);
    default:
      return cur.Err("unsupported two-byte opcode");
  }
}

}  // namespace

Expected<Instr> Decoder::DecodeOne(std::span<const std::uint8_t> code,
                                   std::uint64_t address) {
  DBLL_FAULT_POINT("decode.insn");
  Cursor cur{code.data(), code.size(), 0, address};

  // Legacy prefixes, then REX.
  for (;;) {
    DBLL_TRY(std::uint8_t byte, cur.Peek());
    switch (byte) {
      case 0x66: cur.osz = true; break;
      case 0xf2: cur.repne = true; break;
      case 0xf3: cur.rep = true; break;
      case 0x64: cur.segment = Segment::kFs; break;
      case 0x65: cur.segment = Segment::kGs; break;
      case 0x2e: case 0x3e: case 0x26: case 0x36: break;  // branch hints: ignore
      case 0x67:
        return cur.Err("address-size override is not supported");
      case 0xf0:
        return cur.Err("lock prefix is not supported");
      default:
        goto prefixes_done;
    }
    ++cur.pos;
  }
prefixes_done:

  {
    DBLL_TRY(std::uint8_t byte, cur.Peek());
    if ((byte & 0xf0) == 0x40) {
      cur.has_rex = true;
      cur.rex = byte & 0x0f;
      ++cur.pos;
    }
  }

  DBLL_TRY(std::uint8_t opcode, cur.U8());
  Builder b(address);
  if (opcode == 0x0f) {
    DBLL_TRY(std::uint8_t next, cur.Peek());
    if (next == 0x38 || next == 0x3a) {
      return cur.Err("three-byte opcode maps are not supported");
    }
    return DecodeTwoByte(cur, b);
  }
  return DecodeOneByte(cur, b, opcode);
}

Expected<Instr> Decoder::DecodeAt(std::uint64_t address, std::size_t max_length) {
  const auto* ptr = reinterpret_cast<const std::uint8_t*>(address);
  return DecodeOne({ptr, max_length}, address);
}

}  // namespace dbll::x86
