#include "dbll/x86/insn.h"

namespace dbll::x86 {

const char* MnemonicName(Mnemonic mnemonic) noexcept {
  switch (mnemonic) {
#define DBLL_X86_NAME(id, name) \
  case Mnemonic::id:            \
    return name;
    DBLL_X86_MNEMONIC_LIST(DBLL_X86_NAME)
#undef DBLL_X86_NAME
    default:
      return "(unknown)";
  }
}

const char* CondName(Cond cond) noexcept {
  switch (cond) {
    case Cond::kO: return "o";
    case Cond::kNo: return "no";
    case Cond::kB: return "b";
    case Cond::kAe: return "ae";
    case Cond::kE: return "e";
    case Cond::kNe: return "ne";
    case Cond::kBe: return "be";
    case Cond::kA: return "a";
    case Cond::kS: return "s";
    case Cond::kNs: return "ns";
    case Cond::kP: return "p";
    case Cond::kNp: return "np";
    case Cond::kL: return "l";
    case Cond::kGe: return "ge";
    case Cond::kLe: return "le";
    case Cond::kG: return "g";
  }
  return "?";
}

std::uint8_t CondFlagUses(Cond cond) noexcept {
  switch (cond) {
    case Cond::kO:
    case Cond::kNo:
      return kFlagO;
    case Cond::kB:
    case Cond::kAe:
      return kFlagC;
    case Cond::kE:
    case Cond::kNe:
      return kFlagZ;
    case Cond::kBe:
    case Cond::kA:
      return kFlagC | kFlagZ;
    case Cond::kS:
    case Cond::kNs:
      return kFlagS;
    case Cond::kP:
    case Cond::kNp:
      return kFlagP;
    case Cond::kL:
    case Cond::kGe:
      return kFlagS | kFlagO;
    case Cond::kLe:
    case Cond::kG:
      return kFlagS | kFlagO | kFlagZ;
  }
  return kFlagNone;
}

FlagEffects FlagEffectsOf(Mnemonic mnemonic) noexcept {
  using M = Mnemonic;
  switch (mnemonic) {
    // Full arithmetic: ZF SF CF OF PF AF all defined.
    case M::kAdd:
    case M::kSub:
    case M::kCmp:
    case M::kNeg:
      return {kFlagAll, kFlagNone, false};
    case M::kAdc:
    case M::kSbb:
      return {kFlagAll, kFlagNone, true};
    // Logic ops: CF=OF=0, ZF/SF/PF defined, AF undefined.
    case M::kAnd:
    case M::kOr:
    case M::kXor:
    case M::kTest:
      return {kFlagZ | kFlagS | kFlagC | kFlagO | kFlagP, kFlagA, false};
    // inc/dec preserve CF.
    case M::kInc:
    case M::kDec:
      return {kFlagZ | kFlagS | kFlagO | kFlagP | kFlagA, kFlagNone, false};
    // Shifts: flags written (CF from last bit shifted out); OF defined only
    // for 1-bit shifts, AF undefined. We conservatively mark O/A undefined.
    case M::kShl:
    case M::kShr:
    case M::kSar:
      return {kFlagZ | kFlagS | kFlagC | kFlagP, kFlagO | kFlagA, false};
    case M::kRol:
    case M::kRor:
      return {kFlagC, kFlagO, false};
    // Multiplies: CF/OF defined, rest undefined.
    case M::kImul:
    case M::kMul:
      return {kFlagC | kFlagO, kFlagZ | kFlagS | kFlagP | kFlagA, false};
    // Divides leave all flags undefined.
    case M::kIdiv:
    case M::kDiv:
      return {kFlagNone, kFlagAll, false};
    case M::kBt:
    case M::kBts:
    case M::kBtr:
    case M::kBtc:
      return {kFlagC, kFlagO | kFlagS | kFlagP | kFlagA, false};
    case M::kShld:
    case M::kShrd:
      return {kFlagZ | kFlagS | kFlagC | kFlagP, kFlagO | kFlagA, false};
    case M::kStc:
    case M::kClc:
      return {kFlagC, kFlagNone, false};
    case M::kBsf:
    case M::kBsr:
      return {kFlagZ, kFlagC | kFlagO | kFlagS | kFlagP | kFlagA, false};
    case M::kTzcnt:
    case M::kPopcnt:
      return {kFlagZ | kFlagC, kFlagO | kFlagS | kFlagP | kFlagA, false};
    // Ordered/unordered float compares set ZF/PF/CF, clear OF/SF/AF.
    case M::kUcomiss:
    case M::kUcomisd:
    case M::kComiss:
    case M::kComisd:
      return {kFlagAll, kFlagNone, false};
    default:
      return {kFlagNone, kFlagNone, false};
  }
}

}  // namespace dbll::x86
