#include "dbll/x86/encoder.h"

#include <cstring>

#include "dbll/support/fault.h"

namespace dbll::x86 {
namespace {

constexpr std::uint8_t kRexW = 0x8;
constexpr std::uint8_t kRexR = 0x4;
constexpr std::uint8_t kRexX = 0x2;
constexpr std::uint8_t kRexB = 0x1;

/// Staged encoding of one instruction. Bytes are accumulated into fixed
/// slots (prefixes, REX, opcodes, ModRM/SIB, disp, imm) and assembled by
/// Finish(), which also patches RIP-relative displacements.
class Enc {
 public:
  explicit Enc(const Instr& instr) : instr_(instr) {}

  Enc& Prefix(std::uint8_t byte) {
    prefixes_[prefix_count_++] = byte;
    return *this;
  }
  Enc& P66() { return Prefix(0x66); }
  Enc& PF2() { return Prefix(0xf2); }
  Enc& PF3() { return Prefix(0xf3); }

  Enc& RexW() {
    rex_ |= kRexW;
    return *this;
  }
  /// Applies the 0x66 prefix / REX.W bit for a GP operand size.
  Enc& GpSize(std::uint8_t size) {
    if (size == 2) P66();
    if (size == 8) RexW();
    return *this;
  }

  Enc& Op(std::uint8_t byte) {
    opcodes_[opcode_count_++] = byte;
    return *this;
  }
  Enc& Op0F(std::uint8_t byte) {
    Op(0x0f);
    return Op(byte);
  }

  /// Registers a plain register in the ModRM reg field (or opcode +r slot).
  Enc& RegField(std::uint8_t index) {
    if (index & 8) rex_ |= kRexR;
    reg_field_ = index & 7;
    return *this;
  }

  /// Notes the use of a byte-width GP register so REX presence rules can be
  /// enforced (spl..dil require REX; ah..bh forbid it).
  Enc& ByteReg(const Operand& op) {
    if (!op.is_reg() || op.reg.cls != RegClass::kGp || op.size != 1) return *this;
    if (op.high8) {
      forbid_rex_ = true;
    } else if (op.reg.index >= 4 && op.reg.index <= 7) {
      need_rex_ = true;
    }
    return *this;
  }

  /// Encodes the r/m slot from a register operand.
  Enc& RmReg(std::uint8_t index) {
    if (index & 8) rex_ |= kRexB;
    modrm_ = static_cast<std::uint8_t>(0xc0 | (reg_field_ << 3) | (index & 7));
    has_modrm_ = true;
    return *this;
  }

  /// Encodes the r/m slot from a memory operand.
  Status RmMem(const MemOperand& mem) {
    has_modrm_ = true;
    if (mem.segment == Segment::kFs) Prefix(0x64);
    if (mem.segment == Segment::kGs) Prefix(0x65);

    if (mem.base == kRip) {
      // mod=00 rm=101: RIP-relative disp32, patched in Finish().
      modrm_ = static_cast<std::uint8_t>((reg_field_ << 3) | 5);
      disp_size_ = 4;
      rip_relative_ = true;
      return Status::Ok();
    }

    const bool has_base = mem.base.valid();
    const bool has_index = mem.index.valid();
    if (has_index && mem.index == kRsp) {
      return Error(ErrorKind::kEncode, "rsp cannot be an index register");
    }
    if (has_index && mem.scale != 1 && mem.scale != 2 && mem.scale != 4 &&
        mem.scale != 8) {
      return Error(ErrorKind::kEncode, "invalid scale factor");
    }

    // Choose displacement size.
    std::uint8_t mod;
    if (!has_base) {
      mod = 0;  // absolute disp32 (with SIB, base=101)
      disp_size_ = 4;
    } else if (mem.disp == 0 && (mem.base.index & 7) != 5) {
      mod = 0;
      disp_size_ = 0;
    } else if (mem.disp >= -128 && mem.disp <= 127) {
      mod = 1;
      disp_size_ = 1;
    } else {
      mod = 2;
      disp_size_ = 4;
    }
    disp_ = mem.disp;

    const bool need_sib =
        has_index || !has_base || (has_base && (mem.base.index & 7) == 4);
    if (!need_sib) {
      if (mem.base.index & 8) rex_ |= kRexB;
      modrm_ = static_cast<std::uint8_t>((mod << 6) | (reg_field_ << 3) |
                                         (mem.base.index & 7));
      return Status::Ok();
    }

    std::uint8_t scale_bits = 0;
    switch (mem.scale) {
      case 1: scale_bits = 0; break;
      case 2: scale_bits = 1; break;
      case 4: scale_bits = 2; break;
      case 8: scale_bits = 3; break;
    }
    std::uint8_t index_bits = 4;  // "no index"
    if (has_index) {
      if (mem.index.index & 8) rex_ |= kRexX;
      index_bits = mem.index.index & 7;
    }
    std::uint8_t base_bits = 5;  // "no base" (requires mod=00 + disp32)
    if (has_base) {
      if (mem.base.index & 8) rex_ |= kRexB;
      base_bits = mem.base.index & 7;
    }
    modrm_ = static_cast<std::uint8_t>((mod << 6) | (reg_field_ << 3) | 4);
    sib_ = static_cast<std::uint8_t>((scale_bits << 6) | (index_bits << 3) |
                                     base_bits);
    has_sib_ = true;
    return Status::Ok();
  }

  /// Encodes the r/m slot from either kind of operand.
  Status Rm(const Operand& op) {
    if (op.is_reg()) {
      std::uint8_t index = op.reg.index;
      if (op.reg.cls == RegClass::kGp && op.size == 1 && op.high8) {
        index = static_cast<std::uint8_t>(index + 4);  // ah..bh encode as 4..7
      }
      RmReg(index);
      return Status::Ok();
    }
    if (op.is_mem()) return RmMem(op.mem);
    return Error(ErrorKind::kEncode, "operand is not an r/m operand");
  }

  /// Registers the ModRM reg-field operand (GP or XMM register).
  Status Reg(const Operand& op) {
    if (!op.is_reg()) {
      return Error(ErrorKind::kEncode, "operand is not a register");
    }
    std::uint8_t index = op.reg.index;
    if (op.reg.cls == RegClass::kGp && op.size == 1 && op.high8) {
      index = static_cast<std::uint8_t>(index + 4);
    }
    RegField(index);
    return Status::Ok();
  }

  Enc& Imm(std::int64_t value, std::uint8_t size) {
    imm_ = value;
    imm_size_ = size;
    return *this;
  }

  Expected<std::size_t> Finish(std::span<std::uint8_t> buffer,
                               std::uint64_t address) {
    if (forbid_rex_ && (rex_ != 0 || need_rex_)) {
      return Error(ErrorKind::kEncode,
                   "cannot encode high-byte register together with REX");
    }
    const bool emit_rex = rex_ != 0 || need_rex_;
    const std::size_t length = prefix_count_ + (emit_rex ? 1u : 0u) +
                               opcode_count_ + (has_modrm_ ? 1u : 0u) +
                               (has_sib_ ? 1u : 0u) + disp_size_ + imm_size_;
    if (length > buffer.size()) {
      return Error(ErrorKind::kResourceLimit, "encode buffer too small");
    }
    std::size_t pos = 0;
    for (std::size_t i = 0; i < prefix_count_; ++i) buffer[pos++] = prefixes_[i];
    if (emit_rex) buffer[pos++] = static_cast<std::uint8_t>(0x40 | rex_);
    for (std::size_t i = 0; i < opcode_count_; ++i) buffer[pos++] = opcodes_[i];
    if (has_modrm_) buffer[pos++] = modrm_;
    if (has_sib_) buffer[pos++] = sib_;
    if (disp_size_ != 0) {
      std::int32_t disp = disp_;
      if (rip_relative_) {
        const std::int64_t rel =
            static_cast<std::int64_t>(instr_.target) -
            static_cast<std::int64_t>(address + length);
        if (rel < INT32_MIN || rel > INT32_MAX) {
          return Error(ErrorKind::kEncode, "RIP-relative target out of range",
                       address);
        }
        disp = static_cast<std::int32_t>(rel);
      }
      if (disp_size_ == 1) {
        buffer[pos++] = static_cast<std::uint8_t>(disp);
      } else {
        std::memcpy(buffer.data() + pos, &disp, 4);
        pos += 4;
      }
    }
    if (imm_size_ != 0) {
      std::memcpy(buffer.data() + pos, &imm_, imm_size_);
      pos += imm_size_;
    }
    return pos;
  }

 private:
  const Instr& instr_;
  std::uint8_t prefixes_[4] = {};
  std::size_t prefix_count_ = 0;
  std::uint8_t rex_ = 0;
  bool need_rex_ = false;
  bool forbid_rex_ = false;
  std::uint8_t opcodes_[3] = {};
  std::size_t opcode_count_ = 0;
  std::uint8_t reg_field_ = 0;
  std::uint8_t modrm_ = 0;
  bool has_modrm_ = false;
  std::uint8_t sib_ = 0;
  bool has_sib_ = false;
  std::int32_t disp_ = 0;
  std::uint8_t disp_size_ = 0;
  bool rip_relative_ = false;
  std::int64_t imm_ = 0;
  std::uint8_t imm_size_ = 0;
};

bool FitsInt8(std::int64_t v) { return v >= -128 && v <= 127; }
bool FitsInt32(std::int64_t v) { return v >= INT32_MIN && v <= INT32_MAX; }

/// ALU group index for the 0x80..0x83 immediate group and 0x00.. opcodes.
int AluIndex(Mnemonic mnemonic) {
  switch (mnemonic) {
    case Mnemonic::kAdd: return 0;
    case Mnemonic::kOr: return 1;
    case Mnemonic::kAdc: return 2;
    case Mnemonic::kSbb: return 3;
    case Mnemonic::kAnd: return 4;
    case Mnemonic::kSub: return 5;
    case Mnemonic::kXor: return 6;
    case Mnemonic::kCmp: return 7;
    default: return -1;
  }
}

Expected<std::size_t> EncodeAlu(const Instr& instr,
                                std::span<std::uint8_t> buffer,
                                std::uint64_t address) {
  const int idx = AluIndex(instr.mnemonic);
  const Operand& dst = instr.ops[0];
  const Operand& src = instr.ops[1];
  const std::uint8_t size = dst.size;
  Enc enc(instr);
  enc.GpSize(size).ByteReg(dst).ByteReg(src);

  if (src.is_imm()) {
    if (size == 1) {
      enc.Op(0x80);
    } else if (FitsInt8(src.imm)) {
      enc.Op(0x83);
    } else if (FitsInt32(src.imm)) {
      enc.Op(0x81);
    } else {
      return Error(ErrorKind::kEncode, "ALU immediate does not fit in 32 bits");
    }
    enc.RegField(static_cast<std::uint8_t>(idx));
    DBLL_TRY_STATUS(enc.Rm(dst));
    if (size == 1 || FitsInt8(src.imm)) {
      enc.Imm(src.imm, 1);
    } else {
      enc.Imm(src.imm, size == 2 ? 2 : 4);
    }
    return enc.Finish(buffer, address);
  }
  if (src.is_reg() && (dst.is_reg() || dst.is_mem())) {
    // op r/m, r
    enc.Op(static_cast<std::uint8_t>(8 * idx + (size == 1 ? 0 : 1)));
    DBLL_TRY_STATUS(enc.Reg(src));
    DBLL_TRY_STATUS(enc.Rm(dst));
    return enc.Finish(buffer, address);
  }
  if (dst.is_reg() && src.is_mem()) {
    // op r, r/m
    enc.Op(static_cast<std::uint8_t>(8 * idx + (size == 1 ? 2 : 3)));
    DBLL_TRY_STATUS(enc.Reg(dst));
    DBLL_TRY_STATUS(enc.Rm(src));
    return enc.Finish(buffer, address);
  }
  return Error(ErrorKind::kEncode, "unsupported ALU operand combination");
}

Expected<std::size_t> EncodeMov(const Instr& instr,
                                std::span<std::uint8_t> buffer,
                                std::uint64_t address) {
  const Operand& dst = instr.ops[0];
  const Operand& src = instr.ops[1];
  const std::uint8_t size = dst.size;
  Enc enc(instr);
  enc.GpSize(size).ByteReg(dst).ByteReg(src);

  if (src.is_imm()) {
    if (dst.is_reg()) {
      if (size == 8 && !FitsInt32(src.imm)) {
        // movabs r64, imm64: REX.W(+B) B8+r imm64, emitted directly because
        // the +r register slot is not expressible through the Enc helper.
        std::uint8_t rex = 0x48;
        if (dst.reg.index & 8) rex |= 0x01;
        if (buffer.size() < 10) {
          return Error(ErrorKind::kResourceLimit, "encode buffer too small");
        }
        buffer[0] = rex;
        buffer[1] = static_cast<std::uint8_t>(0xb8 | (dst.reg.index & 7));
        std::memcpy(buffer.data() + 2, &src.imm, 8);
        return std::size_t{10};
      }
      // mov r/m, imm (C6/C7) keeps the encoding uniform and sign-extends.
      enc.Op(size == 1 ? 0xc6 : 0xc7);
      enc.RegField(0);
      DBLL_TRY_STATUS(enc.Rm(dst));
      enc.Imm(src.imm, size == 1 ? 1 : (size == 2 ? 2 : 4));
      return enc.Finish(buffer, address);
    }
    if (dst.is_mem()) {
      if (size == 8 && !FitsInt32(src.imm)) {
        return Error(ErrorKind::kEncode, "64-bit store immediate does not fit");
      }
      enc.Op(size == 1 ? 0xc6 : 0xc7);
      enc.RegField(0);
      DBLL_TRY_STATUS(enc.Rm(dst));
      enc.Imm(src.imm, size == 1 ? 1 : (size == 2 ? 2 : 4));
      return enc.Finish(buffer, address);
    }
  }
  if (src.is_reg() && (dst.is_reg() || dst.is_mem())) {
    enc.Op(size == 1 ? 0x88 : 0x89);
    DBLL_TRY_STATUS(enc.Reg(src));
    DBLL_TRY_STATUS(enc.Rm(dst));
    return enc.Finish(buffer, address);
  }
  if (dst.is_reg() && src.is_mem()) {
    enc.Op(size == 1 ? 0x8a : 0x8b);
    DBLL_TRY_STATUS(enc.Reg(dst));
    DBLL_TRY_STATUS(enc.Rm(src));
    return enc.Finish(buffer, address);
  }
  return Error(ErrorKind::kEncode, "unsupported mov operand combination");
}

/// Encoding descriptor for the uniform SSE opcodes.
struct SseOp {
  std::uint8_t prefix;  // 0 = none, otherwise 0x66/0xF2/0xF3
  std::uint8_t opcode;  // second byte after 0F
};

Expected<SseOp> SseOpcode(Mnemonic m) {
  using M = Mnemonic;
  switch (m) {
    case M::kAddps: return SseOp{0x00, 0x58};
    case M::kAddpd: return SseOp{0x66, 0x58};
    case M::kAddss: return SseOp{0xf3, 0x58};
    case M::kAddsd: return SseOp{0xf2, 0x58};
    case M::kMulps: return SseOp{0x00, 0x59};
    case M::kMulpd: return SseOp{0x66, 0x59};
    case M::kMulss: return SseOp{0xf3, 0x59};
    case M::kMulsd: return SseOp{0xf2, 0x59};
    case M::kSubps: return SseOp{0x00, 0x5c};
    case M::kSubpd: return SseOp{0x66, 0x5c};
    case M::kSubss: return SseOp{0xf3, 0x5c};
    case M::kSubsd: return SseOp{0xf2, 0x5c};
    case M::kDivps: return SseOp{0x00, 0x5e};
    case M::kDivpd: return SseOp{0x66, 0x5e};
    case M::kDivss: return SseOp{0xf3, 0x5e};
    case M::kDivsd: return SseOp{0xf2, 0x5e};
    case M::kMinss: return SseOp{0xf3, 0x5d};
    case M::kMinsd: return SseOp{0xf2, 0x5d};
    case M::kMaxss: return SseOp{0xf3, 0x5f};
    case M::kMaxsd: return SseOp{0xf2, 0x5f};
    case M::kSqrtps: return SseOp{0x00, 0x51};
    case M::kSqrtpd: return SseOp{0x66, 0x51};
    case M::kSqrtss: return SseOp{0xf3, 0x51};
    case M::kSqrtsd: return SseOp{0xf2, 0x51};
    case M::kAndps: return SseOp{0x00, 0x54};
    case M::kAndpd: return SseOp{0x66, 0x54};
    case M::kAndnps: return SseOp{0x00, 0x55};
    case M::kAndnpd: return SseOp{0x66, 0x55};
    case M::kOrps: return SseOp{0x00, 0x56};
    case M::kOrpd: return SseOp{0x66, 0x56};
    case M::kXorps: return SseOp{0x00, 0x57};
    case M::kXorpd: return SseOp{0x66, 0x57};
    case M::kPand: return SseOp{0x66, 0xdb};
    case M::kPandn: return SseOp{0x66, 0xdf};
    case M::kPor: return SseOp{0x66, 0xeb};
    case M::kPxor: return SseOp{0x66, 0xef};
    case M::kPaddb: return SseOp{0x66, 0xfc};
    case M::kPaddw: return SseOp{0x66, 0xfd};
    case M::kPaddd: return SseOp{0x66, 0xfe};
    case M::kPaddq: return SseOp{0x66, 0xd4};
    case M::kPsubb: return SseOp{0x66, 0xf8};
    case M::kPsubw: return SseOp{0x66, 0xf9};
    case M::kPsubd: return SseOp{0x66, 0xfa};
    case M::kPsubq: return SseOp{0x66, 0xfb};
    case M::kPmullw: return SseOp{0x66, 0xd5};
    case M::kPmuludq: return SseOp{0x66, 0xf4};
    case M::kPminub: return SseOp{0x66, 0xda};
    case M::kPmaxub: return SseOp{0x66, 0xde};
    case M::kPminsw: return SseOp{0x66, 0xea};
    case M::kPmaxsw: return SseOp{0x66, 0xee};
    case M::kPavgb: return SseOp{0x66, 0xe0};
    case M::kPavgw: return SseOp{0x66, 0xe3};
    case M::kPcmpeqb: return SseOp{0x66, 0x74};
    case M::kPcmpeqw: return SseOp{0x66, 0x75};
    case M::kPcmpeqd: return SseOp{0x66, 0x76};
    case M::kPcmpgtb: return SseOp{0x66, 0x64};
    case M::kPcmpgtw: return SseOp{0x66, 0x65};
    case M::kPcmpgtd: return SseOp{0x66, 0x66};
    case M::kPsllw: return SseOp{0x66, 0xf1};
    case M::kPslld: return SseOp{0x66, 0xf2};
    case M::kPsllq: return SseOp{0x66, 0xf3};
    case M::kPsrlw: return SseOp{0x66, 0xd1};
    case M::kPsrld: return SseOp{0x66, 0xd2};
    case M::kPsrlq: return SseOp{0x66, 0xd3};
    case M::kPsraw: return SseOp{0x66, 0xe1};
    case M::kPsrad: return SseOp{0x66, 0xe2};
    case M::kPunpcklbw: return SseOp{0x66, 0x60};
    case M::kPunpcklwd: return SseOp{0x66, 0x61};
    case M::kPunpckldq: return SseOp{0x66, 0x62};
    case M::kPunpckhbw: return SseOp{0x66, 0x68};
    case M::kPunpckhwd: return SseOp{0x66, 0x69};
    case M::kPunpckhdq: return SseOp{0x66, 0x6a};
    case M::kCmpps: return SseOp{0x00, 0xc2};
    case M::kCmppd: return SseOp{0x66, 0xc2};
    case M::kCmpss: return SseOp{0xf3, 0xc2};
    case M::kCmpsd: return SseOp{0xf2, 0xc2};
    case M::kUcomiss: return SseOp{0x00, 0x2e};
    case M::kUcomisd: return SseOp{0x66, 0x2e};
    case M::kComiss: return SseOp{0x00, 0x2f};
    case M::kComisd: return SseOp{0x66, 0x2f};
    case M::kCvtss2sd: return SseOp{0xf3, 0x5a};
    case M::kCvtsd2ss: return SseOp{0xf2, 0x5a};
    case M::kCvtps2pd: return SseOp{0x00, 0x5a};
    case M::kCvtpd2ps: return SseOp{0x66, 0x5a};
    case M::kCvtdq2ps: return SseOp{0x00, 0x5b};
    case M::kCvtdq2pd: return SseOp{0xf3, 0xe6};
    case M::kUnpcklps: return SseOp{0x00, 0x14};
    case M::kUnpcklpd: return SseOp{0x66, 0x14};
    case M::kUnpckhps: return SseOp{0x00, 0x15};
    case M::kUnpckhpd: return SseOp{0x66, 0x15};
    case M::kPunpcklqdq: return SseOp{0x66, 0x6c};
    case M::kPunpckhqdq: return SseOp{0x66, 0x6d};
    default:
      return Error(ErrorKind::kEncode, "not a uniform SSE opcode");
  }
}

Expected<std::size_t> EncodeSseRr(const Instr& instr, SseOp op,
                                  std::span<std::uint8_t> buffer,
                                  std::uint64_t address) {
  Enc enc(instr);
  if (op.prefix != 0) enc.Prefix(op.prefix);
  enc.Op0F(op.opcode);
  DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
  DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
  if (instr.op_count == 3) {
    if (!instr.ops[2].is_imm()) {
      return Error(ErrorKind::kEncode, "third SSE operand must be immediate");
    }
    enc.Imm(instr.ops[2].imm, 1);
  }
  return enc.Finish(buffer, address);
}

/// SSE moves whose load and store forms use adjacent opcodes.
struct SseMove {
  std::uint8_t prefix;
  std::uint8_t load_op;
  std::uint8_t store_op;
};

Expected<SseMove> SseMoveOpcode(Mnemonic m) {
  using M = Mnemonic;
  switch (m) {
    case M::kMovups: return SseMove{0x00, 0x10, 0x11};
    case M::kMovupd: return SseMove{0x66, 0x10, 0x11};
    case M::kMovss: return SseMove{0xf3, 0x10, 0x11};
    case M::kMovsdX: return SseMove{0xf2, 0x10, 0x11};
    case M::kMovaps: return SseMove{0x00, 0x28, 0x29};
    case M::kMovapd: return SseMove{0x66, 0x28, 0x29};
    case M::kMovdqa: return SseMove{0x66, 0x6f, 0x7f};
    case M::kMovdqu: return SseMove{0xf3, 0x6f, 0x7f};
    case M::kMovlps: return SseMove{0x00, 0x12, 0x13};
    case M::kMovlpd: return SseMove{0x66, 0x12, 0x13};
    case M::kMovhps: return SseMove{0x00, 0x16, 0x17};
    case M::kMovhpd: return SseMove{0x66, 0x16, 0x17};
    default:
      return Error(ErrorKind::kEncode, "not an SSE move");
  }
}

Expected<std::size_t> EncodeShift(const Instr& instr,
                                  std::span<std::uint8_t> buffer,
                                  std::uint64_t address) {
  int group;
  switch (instr.mnemonic) {
    case Mnemonic::kRol: group = 0; break;
    case Mnemonic::kRor: group = 1; break;
    case Mnemonic::kShl: group = 4; break;
    case Mnemonic::kShr: group = 5; break;
    case Mnemonic::kSar: group = 7; break;
    default:
      return Error(ErrorKind::kEncode, "not a shift");
  }
  const Operand& dst = instr.ops[0];
  const Operand& amount = instr.ops[1];
  Enc enc(instr);
  enc.GpSize(dst.size).ByteReg(dst);
  enc.RegField(static_cast<std::uint8_t>(group));
  if (amount.is_imm()) {
    enc.Op(dst.size == 1 ? 0xc0 : 0xc1);
    DBLL_TRY_STATUS(enc.Rm(dst));
    enc.Imm(amount.imm, 1);
    return enc.Finish(buffer, address);
  }
  if (amount.is_reg() && amount.reg == kRcx) {
    enc.Op(dst.size == 1 ? 0xd2 : 0xd3);
    DBLL_TRY_STATUS(enc.Rm(dst));
    return enc.Finish(buffer, address);
  }
  return Error(ErrorKind::kEncode, "shift amount must be imm8 or cl");
}

}  // namespace

Expected<std::size_t> Encoder::Encode(const Instr& instr,
                                      std::span<std::uint8_t> buffer,
                                      std::uint64_t address) {
  DBLL_FAULT_POINT("encode.insn");
  using M = Mnemonic;
  switch (instr.mnemonic) {
    case M::kNop: {
      Enc enc(instr);
      enc.Op(0x90);
      return enc.Finish(buffer, address);
    }
    case M::kEndbr64: {
      if (buffer.size() < 4) {
        return Error(ErrorKind::kResourceLimit, "encode buffer too small");
      }
      const std::uint8_t bytes[4] = {0xf3, 0x0f, 0x1e, 0xfa};
      std::memcpy(buffer.data(), bytes, 4);
      return std::size_t{4};
    }
    case M::kUd2: {
      Enc enc(instr);
      enc.Op0F(0x0b);
      return enc.Finish(buffer, address);
    }
    case M::kRet: {
      Enc enc(instr);
      if (instr.op_count == 1) {
        enc.Op(0xc2).Imm(instr.ops[0].imm, 2);
      } else {
        enc.Op(0xc3);
      }
      return enc.Finish(buffer, address);
    }
    case M::kLeave: {
      Enc enc(instr);
      enc.Op(0xc9);
      return enc.Finish(buffer, address);
    }
    case M::kInt3: {
      Enc enc(instr);
      enc.Op(0xcc);
      return enc.Finish(buffer, address);
    }
    case M::kRdtsc: {
      Enc enc(instr);
      enc.Op0F(0x31);
      return enc.Finish(buffer, address);
    }
    case M::kCpuid: {
      Enc enc(instr);
      enc.Op0F(0xa2);
      return enc.Finish(buffer, address);
    }
    case M::kCmpxchg: case M::kXadd: {
      Enc enc(instr);
      const std::uint8_t size = instr.ops[0].size;
      enc.GpSize(size).ByteReg(instr.ops[0]).ByteReg(instr.ops[1]);
      const std::uint8_t base = instr.mnemonic == M::kCmpxchg ? 0xb0 : 0xc0;
      enc.Op0F(static_cast<std::uint8_t>(base | (size == 1 ? 0 : 1)));
      DBLL_TRY_STATUS(enc.Reg(instr.ops[1]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kClc: case M::kStc: {
      Enc enc(instr);
      enc.Op(instr.mnemonic == M::kClc ? 0xf8 : 0xf9);
      return enc.Finish(buffer, address);
    }
    case M::kCwde: case M::kCbw: case M::kCdqe: {
      Enc enc(instr);
      if (instr.mnemonic == M::kCdqe) enc.RexW();
      if (instr.mnemonic == M::kCbw) enc.P66();
      enc.Op(0x98);
      return enc.Finish(buffer, address);
    }
    case M::kCdq: case M::kCwd: case M::kCqo: {
      Enc enc(instr);
      if (instr.mnemonic == M::kCqo) enc.RexW();
      if (instr.mnemonic == M::kCwd) enc.P66();
      enc.Op(0x99);
      return enc.Finish(buffer, address);
    }

    case M::kAdd: case M::kAdc: case M::kSub: case M::kSbb:
    case M::kCmp: case M::kAnd: case M::kOr: case M::kXor:
      return EncodeAlu(instr, buffer, address);

    case M::kMov:
      return EncodeMov(instr, buffer, address);

    case M::kMovzx: case M::kMovsx: {
      const Operand& dst = instr.ops[0];
      const Operand& src = instr.ops[1];
      Enc enc(instr);
      enc.GpSize(dst.size).ByteReg(src);
      const bool from8 = src.size == 1;
      enc.Op0F(instr.mnemonic == M::kMovzx ? (from8 ? 0xb6 : 0xb7)
                                           : (from8 ? 0xbe : 0xbf));
      DBLL_TRY_STATUS(enc.Reg(dst));
      DBLL_TRY_STATUS(enc.Rm(src));
      return enc.Finish(buffer, address);
    }
    case M::kMovsxd: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      enc.Op(0x63);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kLea: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      enc.Op(0x8d);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kTest: {
      const Operand& dst = instr.ops[0];
      const Operand& src = instr.ops[1];
      Enc enc(instr);
      enc.GpSize(dst.size).ByteReg(dst).ByteReg(src);
      if (src.is_imm()) {
        enc.Op(dst.size == 1 ? 0xf6 : 0xf7);
        enc.RegField(0);
        DBLL_TRY_STATUS(enc.Rm(dst));
        enc.Imm(src.imm, dst.size == 1 ? 1 : (dst.size == 2 ? 2 : 4));
        return enc.Finish(buffer, address);
      }
      enc.Op(dst.size == 1 ? 0x84 : 0x85);
      DBLL_TRY_STATUS(enc.Reg(src));
      DBLL_TRY_STATUS(enc.Rm(dst));
      return enc.Finish(buffer, address);
    }
    case M::kXchg: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size).ByteReg(instr.ops[0]).ByteReg(instr.ops[1]);
      enc.Op(instr.ops[0].size == 1 ? 0x86 : 0x87);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[1]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kNot: case M::kNeg: case M::kMul: case M::kImul:
    case M::kDiv: case M::kIdiv: {
      // imul with 2/3 operands handled below; the unary forms land here.
      if (instr.mnemonic == M::kImul && instr.op_count >= 2) {
        const Operand& dst = instr.ops[0];
        Enc enc(instr);
        enc.GpSize(dst.size);
        if (instr.op_count == 2) {
          enc.Op0F(0xaf);
          DBLL_TRY_STATUS(enc.Reg(dst));
          DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
          return enc.Finish(buffer, address);
        }
        const std::int64_t imm = instr.ops[2].imm;
        enc.Op(FitsInt8(imm) ? 0x6b : 0x69);
        DBLL_TRY_STATUS(enc.Reg(dst));
        DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
        enc.Imm(imm, FitsInt8(imm) ? 1 : (dst.size == 2 ? 2 : 4));
        return enc.Finish(buffer, address);
      }
      int group;
      switch (instr.mnemonic) {
        case M::kNot: group = 2; break;
        case M::kNeg: group = 3; break;
        case M::kMul: group = 4; break;
        case M::kImul: group = 5; break;
        case M::kDiv: group = 6; break;
        default: group = 7; break;  // idiv
      }
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size).ByteReg(instr.ops[0]);
      enc.Op(instr.ops[0].size == 1 ? 0xf6 : 0xf7);
      enc.RegField(static_cast<std::uint8_t>(group));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kInc: case M::kDec: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size).ByteReg(instr.ops[0]);
      enc.Op(instr.ops[0].size == 1 ? 0xfe : 0xff);
      enc.RegField(instr.mnemonic == M::kInc ? 0 : 1);
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kShl: case M::kShr: case M::kSar: case M::kRol: case M::kRor:
      return EncodeShift(instr, buffer, address);

    case M::kPush: {
      const Operand& op = instr.ops[0];
      Enc enc(instr);
      if (op.is_reg()) {
        if (op.reg.index & 8) {
          // +r encoding needs REX.B; reuse RmReg's REX.B via a direct path.
          std::uint8_t bytes[2] = {0x41,
                                   static_cast<std::uint8_t>(0x50 | (op.reg.index & 7))};
          if (buffer.size() < 2) {
            return Error(ErrorKind::kResourceLimit, "encode buffer too small");
          }
          std::memcpy(buffer.data(), bytes, 2);
          return std::size_t{2};
        }
        enc.Op(static_cast<std::uint8_t>(0x50 | op.reg.index));
        return enc.Finish(buffer, address);
      }
      if (op.is_imm()) {
        if (FitsInt8(op.imm)) {
          enc.Op(0x6a).Imm(op.imm, 1);
        } else {
          enc.Op(0x68).Imm(op.imm, 4);
        }
        return enc.Finish(buffer, address);
      }
      enc.Op(0xff);
      enc.RegField(6);
      DBLL_TRY_STATUS(enc.Rm(op));
      return enc.Finish(buffer, address);
    }
    case M::kPop: {
      const Operand& op = instr.ops[0];
      Enc enc(instr);
      if (op.is_reg()) {
        if (op.reg.index & 8) {
          std::uint8_t bytes[2] = {0x41,
                                   static_cast<std::uint8_t>(0x58 | (op.reg.index & 7))};
          if (buffer.size() < 2) {
            return Error(ErrorKind::kResourceLimit, "encode buffer too small");
          }
          std::memcpy(buffer.data(), bytes, 2);
          return std::size_t{2};
        }
        enc.Op(static_cast<std::uint8_t>(0x58 | op.reg.index));
        return enc.Finish(buffer, address);
      }
      enc.Op(0x8f);
      enc.RegField(0);
      DBLL_TRY_STATUS(enc.Rm(op));
      return enc.Finish(buffer, address);
    }

    case M::kJmp: {
      if (instr.op_count == 1 && !instr.ops[0].is_imm()) {
        // Indirect jump: FF /4.
        Enc enc(instr);
        enc.Op(0xff);
        enc.RegField(4);
        DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
        return enc.Finish(buffer, address);
      }
      // rel32, patched from target.
      if (buffer.size() < 5) {
        return Error(ErrorKind::kResourceLimit, "encode buffer too small");
      }
      const std::int64_t rel = static_cast<std::int64_t>(instr.target) -
                               static_cast<std::int64_t>(address + 5);
      if (!FitsInt32(rel)) {
        return Error(ErrorKind::kEncode, "jump target out of rel32 range");
      }
      buffer[0] = 0xe9;
      const std::int32_t rel32 = static_cast<std::int32_t>(rel);
      std::memcpy(buffer.data() + 1, &rel32, 4);
      return std::size_t{5};
    }
    case M::kJcc: {
      if (buffer.size() < 6) {
        return Error(ErrorKind::kResourceLimit, "encode buffer too small");
      }
      const std::int64_t rel = static_cast<std::int64_t>(instr.target) -
                               static_cast<std::int64_t>(address + 6);
      if (!FitsInt32(rel)) {
        return Error(ErrorKind::kEncode, "jump target out of rel32 range");
      }
      buffer[0] = 0x0f;
      buffer[1] = static_cast<std::uint8_t>(0x80 | static_cast<std::uint8_t>(instr.cond));
      const std::int32_t rel32 = static_cast<std::int32_t>(rel);
      std::memcpy(buffer.data() + 2, &rel32, 4);
      return std::size_t{6};
    }
    case M::kCall: {
      if (instr.op_count == 1 && !instr.ops[0].is_imm()) {
        // Indirect call: FF /2.
        Enc enc(instr);
        enc.Op(0xff);
        enc.RegField(2);
        DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
        return enc.Finish(buffer, address);
      }
      if (buffer.size() < 5) {
        return Error(ErrorKind::kResourceLimit, "encode buffer too small");
      }
      const std::int64_t rel = static_cast<std::int64_t>(instr.target) -
                               static_cast<std::int64_t>(address + 5);
      if (!FitsInt32(rel)) {
        return Error(ErrorKind::kEncode, "call target out of rel32 range");
      }
      buffer[0] = 0xe8;
      const std::int32_t rel32 = static_cast<std::int32_t>(rel);
      std::memcpy(buffer.data() + 1, &rel32, 4);
      return std::size_t{5};
    }
    case M::kSetcc: {
      Enc enc(instr);
      enc.ByteReg(instr.ops[0]);
      enc.Op0F(static_cast<std::uint8_t>(0x90 | static_cast<std::uint8_t>(instr.cond)));
      enc.RegField(0);
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kCmovcc: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      enc.Op0F(static_cast<std::uint8_t>(0x40 | static_cast<std::uint8_t>(instr.cond)));
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kBswap: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      if (instr.ops[0].reg.index & 8) {
        // Needs REX.B on a +r opcode: emit manually.
        std::uint8_t rex = instr.ops[0].size == 8 ? 0x49 : 0x41;
        if (buffer.size() < 3) {
          return Error(ErrorKind::kResourceLimit, "encode buffer too small");
        }
        buffer[0] = rex;
        buffer[1] = 0x0f;
        buffer[2] = static_cast<std::uint8_t>(0xc8 | (instr.ops[0].reg.index & 7));
        return std::size_t{3};
      }
      enc.Op0F(static_cast<std::uint8_t>(0xc8 | instr.ops[0].reg.index));
      return enc.Finish(buffer, address);
    }
    case M::kBt: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      if (instr.ops[1].is_imm()) {
        enc.Op0F(0xba);
        enc.RegField(4);
        DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
        enc.Imm(instr.ops[1].imm, 1);
        return enc.Finish(buffer, address);
      }
      enc.Op0F(0xa3);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[1]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kBsf: case M::kBsr: case M::kTzcnt: case M::kPopcnt: {
      Enc enc(instr);
      if (instr.mnemonic == M::kTzcnt || instr.mnemonic == M::kPopcnt) enc.PF3();
      enc.GpSize(instr.ops[0].size);
      enc.Op0F(instr.mnemonic == M::kBsr
                   ? 0xbd
                   : (instr.mnemonic == M::kPopcnt ? 0xb8 : 0xbc));
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }

    // --- SSE moves with load/store opcode pairs ---
    case M::kMovups: case M::kMovupd: case M::kMovss: case M::kMovsdX:
    case M::kMovaps: case M::kMovapd: case M::kMovdqa: case M::kMovdqu:
    case M::kMovlps: case M::kMovlpd: case M::kMovhps: case M::kMovhpd: {
      DBLL_TRY(SseMove move, SseMoveOpcode(instr.mnemonic));
      const bool is_store = instr.ops[0].is_mem();
      Enc enc(instr);
      if (move.prefix != 0) enc.Prefix(move.prefix);
      if (is_store) {
        enc.Op0F(move.store_op);
        DBLL_TRY_STATUS(enc.Reg(instr.ops[1]));
        DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      } else {
        enc.Op0F(move.load_op);
        DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
        DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      }
      return enc.Finish(buffer, address);
    }
    case M::kMovhlps: case M::kMovlhps: {
      Enc enc(instr);
      enc.Op0F(instr.mnemonic == M::kMovhlps ? 0x12 : 0x16);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kMovd: case M::kMovq: {
      const Operand& dst = instr.ops[0];
      const Operand& src = instr.ops[1];
      const bool is64 = instr.mnemonic == M::kMovq;
      Enc enc(instr);
      if (dst.is_reg() && dst.reg.cls == RegClass::kVec) {
        if (src.is_reg() && src.reg.cls == RegClass::kGp) {
          enc.P66();
          if (is64) enc.RexW();
          enc.Op0F(0x6e);
          DBLL_TRY_STATUS(enc.Reg(dst));
          DBLL_TRY_STATUS(enc.Rm(src));
          return enc.Finish(buffer, address);
        }
        if (is64) {
          // movq xmm, xmm/m64 (F3 0F 7E)
          enc.PF3();
          enc.Op0F(0x7e);
        } else {
          enc.P66();
          enc.Op0F(0x6e);
        }
        DBLL_TRY_STATUS(enc.Reg(dst));
        DBLL_TRY_STATUS(enc.Rm(src));
        return enc.Finish(buffer, address);
      }
      // Store forms: dst is GP reg or memory, src is xmm.
      if (dst.is_reg() && dst.reg.cls == RegClass::kGp) {
        enc.P66();
        if (is64) enc.RexW();
        enc.Op0F(0x7e);
        DBLL_TRY_STATUS(enc.Reg(src));
        DBLL_TRY_STATUS(enc.Rm(dst));
        return enc.Finish(buffer, address);
      }
      if (dst.is_mem()) {
        if (is64) {
          enc.P66();
          enc.Op0F(0xd6);  // movq m64, xmm
        } else {
          enc.P66();
          enc.Op0F(0x7e);  // movd m32, xmm
        }
        DBLL_TRY_STATUS(enc.Reg(src));
        DBLL_TRY_STATUS(enc.Rm(dst));
        return enc.Finish(buffer, address);
      }
      return Error(ErrorKind::kEncode, "unsupported movd/movq operands");
    }
    case M::kCvtsi2ss: case M::kCvtsi2sd: {
      Enc enc(instr);
      enc.Prefix(instr.mnemonic == M::kCvtsi2ss ? 0xf3 : 0xf2);
      if (instr.ops[1].size == 8) enc.RexW();
      enc.Op0F(0x2a);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kShld: case M::kShrd: {
      const bool is_shld = instr.mnemonic == M::kShld;
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      const bool by_cl = instr.ops[2].is_reg();
      enc.Op0F(static_cast<std::uint8_t>((is_shld ? 0xa4 : 0xac) |
                                         (by_cl ? 1 : 0)));
      DBLL_TRY_STATUS(enc.Reg(instr.ops[1]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      if (!by_cl) enc.Imm(instr.ops[2].imm, 1);
      return enc.Finish(buffer, address);
    }
    case M::kBts: case M::kBtr: case M::kBtc: {
      Enc enc(instr);
      enc.GpSize(instr.ops[0].size);
      if (instr.ops[1].is_imm()) {
        enc.Op0F(0xba);
        enc.RegField(instr.mnemonic == M::kBts
                         ? 5
                         : (instr.mnemonic == M::kBtr ? 6 : 7));
        DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
        enc.Imm(instr.ops[1].imm, 1);
        return enc.Finish(buffer, address);
      }
      enc.Op0F(instr.mnemonic == M::kBts
                   ? 0xab
                   : (instr.mnemonic == M::kBtr ? 0xb3 : 0xbb));
      DBLL_TRY_STATUS(enc.Reg(instr.ops[1]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      return enc.Finish(buffer, address);
    }
    case M::kLfence: case M::kMfence: case M::kSfence: {
      if (buffer.size() < 3) {
        return Error(ErrorKind::kResourceLimit, "encode buffer too small");
      }
      buffer[0] = 0x0f;
      buffer[1] = 0xae;
      buffer[2] = instr.mnemonic == M::kLfence
                      ? 0xe8
                      : (instr.mnemonic == M::kMfence ? 0xf0 : 0xf8);
      return std::size_t{3};
    }
    case M::kMovmskps: case M::kMovmskpd: case M::kPmovmskb: {
      Enc enc(instr);
      if (instr.mnemonic != M::kMovmskps) enc.P66();
      enc.Op0F(instr.mnemonic == M::kPmovmskb ? 0xd7 : 0x50);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kPsllw: case M::kPslld: case M::kPsllq:
    case M::kPsrlw: case M::kPsrld: case M::kPsrlq:
    case M::kPsraw: case M::kPsrad:
    case M::kPslldq: case M::kPsrldq: {
      if (!instr.ops[1].is_imm()) {
        // Register-count forms use the uniform opcode table.
        DBLL_TRY(SseOp op, SseOpcode(instr.mnemonic));
        return EncodeSseRr(instr, op, buffer, address);
      }
      // Immediate forms: 66 0F 71/72/73 /group ib.
      std::uint8_t opcode = 0;
      std::uint8_t group = 0;
      switch (instr.mnemonic) {
        case M::kPsrlw: opcode = 0x71; group = 2; break;
        case M::kPsraw: opcode = 0x71; group = 4; break;
        case M::kPsllw: opcode = 0x71; group = 6; break;
        case M::kPsrld: opcode = 0x72; group = 2; break;
        case M::kPsrad: opcode = 0x72; group = 4; break;
        case M::kPslld: opcode = 0x72; group = 6; break;
        case M::kPsrlq: opcode = 0x73; group = 2; break;
        case M::kPsrldq: opcode = 0x73; group = 3; break;
        case M::kPsllq: opcode = 0x73; group = 6; break;
        case M::kPslldq: opcode = 0x73; group = 7; break;
        default: break;
      }
      Enc enc(instr);
      enc.P66();
      enc.Op0F(opcode);
      enc.RegField(group);
      DBLL_TRY_STATUS(enc.Rm(instr.ops[0]));
      enc.Imm(instr.ops[1].imm, 1);
      return enc.Finish(buffer, address);
    }
    case M::kCvtss2si: case M::kCvtsd2si: {
      Enc enc(instr);
      enc.Prefix(instr.mnemonic == M::kCvtss2si ? 0xf3 : 0xf2);
      if (instr.ops[0].size == 8) enc.RexW();
      enc.Op0F(0x2d);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kCvttss2si: case M::kCvttsd2si: {
      Enc enc(instr);
      enc.Prefix(instr.mnemonic == M::kCvttss2si ? 0xf3 : 0xf2);
      if (instr.ops[0].size == 8) enc.RexW();
      enc.Op0F(0x2c);
      DBLL_TRY_STATUS(enc.Reg(instr.ops[0]));
      DBLL_TRY_STATUS(enc.Rm(instr.ops[1]));
      return enc.Finish(buffer, address);
    }
    case M::kShufps: case M::kShufpd: case M::kPshufd: {
      SseOp op{};
      if (instr.mnemonic == M::kShufps) op = {0x00, 0xc6};
      if (instr.mnemonic == M::kShufpd) op = {0x66, 0xc6};
      if (instr.mnemonic == M::kPshufd) op = {0x66, 0x70};
      return EncodeSseRr(instr, op, buffer, address);
    }

    default: {
      // Uniform SSE register-register/memory opcodes.
      auto op = SseOpcode(instr.mnemonic);
      if (op) {
        return EncodeSseRr(instr, *op, buffer, address);
      }
      return Error(ErrorKind::kEncode,
                   std::string("no encoding for mnemonic ") +
                       MnemonicName(instr.mnemonic),
                   instr.address);
    }
  }
}

}  // namespace dbll::x86
