#include "dbll/x86/cfg.h"

#include <algorithm>

#include "dbll/obs/obs.h"
#include "dbll/x86/decoder.h"

namespace dbll::x86 {
namespace {

/// Source of instruction bytes: either live process memory or a buffer with a
/// virtual base address.
class ByteSource {
 public:
  // Live-memory source.
  ByteSource() = default;
  // Buffer source.
  ByteSource(std::span<const std::uint8_t> code, std::uint64_t base)
      : code_(code), base_(base), buffered_(true) {}

  Expected<Instr> Decode(std::uint64_t address) const {
    if (!buffered_) {
      return Decoder::DecodeAt(address);
    }
    if (address < base_ || address >= base_ + code_.size()) {
      return Error(ErrorKind::kDecode, "address outside of code buffer", address);
    }
    const std::size_t offset = address - base_;
    return Decoder::DecodeOne(code_.subspan(offset), address);
  }

  bool Contains(std::uint64_t address) const {
    if (!buffered_) return true;
    return address >= base_ && address < base_ + code_.size();
  }

 private:
  std::span<const std::uint8_t> code_;
  std::uint64_t base_ = 0;
  bool buffered_ = false;
};

Expected<Cfg> BuildImpl(const ByteSource& source, std::uint64_t entry,
                        const CfgOptions& options) {
  DBLL_TRACE_SPAN("cfg.build");
  Cfg cfg;
  cfg.entry = entry;

  // Pass 1: decode every reachable instruction exactly once.
  std::map<std::uint64_t, Instr> instrs;
  std::set<std::uint64_t> leaders{entry};
  std::set<std::uint64_t> call_targets;
  std::vector<std::uint64_t> worklist{entry};

  {
    DBLL_TRACE_SPAN("cfg.decode");
    while (!worklist.empty()) {
      std::uint64_t address = worklist.back();
      worklist.pop_back();

      while (true) {
        if (instrs.count(address) != 0) break;  // already decoded from here
        if (instrs.size() >= options.max_instructions) {
          return Error(ErrorKind::kResourceLimit,
                       "instruction limit exceeded while decoding function",
                       address);
        }
        DBLL_TRY(Instr instr, source.Decode(address));
        instrs.emplace(address, instr);

        switch (instr.mnemonic) {
          case Mnemonic::kJmp:
            if (instr.op_count != 0 && !instr.ops[0].is_imm()) {
              const std::vector<std::uint64_t>* resolved = nullptr;
              if (options.resolved_jumps != nullptr) {
                auto it = options.resolved_jumps->find(address);
                if (it != options.resolved_jumps->end()) resolved = &it->second;
              }
              if (resolved != nullptr) {
                for (std::uint64_t target : *resolved) {
                  if (!source.Contains(target)) {
                    return Error(ErrorKind::kUnsupported,
                                 "jump-table target outside of function buffer",
                                 address);
                  }
                  leaders.insert(target);
                  worklist.push_back(target);
                }
                break;
              }
              if (options.allow_indirect_jumps) break;
              return Error(ErrorKind::kUnsupported,
                           "indirect jumps are not supported", address);
            }
            if (!source.Contains(instr.target)) {
              return Error(ErrorKind::kUnsupported,
                           "jump target outside of function buffer", address);
            }
            leaders.insert(instr.target);
            worklist.push_back(instr.target);
            break;
          case Mnemonic::kJcc:
            if (!source.Contains(instr.target)) {
              return Error(ErrorKind::kUnsupported,
                           "jump target outside of function buffer", address);
            }
            leaders.insert(instr.target);
            worklist.push_back(instr.target);
            leaders.insert(instr.end());  // fall-through starts a block
            worklist.push_back(instr.end());
            break;
          case Mnemonic::kCall:
            if (instr.op_count != 0 && instr.ops[0].is_imm()) {
              call_targets.insert(instr.target);
            }
            break;
          default:
            break;
        }
        if (instr.IsBlockTerminator()) break;
        address = instr.end();
      }
    }
  }

  // Sanity: every leader must be the start of a decoded instruction;
  // otherwise some jump targets the middle of an instruction (overlapping
  // decode), which we do not support.
  for (std::uint64_t leader : leaders) {
    if (instrs.count(leader) == 0) {
      return Error(ErrorKind::kUnsupported,
                   "jump into the middle of an instruction", leader);
    }
  }
  for (const auto& [address, instr] : instrs) {
    for (std::uint64_t inner = address + 1; inner < instr.end(); ++inner) {
      if (leaders.count(inner) != 0) {
        return Error(ErrorKind::kUnsupported,
                     "jump into the middle of an instruction", inner);
      }
    }
  }

  // Pass 2: form blocks between leaders.
  for (std::uint64_t leader : leaders) {
    BasicBlock block;
    block.start = leader;
    std::uint64_t address = leader;
    while (true) {
      auto it = instrs.find(address);
      if (it == instrs.end()) {
        return Error(ErrorKind::kInternal, "decoded instruction map has a gap",
                     address);
      }
      const Instr& instr = it->second;
      block.instrs.push_back(instr);
      if (instr.IsBlockTerminator()) {
        if (instr.mnemonic == Mnemonic::kJmp) {
          if (instr.op_count != 0 && !instr.ops[0].is_imm()) {
            if (options.resolved_jumps != nullptr) {
              auto resolved_it = options.resolved_jumps->find(instr.address);
              if (resolved_it != options.resolved_jumps->end()) {
                std::set<std::uint64_t> unique(resolved_it->second.begin(),
                                               resolved_it->second.end());
                block.indirect_targets.assign(unique.begin(), unique.end());
              }
            }
          } else {
            block.branch_target = instr.target;
          }
        } else if (instr.mnemonic == Mnemonic::kJcc) {
          block.branch_target = instr.target;
          block.fall_through = instr.end();
        }
        break;
      }
      address = instr.end();
      if (leaders.count(address) != 0) {
        // Split point: the next instruction starts another block.
        block.fall_through = address;
        break;
      }
    }
    cfg.instr_count += block.instrs.size();
    cfg.blocks.emplace(leader, std::move(block));
  }

  // Pass 3: record predecessor edges. Every successor pointer -- the branch
  // target and the fall-through, including the fall-through a mid-block split
  // introduces -- gets mirrored as a predecessor, so backward dataflow can
  // walk the graph against the edge direction.
  for (const auto& [start, block] : cfg.blocks) {
    std::set<std::uint64_t> succs;
    if (block.branch_target != 0) succs.insert(block.branch_target);
    if (block.fall_through != 0) succs.insert(block.fall_through);
    succs.insert(block.indirect_targets.begin(),
                 block.indirect_targets.end());
    for (std::uint64_t succ : succs) {
      cfg.blocks.at(succ).predecessors.push_back(start);
    }
  }

  cfg.call_targets.assign(call_targets.begin(), call_targets.end());
  return cfg;
}

}  // namespace

Expected<Cfg> BuildCfg(std::uint64_t entry, const CfgOptions& options) {
  return BuildImpl(ByteSource(), entry, options);
}

Expected<Cfg> BuildCfgFromBuffer(std::span<const std::uint8_t> code,
                                 std::uint64_t base_address,
                                 std::uint64_t entry,
                                 const CfgOptions& options) {
  return BuildImpl(ByteSource(code, base_address), entry, options);
}

}  // namespace dbll::x86
