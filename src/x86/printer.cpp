#include "dbll/x86/printer.h"

#include <cinttypes>
#include <cstdio>

#include "dbll/support/hexdump.h"

namespace dbll::x86 {
namespace {

const char* const kGpNames64[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                    "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                    "r12", "r13", "r14", "r15"};
const char* const kGpNames32[16] = {"eax",  "ecx",  "edx",  "ebx", "esp",
                                    "ebp",  "esi",  "edi",  "r8d", "r9d",
                                    "r10d", "r11d", "r12d", "r13d", "r14d",
                                    "r15d"};
const char* const kGpNames16[16] = {"ax",   "cx",   "dx",   "bx",  "sp",
                                    "bp",   "si",   "di",   "r8w", "r9w",
                                    "r10w", "r11w", "r12w", "r13w", "r14w",
                                    "r15w"};
const char* const kGpNames8[16] = {"al",   "cl",   "dl",   "bl",  "spl",
                                   "bpl",  "sil",  "dil",  "r8b", "r9b",
                                   "r10b", "r11b", "r12b", "r13b", "r14b",
                                   "r15b"};
const char* const kGpNames8High[4] = {"ah", "ch", "dh", "bh"};

const char* SizePrefix(std::uint8_t size) {
  switch (size) {
    case 1: return "byte ptr ";
    case 2: return "word ptr ";
    case 4: return "dword ptr ";
    case 8: return "qword ptr ";
    case 16: return "xmmword ptr ";
    default: return "";
  }
}

void AppendSignedHex(std::string& out, std::int64_t value) {
  char buf[32];
  if (value < 0) {
    std::snprintf(buf, sizeof(buf), "-0x%" PRIx64, static_cast<std::uint64_t>(-value));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, static_cast<std::uint64_t>(value));
  }
  out += buf;
}

}  // namespace

std::string PrintReg(Reg reg, std::uint8_t size, bool high8) {
  switch (reg.cls) {
    case RegClass::kGp: {
      const unsigned i = reg.index & 15u;
      if (high8 && size == 1 && i < 4) return kGpNames8High[i];
      switch (size) {
        case 1: return kGpNames8[i];
        case 2: return kGpNames16[i];
        case 4: return kGpNames32[i];
        default: return kGpNames64[i];
      }
    }
    case RegClass::kVec:
      return "xmm" + std::to_string(reg.index & 15u);
    case RegClass::kIp:
      return "rip";
    case RegClass::kNone:
      break;
  }
  return "(noreg)";
}

std::string PrintOperand(const Operand& op) {
  switch (op.kind) {
    case OpKind::kReg:
      return PrintReg(op.reg, op.size, op.high8);
    case OpKind::kImm: {
      std::string out;
      AppendSignedHex(out, op.imm);
      return out;
    }
    case OpKind::kMem: {
      std::string out = SizePrefix(op.size);
      if (op.mem.segment == Segment::kFs) out += "fs:";
      if (op.mem.segment == Segment::kGs) out += "gs:";
      out += '[';
      bool need_plus = false;
      if (op.mem.base.valid()) {
        out += PrintReg(op.mem.base, 8);
        need_plus = true;
      }
      if (op.mem.index.valid()) {
        if (need_plus) out += " + ";
        if (op.mem.scale != 1) {
          out += std::to_string(op.mem.scale);
          out += '*';
        }
        out += PrintReg(op.mem.index, 8);
        need_plus = true;
      }
      if (op.mem.disp != 0 || !need_plus) {
        if (need_plus) {
          out += op.mem.disp < 0 ? " - " : " + ";
          AppendSignedHex(out, op.mem.disp < 0 ? -static_cast<std::int64_t>(op.mem.disp)
                                               : op.mem.disp);
        } else {
          AppendSignedHex(out, op.mem.disp);
        }
      }
      out += ']';
      return out;
    }
    case OpKind::kNone:
      break;
  }
  return "(none)";
}

std::string PrintInstr(const Instr& instr) {
  std::string out;
  switch (instr.mnemonic) {
    case Mnemonic::kJcc:
      out = "j";
      out += CondName(instr.cond);
      break;
    case Mnemonic::kSetcc:
      out = "set";
      out += CondName(instr.cond);
      break;
    case Mnemonic::kCmovcc:
      out = "cmov";
      out += CondName(instr.cond);
      break;
    default:
      out = MnemonicName(instr.mnemonic);
      break;
  }
  // Direct branch/call targets print as resolved absolute addresses.
  if ((instr.IsBranch() || instr.mnemonic == Mnemonic::kCall) &&
      instr.op_count == 1 && instr.ops[0].is_imm()) {
    out += ' ';
    out += dbll::HexValue(instr.target);
    return out;
  }
  for (int i = 0; i < instr.op_count; ++i) {
    out += i == 0 ? " " : ", ";
    // RIP-relative operands print their resolved target for readability.
    if (instr.ops[i].is_mem() && instr.ops[i].mem.base == kRip) {
      out += SizePrefix(instr.ops[i].size);
      out += '[';
      out += dbll::HexValue(instr.target);
      out += ']';
    } else {
      out += PrintOperand(instr.ops[i]);
    }
  }
  return out;
}

std::string PrintInstrWithBytes(const Instr& instr, const std::uint8_t* bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%12" PRIx64 ":  ", instr.address);
  std::string out = buf;
  std::string hex = dbll::HexBytes({bytes, instr.length});
  hex.resize(32, ' ');
  out += hex;
  out += PrintInstr(instr);
  return out;
}

}  // namespace dbll::x86
