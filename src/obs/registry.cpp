// dbll -- the metrics registry (see include/dbll/obs/obs.h).
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <variant>

#include "dbll/obs/obs.h"

namespace dbll::obs {

std::string_view ToString(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void Histogram::Record(std::uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t raw = min_.load(std::memory_order_relaxed);
  return raw == ~0ULL ? 0 : raw;
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

struct Registry::Impl {
  using Metric = std::variant<Counter, Gauge, Histogram>;

  mutable std::mutex mutex;
  // std::map: node-based, so metric addresses are stable across inserts
  // (handles are cached by hot paths) and Snapshot() comes out name-sorted.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics;

  // Mis-kinded re-requests return these detached dummies instead of
  // corrupting the real metric.
  Counter orphan_counter;
  Gauge orphan_gauge;
  Histogram orphan_histogram;

  template <typename T>
  T& Get(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = metrics.find(name);
    if (it == metrics.end()) {
      it = metrics.emplace(std::string(name),
                           std::make_unique<Metric>(std::in_place_type<T>))
               .first;
    }
    T* metric = std::get_if<T>(it->second.get());
    assert(metric != nullptr && "metric re-requested as a different kind");
    if (metric == nullptr) {
      if constexpr (std::is_same_v<T, Counter>) return orphan_counter;
      if constexpr (std::is_same_v<T, Gauge>) return orphan_gauge;
      if constexpr (std::is_same_v<T, Histogram>) return orphan_histogram;
    }
    return *metric;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::Default() {
  static Registry* instance = new Registry;  // leak: usable during atexit
  return *instance;
}

Counter& Registry::GetCounter(std::string_view name) {
  return impl_->Get<Counter>(name);
}

Gauge& Registry::GetGauge(std::string_view name) {
  return impl_->Get<Gauge>(name);
}

Histogram& Registry::GetHistogram(std::string_view name) {
  return impl_->Get<Histogram>(name);
}

std::vector<SnapshotEntry> Registry::Snapshot() const {
  std::vector<SnapshotEntry> out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  out.reserve(impl_->metrics.size());
  for (const auto& [name, metric] : impl_->metrics) {
    SnapshotEntry entry;
    entry.name = name;
    if (const Counter* c = std::get_if<Counter>(metric.get())) {
      entry.kind = MetricKind::kCounter;
      entry.value = c->value();
    } else if (const Gauge* g = std::get_if<Gauge>(metric.get())) {
      entry.kind = MetricKind::kGauge;
      entry.value = static_cast<std::uint64_t>(g->value());
    } else if (const Histogram* h = std::get_if<Histogram>(metric.get())) {
      entry.kind = MetricKind::kHistogram;
      entry.value = h->sum();
      entry.count = h->count();
      entry.min = h->min();
      entry.max = h->max();
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::uint64_t Registry::Value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->metrics.find(name);
  if (it == impl_->metrics.end()) return 0;
  if (const Counter* c = std::get_if<Counter>(it->second.get())) {
    return c->value();
  }
  if (const Gauge* g = std::get_if<Gauge>(it->second.get())) {
    return static_cast<std::uint64_t>(g->value());
  }
  if (const Histogram* h = std::get_if<Histogram>(it->second.get())) {
    return h->sum();
  }
  return 0;
}

std::string Registry::FormatSnapshot() const {
  std::string out;
  for (const SnapshotEntry& e : Snapshot()) {
    char line[256];
    if (e.kind == MetricKind::kHistogram) {
      const std::uint64_t mean = e.count > 0 ? e.value / e.count : 0;
      std::snprintf(line, sizeof(line),
                    "%-40s %12llu  (count %llu, mean %llu, min %llu, max "
                    "%llu)\n",
                    e.name.c_str(), static_cast<unsigned long long>(e.value),
                    static_cast<unsigned long long>(e.count),
                    static_cast<unsigned long long>(mean),
                    static_cast<unsigned long long>(e.min),
                    static_cast<unsigned long long>(e.max));
    } else {
      std::snprintf(line, sizeof(line), "%-40s %12llu\n", e.name.c_str(),
                    static_cast<unsigned long long>(e.value));
    }
    out += line;
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, metric] : impl_->metrics) {
    if (Counter* c = std::get_if<Counter>(metric.get())) {
      c->value_.store(0, std::memory_order_relaxed);
    } else if (Gauge* g = std::get_if<Gauge>(metric.get())) {
      g->value_.store(0, std::memory_order_relaxed);
    } else if (Histogram* h = std::get_if<Histogram>(metric.get())) {
      h->count_.store(0, std::memory_order_relaxed);
      h->sum_.store(0, std::memory_order_relaxed);
      h->min_.store(~0ULL, std::memory_order_relaxed);
      h->max_.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace dbll::obs
