// dbll -- the span tracer (see include/dbll/obs/obs.h).
//
// Recording path: each thread owns a ThreadBuffer (registered once, kept
// alive past thread exit by shared_ptr) and appends finished spans under its
// own mutex -- threads never contend with each other, only with an exporting
// reader. The global enable flag is the only cross-thread state a disabled
// span ever touches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dbll/obs/obs.h"

namespace dbll::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

struct ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanEvent> events;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // only touched by the owning thread
};

}  // namespace

struct Tracer::Impl {
  std::mutex mutex;  // guards the buffer list and tid assignment
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;

  ThreadBuffer& LocalBuffer() {
    thread_local std::shared_ptr<ThreadBuffer> local = [this] {
      auto buffer = std::make_shared<ThreadBuffer>();
      std::lock_guard<std::mutex> lock(mutex);
      buffer->tid = next_tid++;
      buffers.push_back(buffer);
      return buffer;
    }();
    return *local;
  }
};

Tracer::Tracer() : impl_(new Impl) {}
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::Default() {
  static Tracer* instance = new Tracer;  // leak: usable during atexit
  return *instance;
}

std::uint64_t Tracer::NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::Enable() {
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<SpanEvent> Tracer::Events() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& buffer : impl_->buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void Tracer::RecordManual(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns) {
  if (!enabled()) return;
  ThreadBuffer& buffer = impl_->LocalBuffer();
  SpanEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = buffer.tid;
  event.depth = buffer.depth;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(event);
}

void SpanGuard::Begin(const char* name) {
  Tracer& tracer = Tracer::Default();
  ThreadBuffer& buffer = tracer.impl_->LocalBuffer();
  name_ = name;
  depth_ = buffer.depth++;
  start_ns_ = Tracer::NowNs();
}

void SpanGuard::End() {
  const std::uint64_t end_ns = Tracer::NowNs();
  Tracer& tracer = Tracer::Default();
  ThreadBuffer& buffer = tracer.impl_->LocalBuffer();
  // Unbalanced Enable() between Begin and a nested Begin cannot underflow:
  // depth_ was captured from this thread's counter at Begin.
  buffer.depth = depth_;
  SpanEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  event.tid = buffer.tid;
  event.depth = depth_;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(event);
}

namespace {

void AppendJsonEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string Tracer::ChromeTraceJson() const {
  // Trace-event format: one complete ("X") event per span, timestamps in
  // microseconds. chrome://tracing / Perfetto reconstruct the nesting from
  // the ts/dur intervals per (pid, tid) lane.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : Events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, e.name);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"args\":{\"depth\":%u}}",
                  e.tid, static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.depth);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

std::string Tracer::TextSummary() const {
  struct Row {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  // std::map for deterministic (name-sorted) output.
  std::map<std::string, Row> rows;
  for (const SpanEvent& e : Events()) {
    Row& row = rows[e.name];
    ++row.count;
    row.total_ns += e.dur_ns;
  }
  std::string out =
      "span                                        count      total_ns       "
      "mean_ns\n";
  for (const auto& [name, row] : rows) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-40s %8llu %13llu %13llu\n",
                  name.c_str(), static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.total_ns),
                  static_cast<unsigned long long>(
                      row.count > 0 ? row.total_ns / row.count : 0));
    out += line;
  }
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok && written != json.size()) std::fclose(file);
  return ok;
}

namespace {

/// DBLL_TRACE=path enables tracing for the whole process and writes the
/// chrome trace at exit; DBLL_TRACE_SUMMARY=path-or-"stderr" writes the flat
/// text summary. Runs at load time of any binary linking dbll_obs.
struct EnvActivation {
  EnvActivation() {
    const char* trace = std::getenv("DBLL_TRACE");
    const char* summary = std::getenv("DBLL_TRACE_SUMMARY");
    if (trace == nullptr && summary == nullptr) return;
    Tracer::Default().Enable();
    std::atexit([] {
      const Tracer& tracer = Tracer::Default();
      if (const char* path = std::getenv("DBLL_TRACE")) {
        if (!tracer.WriteChromeTrace(path)) {
          std::fprintf(stderr, "dbll: cannot write DBLL_TRACE file %s\n",
                       path);
        }
      }
      if (const char* path = std::getenv("DBLL_TRACE_SUMMARY")) {
        const std::string text = tracer.TextSummary();
        if (std::string_view(path) == "stderr") {
          std::fputs(text.c_str(), stderr);
        } else if (std::FILE* file = std::fopen(path, "w")) {
          std::fwrite(text.data(), 1, text.size(), file);
          std::fclose(file);
        } else {
          std::fprintf(stderr,
                       "dbll: cannot write DBLL_TRACE_SUMMARY file %s\n",
                       path);
        }
      }
    });
  }
};

EnvActivation g_env_activation;

}  // namespace

}  // namespace dbll::obs
