// dbll -- SpMV builder and reference implementation.
#include "dbll/spmv/spmv.h"

#include <algorithm>
#include <random>
#include <set>

namespace dbll::spmv {

void CsrBuilder::Add(long row, long col, double value) {
  while (current_row_ < row) {
    ++current_row_;
    row_start_[static_cast<std::size_t>(current_row_) + 1] =
        row_start_[static_cast<std::size_t>(current_row_)];
  }
  col_idx_.push_back(col);
  values_.push_back(value);
  row_start_[static_cast<std::size_t>(row) + 1] =
      static_cast<long>(col_idx_.size());
}

CsrMatrix CsrBuilder::Finish() {
  while (current_row_ < rows_ - 1) {
    ++current_row_;
    row_start_[static_cast<std::size_t>(current_row_) + 1] =
        row_start_[static_cast<std::size_t>(current_row_)];
  }
  CsrMatrix m;
  m.rows = rows_;
  m.cols = cols_;
  m.row_start = row_start_.data();
  m.col_idx = col_idx_.data();
  m.values = values_.data();
  return m;
}

CsrBuilder CsrBuilder::Banded(long n, std::initializer_list<long> offsets,
                              double base_value) {
  CsrBuilder builder(n, n);
  for (long r = 0; r < n; ++r) {
    for (long offset : offsets) {
      const long c = r + offset;
      if (c >= 0 && c < n) {
        builder.Add(r, c, base_value / (1.0 + static_cast<double>(
                                                  offset < 0 ? -offset
                                                             : offset)));
      }
    }
  }
  return builder;
}

CsrBuilder CsrBuilder::Random(long n, int per_row, std::uint64_t seed) {
  CsrBuilder builder(n, n);
  std::mt19937_64 rng(seed);
  for (long r = 0; r < n; ++r) {
    std::set<long> cols;
    while (static_cast<int>(cols.size()) < per_row) {
      cols.insert(static_cast<long>(rng() % static_cast<std::uint64_t>(n)));
    }
    for (long c : cols) {
      builder.Add(r, c, 0.25 + static_cast<double>((rng() % 100)) * 0.01);
    }
  }
  return builder;
}

void SpmvReference(const CsrMatrix& m, const double* x, double* y) {
  for (long r = 0; r < m.rows; ++r) {
    double acc = 0.0;
    for (long j = m.row_start[r]; j < m.row_start[r + 1]; ++j) {
      acc += m.values[j] * x[m.col_idx[j]];
    }
    y[r] = acc;
  }
}

void SpmvAdaptive(const CsrMatrix& m, const double* x, double* y,
                  const std::function<RowKernel()>& provider, long poll_rows) {
  if (poll_rows < 1) poll_rows = 1;
  for (long r = 0; r < m.rows;) {
    RowKernel kernel = provider();
    const long chunk_end = std::min(m.rows, r + poll_rows);
    for (; r < chunk_end; ++r) {
      kernel(&m, x, y, r);
    }
  }
}

}  // namespace dbll::spmv
