// dbll -- SpMV case-study kernels; compiled with the controlled flag set so
// they stay within the supported instruction subset.
#include "dbll/spmv/spmv.h"

namespace dbll::spmv {

extern "C" {

void spmv_row(const CsrMatrix* m, const double* x, double* y, long row) {
  double acc = 0.0;
  const long begin = m->row_start[row];
  const long end = m->row_start[row + 1];
  for (long j = begin; j < end; j++) {
    acc += m->values[j] * x[m->col_idx[j]];
  }
  y[row] = acc;
}

void spmv_full(const CsrMatrix* m, const double* x, double* y, long rows) {
  for (long row = 0; row < rows; row++) {
    double acc = 0.0;
    const long begin = m->row_start[row];
    const long end = m->row_start[row + 1];
    for (long j = begin; j < end; j++) {
      acc += m->values[j] * x[m->col_idx[j]];
    }
    y[row] = acc;
  }
}

}  // extern "C"

}  // namespace dbll::spmv
