#include "dbll/elf/elf_reader.h"

#include <cstring>
#include <fstream>

namespace dbll::elf {
namespace {

// ELF64 structures (little-endian x86-64 subset).
struct Ehdr {
  std::uint8_t ident[16];
  std::uint16_t type;
  std::uint16_t machine;
  std::uint32_t version;
  std::uint64_t entry;
  std::uint64_t phoff;
  std::uint64_t shoff;
  std::uint32_t flags;
  std::uint16_t ehsize;
  std::uint16_t phentsize;
  std::uint16_t phnum;
  std::uint16_t shentsize;
  std::uint16_t shnum;
  std::uint16_t shstrndx;
};

struct Shdr {
  std::uint32_t name;
  std::uint32_t type;
  std::uint64_t flags;
  std::uint64_t addr;
  std::uint64_t offset;
  std::uint64_t size;
  std::uint32_t link;
  std::uint32_t info;
  std::uint64_t addralign;
  std::uint64_t entsize;
};

struct Sym {
  std::uint32_t name;
  std::uint8_t info;
  std::uint8_t other;
  std::uint16_t shndx;
  std::uint64_t value;
  std::uint64_t size;
};

struct Rela {
  std::uint64_t offset;
  std::uint64_t info;
  std::int64_t addend;
};

constexpr std::uint16_t kMachineX8664 = 62;
constexpr std::uint32_t kShtSymtab = 2;
constexpr std::uint32_t kShtStrtab = 3;
constexpr std::uint32_t kShtRela = 4;

// x86-64 relocation types the analysis image resolves.
constexpr std::uint32_t kR_X86_64_64 = 1;
constexpr std::uint32_t kR_X86_64_PC32 = 2;
constexpr std::uint32_t kR_X86_64_PLT32 = 4;
constexpr std::uint32_t kR_X86_64_32 = 10;
constexpr std::uint32_t kR_X86_64_32S = 11;

Error Malformed(const char* what) {
  return Error(ErrorKind::kBadConfig, std::string("malformed ELF: ") + what);
}

}  // namespace

Expected<ElfFile> ElfFile::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorKind::kBadConfig, "cannot open file: " + path);
  }
  std::vector<std::uint8_t> contents(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return Parse(std::move(contents));
}

Expected<ElfFile> ElfFile::Parse(std::vector<std::uint8_t> contents) {
  ElfFile file;
  file.contents_ = std::move(contents);
  const std::vector<std::uint8_t>& data = file.contents_;

  if (data.size() < sizeof(Ehdr)) return Malformed("truncated header");
  Ehdr ehdr;
  std::memcpy(&ehdr, data.data(), sizeof(ehdr));
  if (std::memcmp(ehdr.ident, "\x7f" "ELF", 4) != 0) {
    return Malformed("bad magic");
  }
  if (ehdr.ident[4] != 2) return Malformed("not ELF64");
  if (ehdr.ident[5] != 1) return Malformed("not little-endian");
  if (ehdr.machine != kMachineX8664) {
    return Error(ErrorKind::kUnsupported, "not an x86-64 ELF file");
  }
  file.type_ = ehdr.type;

  if (ehdr.shoff == 0 || ehdr.shnum == 0) return Malformed("no sections");
  if (ehdr.shentsize != sizeof(Shdr)) return Malformed("bad shentsize");
  if (ehdr.shoff + static_cast<std::uint64_t>(ehdr.shnum) * sizeof(Shdr) >
      data.size()) {
    return Malformed("section headers out of range");
  }

  std::vector<Shdr> shdrs(ehdr.shnum);
  std::memcpy(shdrs.data(), data.data() + ehdr.shoff,
              shdrs.size() * sizeof(Shdr));

  if (ehdr.shstrndx >= shdrs.size()) return Malformed("bad shstrndx");
  const Shdr& shstr = shdrs[ehdr.shstrndx];
  if (shstr.offset + shstr.size > data.size()) {
    return Malformed("section string table out of range");
  }
  auto section_name = [&](std::uint32_t off) -> std::string {
    if (off >= shstr.size) return {};
    const char* start =
        reinterpret_cast<const char*>(data.data() + shstr.offset + off);
    const std::size_t max = shstr.size - off;
    return std::string(start, strnlen(start, max));
  };

  // Assign synthetic virtual addresses to allocatable sections of
  // relocatable files (they have addr == 0): consecutive, 64-byte aligned.
  std::uint64_t reloc_cursor = 0x10000;
  file.section_vaddr_.resize(shdrs.size(), 0);

  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    const Shdr& shdr = shdrs[i];
    Section section;
    section.name = section_name(shdr.name);
    section.type = shdr.type;
    section.flags = shdr.flags;
    section.offset = shdr.offset;
    section.size = shdr.size;
    if (file.is_relocatable() && section.is_alloc()) {
      reloc_cursor = (reloc_cursor + 63) & ~63ull;
      section.vaddr = reloc_cursor;
      reloc_cursor += shdr.size;
    } else {
      section.vaddr = shdr.addr;
    }
    file.section_vaddr_[i] = section.vaddr;
    if (section.is_progbits() && !section.is_nobits() &&
        shdr.type != 8 /*NOBITS*/ &&
        section.offset + section.size > data.size()) {
      return Malformed("section data out of range");
    }
    file.sections_.push_back(std::move(section));
  }

  // Symbol table.
  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    const Shdr& shdr = shdrs[i];
    if (shdr.type != kShtSymtab) continue;
    if (shdr.entsize != sizeof(Sym) || shdr.link >= shdrs.size()) {
      return Malformed("bad symbol table");
    }
    const Shdr& strtab = shdrs[shdr.link];
    if (strtab.type != kShtStrtab ||
        strtab.offset + strtab.size > data.size()) {
      return Malformed("bad symbol string table");
    }
    if (shdr.offset + shdr.size > data.size()) {
      return Malformed("symbol table out of range");
    }
    const std::size_t count = shdr.size / sizeof(Sym);
    for (std::size_t s = 0; s < count; ++s) {
      Sym sym;
      std::memcpy(&sym, data.data() + shdr.offset + s * sizeof(Sym),
                  sizeof(sym));
      Symbol symbol;
      if (sym.name < strtab.size) {
        const char* start = reinterpret_cast<const char*>(
            data.data() + strtab.offset + sym.name);
        symbol.name.assign(start, strnlen(start, strtab.size - sym.name));
      }
      symbol.value = sym.value;
      symbol.size = sym.size;
      symbol.section_index = sym.shndx;
      symbol.is_function = (sym.info & 0xf) == 2;  // STT_FUNC
      symbol.is_global = (sym.info >> 4) == 1;     // STB_GLOBAL
      file.symbols_.push_back(std::move(symbol));
    }
  }

  return file;
}

Expected<Symbol> ElfFile::FindFunction(const std::string& name) const {
  for (const Symbol& symbol : symbols_) {
    if (symbol.is_function && symbol.name == name) {
      return symbol;
    }
  }
  return Error(ErrorKind::kBadConfig, "no function symbol named " + name);
}

Expected<std::uint64_t> ElfFile::SymbolVirtualAddress(
    const Symbol& symbol) const {
  if (!is_relocatable()) {
    return symbol.value;
  }
  if (symbol.section_index >= sections_.size()) {
    return Error(ErrorKind::kBadConfig, "symbol has no section");
  }
  return section_vaddr_[symbol.section_index] + symbol.value;
}

Expected<Image> ElfFile::LoadImage() const {
  std::uint64_t lo = UINT64_MAX;
  std::uint64_t hi = 0;
  for (const Section& section : sections_) {
    if (!section.is_alloc() || section.size == 0) continue;
    lo = std::min(lo, section.vaddr);
    hi = std::max(hi, section.vaddr + section.size);
  }
  if (lo >= hi) {
    return Error(ErrorKind::kBadConfig, "no allocatable sections");
  }
  if (hi - lo > (1ull << 31)) {
    return Error(ErrorKind::kResourceLimit, "image larger than 2 GiB");
  }
  Image image;
  image.base_vaddr_ = lo;
  image.bytes_.assign(hi - lo, 0);
  for (const Section& section : sections_) {
    if (!section.is_alloc() || section.size == 0) continue;
    if (section.is_nobits()) continue;  // .bss stays zeroed
    std::memcpy(image.bytes_.data() + (section.vaddr - lo),
                contents_.data() + section.offset, section.size);
  }

  // Relocatable files: resolve intra-file relocations against the synthetic
  // section layout so direct calls/jumps and data references work inside
  // the analysis image. References to undefined (external) symbols are left
  // untouched; following them reports a precise decode error.
  if (is_relocatable()) {
    for (std::size_t si = 0; si < sections_.size(); ++si) {
      const Section& rela_sec = sections_[si];
      if (rela_sec.type != kShtRela) continue;
      // sh_info names the section the relocations apply to; we stored it
      // implicitly by name convention ".rela<target>". Re-read the header
      // fields we kept: link -> symtab index is not stored in Section, so
      // parse the raw header again.
      if (rela_sec.offset + rela_sec.size > contents_.size()) continue;
      // Find the target section by name (".rela.text" -> ".text").
      if (rela_sec.name.rfind(".rela", 0) != 0) continue;
      const std::string target_name = rela_sec.name.substr(5);
      const Section* target = nullptr;
      for (const Section& candidate : sections_) {
        if (candidate.name == target_name && candidate.is_alloc()) {
          target = &candidate;
          break;
        }
      }
      if (target == nullptr || target->size == 0) continue;

      const std::size_t count = rela_sec.size / sizeof(Rela);
      for (std::size_t i = 0; i < count; ++i) {
        Rela rela;
        std::memcpy(&rela, contents_.data() + rela_sec.offset + i * sizeof(Rela),
                    sizeof(rela));
        const std::uint32_t sym_index =
            static_cast<std::uint32_t>(rela.info >> 32);
        const std::uint32_t type = static_cast<std::uint32_t>(rela.info);
        if (sym_index >= symbols_.size()) continue;
        const Symbol& sym = symbols_[sym_index];
        if (sym.section_index == 0 || sym.section_index >= sections_.size()) {
          continue;  // undefined/external: leave unresolved
        }
        const std::uint64_t s_value =
            section_vaddr_[sym.section_index] + sym.value;
        const std::uint64_t place = target->vaddr + rela.offset;
        const std::uint64_t patch_size = type == kR_X86_64_64 ? 8 : 4;
        if (place < lo || place + patch_size > lo + image.bytes_.size()) {
          continue;
        }
        std::uint8_t* patch = image.bytes_.data() + (place - lo);
        switch (type) {
          case kR_X86_64_PC32:
          case kR_X86_64_PLT32: {
            const std::int64_t value = static_cast<std::int64_t>(s_value) +
                                       rela.addend -
                                       static_cast<std::int64_t>(place);
            const std::int32_t v32 = static_cast<std::int32_t>(value);
            std::memcpy(patch, &v32, 4);
            break;
          }
          case kR_X86_64_32:
          case kR_X86_64_32S: {
            const std::int64_t value =
                static_cast<std::int64_t>(s_value) + rela.addend;
            const std::int32_t v32 = static_cast<std::int32_t>(value);
            std::memcpy(patch, &v32, 4);
            break;
          }
          case kR_X86_64_64: {
            const std::int64_t value =
                static_cast<std::int64_t>(s_value) + rela.addend;
            std::memcpy(patch, &value, 8);
            break;
          }
          default:
            break;  // GOT/TLS flavours: leave unresolved
        }
      }
    }
  }
  return image;
}

}  // namespace dbll::elf
