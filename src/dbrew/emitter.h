// dbll -- staged code emission for the DBrew backend (internal).
//
// Emulation appends instructions to EmitBlocks; branches between blocks are
// recorded symbolically (by block id) because target addresses are unknown
// until layout. Layout() places all blocks into a CodeBuffer, encodes the
// instructions, appends the constant pool (used to materialize known SSE
// values), and patches every recorded fixup.
#pragma once

#include <cstdint>
#include <vector>

#include "dbll/support/code_buffer.h"
#include "dbll/support/error.h"
#include "dbll/x86/insn.h"

namespace dbll::dbrew {

/// One emitted element: a regular instruction, a branch to another emitted
/// block, or a constant-pool reference (RIP-relative load patched at layout).
struct EmitEntry {
  enum class Kind : std::uint8_t {
    kInstr,      ///< encode as-is (Instr::target already absolute if used)
    kBranch,     ///< jmp/jcc to `block` (rel32 patched at layout)
    kPoolLoad,   ///< RIP-relative load from constant pool entry `pool_index`
  };

  Kind kind = Kind::kInstr;
  x86::Instr instr;
  int block = -1;
  std::size_t pool_index = 0;
};

struct EmitBlock {
  std::vector<EmitEntry> entries;
  /// Layout result: address of the first encoded byte.
  std::uint64_t address = 0;
};

class CodeEmitter {
 public:
  int NewBlock() {
    blocks_.emplace_back();
    return static_cast<int>(blocks_.size() - 1);
  }
  EmitBlock& Block(int id) { return blocks_[static_cast<std::size_t>(id)]; }
  std::size_t block_count() const { return blocks_.size(); }

  void Append(int block, const x86::Instr& instr) {
    EmitEntry entry;
    entry.instr = instr;
    blocks_[static_cast<std::size_t>(block)].entries.push_back(entry);
  }
  /// Appends `jmp <target block>` (or `jcc` when instr.mnemonic == kJcc).
  void AppendBranch(int block, x86::Mnemonic mnemonic, x86::Cond cond,
                    int target) {
    EmitEntry entry;
    entry.kind = EmitEntry::Kind::kBranch;
    entry.instr.mnemonic = mnemonic;
    entry.instr.cond = cond;
    entry.block = target;
    blocks_[static_cast<std::size_t>(block)].entries.push_back(entry);
  }
  /// Appends an instruction whose memory operand must point at 16 bytes of
  /// constant data; returns nothing, data is pooled and deduplicated.
  void AppendPoolLoad(int block, const x86::Instr& instr, std::uint64_t lo,
                      std::uint64_t hi);

  /// Total number of emitted instructions across all blocks.
  std::size_t TotalEntries() const;

  /// Encodes all blocks into `buffer` in block-id order, appends the constant
  /// pool, patches branch and pool fixups, and returns the address of block 0.
  Expected<std::uint64_t> Layout(CodeBuffer& buffer);

 private:
  std::vector<EmitBlock> blocks_;
  struct PoolEntry {
    std::uint64_t lo;
    std::uint64_t hi;
  };
  std::vector<PoolEntry> pool_;
};

/// Deletes emitted instructions whose results are provably never observed:
/// backward register/flag liveness (src/analysis) over the emitted blocks,
/// then a reverse sweep dropping side-effect-free instructions none of whose
/// definitions are live. Specialization routinely leaves such stores behind --
/// an address computation feeding a folded branch, flag updates of a resolved
/// comparison. Runs between emulation and Layout(); returns the number of
/// entries removed. (src/dbrew/prune.cpp)
std::size_t PruneDeadStores(CodeEmitter& emitter);

}  // namespace dbll::dbrew
