#include "dbll/dbrew/rewriter.h"

#include <chrono>
#include <cstdio>

#include "emitter.h"
#include "emulator.h"

namespace dbll::dbrew {

Rewriter::Rewriter(std::uint64_t function) : function_(function) {}

void Rewriter::SetParam(int index, std::uint64_t value) {
  for (auto& [existing_index, existing_value] : fixed_params_) {
    if (existing_index == index) {
      existing_value = value;
      return;
    }
  }
  fixed_params_.emplace_back(index, value);
}

void Rewriter::SetMemRange(std::uint64_t start, std::uint64_t end) {
  fixed_ranges_.push_back(FixedMemRange{start, end});
}

Expected<std::uint64_t> Rewriter::Rewrite() {
  const auto rewrite_start = std::chrono::steady_clock::now();
  const auto record_time = [&] {
    stats_.rewrite_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - rewrite_start)
            .count());
  };
  last_error_ = Error();
  stats_ = Stats{};

  DBLL_TRY(CodeBuffer buffer,
           CodeBuffer::AllocateNear(function_, config_.code_buffer_size));
  buffer_ = std::move(buffer);

  CodeEmitter emitter;
  Emulator emulator(function_, config_, fixed_params_, fixed_ranges_, emitter);
  {
    Status status = emulator.Run();
    if (!status.ok()) {
      last_error_ = status.error();
      return status.error();
    }
  }
  stats_ = emulator.stats();

  auto entry = emitter.Layout(buffer_);
  if (!entry) {
    last_error_ = entry.error();
    return std::move(entry).error();
  }
  stats_.code_bytes = buffer_.used();

  {
    Status status = buffer_.Seal();
    if (!status.ok()) {
      last_error_ = status.error();
      return status.error();
    }
  }
  record_time();
  return *entry;
}

std::uint64_t Rewriter::RewriteOrOriginal() {
  auto result = Rewrite();
  if (result) return *result;
  if (result.error().kind() == ErrorKind::kResourceLimit) {
    // The paper's suggested recovery: enlarge the buffer and retry once.
    config_.code_buffer_size *= 4;
    config_.max_blocks *= 4;
    auto retry = Rewrite();
    if (retry) return *retry;
  }
  return function_;
}

std::span<const std::uint8_t> Rewriter::code() const {
  return {buffer_.data(), buffer_.used()};
}

}  // namespace dbll::dbrew
