#include "dbll/dbrew/rewriter.h"

#include <chrono>
#include <cstdio>

#include "dbll/obs/obs.h"
#include "dbll/support/fault.h"
#include "emitter.h"
#include "emulator.h"

namespace dbll::dbrew {

namespace {

/// Mirrors one successful rewrite's Stats into the process-wide metrics
/// registry (cumulative across every Rewriter in the process). Handles are
/// resolved once; the adds are relaxed atomics.
void PublishStats(const Rewriter::Stats& stats) {
  namespace obs = dbll::obs;
  obs::Registry& registry = obs::Registry::Default();
  static obs::Counter& rewrites = registry.GetCounter("rewriter.rewrites");
  static obs::Counter& emulated =
      registry.GetCounter("rewriter.emulated_instrs");
  static obs::Counter& emitted = registry.GetCounter("rewriter.emitted_instrs");
  static obs::Counter& folded = registry.GetCounter("rewriter.folded_instrs");
  static obs::Counter& pruned = registry.GetCounter("rewriter.pruned_instrs");
  static obs::Counter& inlined = registry.GetCounter("rewriter.inlined_calls");
  static obs::Counter& blocks = registry.GetCounter("rewriter.blocks");
  static obs::Counter& code_bytes = registry.GetCounter("rewriter.code_bytes");
  static obs::Histogram& wall = registry.GetHistogram("rewriter.rewrite_ns");
  rewrites.Add(1);
  emulated.Add(stats.emulated_instrs);
  emitted.Add(stats.emitted_instrs);
  folded.Add(stats.folded_instrs);
  pruned.Add(stats.pruned_instrs);
  inlined.Add(stats.inlined_calls);
  blocks.Add(stats.blocks);
  code_bytes.Add(stats.code_bytes);
  wall.Record(stats.rewrite_ns);
}

}  // namespace

Rewriter::Rewriter(std::uint64_t function) : function_(function) {}

void Rewriter::SetParam(int index, std::uint64_t value) {
  for (auto& [existing_index, existing_value] : fixed_params_) {
    if (existing_index == index) {
      existing_value = value;
      return;
    }
  }
  fixed_params_.emplace_back(index, value);
}

void Rewriter::SetMemRange(std::uint64_t start, std::uint64_t end) {
  fixed_ranges_.push_back(FixedMemRange{start, end});
}

Expected<std::uint64_t> Rewriter::Rewrite() {
  DBLL_TRACE_SPAN("rewrite");
  const auto rewrite_start = std::chrono::steady_clock::now();
  const auto record_time = [&] {
    stats_.rewrite_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - rewrite_start)
            .count());
  };
  last_error_ = Error();
  stats_ = Stats{};

  // Manual fault site (not DBLL_FAULT_POINT): the injected error must also
  // land in last_error_, which the macro's plain `return` would skip.
  if (fault::AnyArmed()) {
    if (auto injected = fault::Hit("rewrite.function")) {
      last_error_ = *std::move(injected);
      return last_error_;
    }
  }

  // The C++ surface is 0-based (register parameters rdi..r9); the C
  // dbrew_setpar/dbll_rewriter_setpar convention is 1-based.
  for (const auto& [index, value] : fixed_params_) {
    (void)value;
    if (index < 0 || index > 5) {
      last_error_ = Error(
          ErrorKind::kBadConfig,
          "parameter index " + std::to_string(index) +
              " out of range: Rewriter::SetParam is 0-based (0..5); the C "
              "APIs dbrew_setpar/dbll_rewriter_setpar are 1-based (1..6)");
      return last_error_;
    }
  }

  DBLL_TRY(CodeBuffer buffer,
           CodeBuffer::AllocateNear(function_, config_.code_buffer_size));
  buffer_ = std::move(buffer);

  CodeEmitter emitter;
  Emulator emulator(function_, config_, fixed_params_, fixed_ranges_, emitter);
  {
    // Decode + meta-emulation: the emulator drives the decoder directly.
    DBLL_TRACE_SPAN("rewrite.emulate");
    Status status = emulator.Run();
    if (!status.ok()) {
      last_error_ = status.error();
      return status.error();
    }
  }
  stats_ = emulator.stats();

  if (config_.prune_dead_stores) {
    DBLL_TRACE_SPAN("rewrite.prune");
    stats_.pruned_instrs = PruneDeadStores(emitter);
    stats_.emitted_instrs -= stats_.pruned_instrs;
  }

  std::uint64_t entry_address = 0;
  {
    DBLL_TRACE_SPAN("rewrite.encode");
    auto entry = emitter.Layout(buffer_);
    if (!entry) {
      last_error_ = entry.error();
      return std::move(entry).error();
    }
    entry_address = *entry;
    stats_.code_bytes = buffer_.used();

    Status status = buffer_.Seal();
    if (!status.ok()) {
      last_error_ = status.error();
      return status.error();
    }
  }
  record_time();
  PublishStats(stats_);
  return entry_address;
}

std::uint64_t Rewriter::RewriteOrOriginal() {
  auto result = Rewrite();
  if (result) return *result;
  if (result.error().kind() == ErrorKind::kResourceLimit) {
    // The paper's suggested recovery: enlarge the buffer and retry once.
    config_.code_buffer_size *= 4;
    config_.max_blocks *= 4;
    auto retry = Rewrite();
    if (retry) return *retry;
  }
  return function_;
}

std::span<const std::uint8_t> Rewriter::code() const {
  return {buffer_.data(), buffer_.used()};
}

}  // namespace dbll::dbrew
