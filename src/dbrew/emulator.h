// dbll -- the DBrew meta-emulation engine (internal).
//
// Partially evaluates a compiled function under a specialization
// configuration. See include/dbll/dbrew/meta_state.h for the state model and
// rewriter.h for the public API. The engine walks the original instruction
// stream, folding instructions whose inputs are known at rewrite time and
// re-emitting (with operands rewritten to immediates where possible)
// everything else. Conditional branches with known conditions are resolved,
// which fully unrolls loops over known trip counts; branches with unknown
// conditions split the specialization into per-state blocks that are
// de-duplicated by (address, state) keys.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "alu_eval.h"
#include "dbll/dbrew/meta_state.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/support/error.h"
#include "emitter.h"

namespace dbll::dbrew {

class Emulator {
 public:
  Emulator(std::uint64_t function, const RewriterConfig& config,
           std::span<const std::pair<int, std::uint64_t>> fixed_params,
           std::span<const FixedMemRange> fixed_ranges, CodeEmitter& emitter);

  /// Runs the specialization; on success block 0 of the emitter is the entry.
  Status Run();

  const Rewriter::Stats& stats() const { return stats_; }

 private:
  // -- Resolution of memory addresses against the meta state ---------------
  struct AddrInfo {
    enum class Kind { kConst, kStack, kRuntime } kind = Kind::kRuntime;
    std::uint64_t abs = 0;      // kConst
    std::int64_t delta = 0;     // kStack: offset from entry rsp
  };
  AddrInfo Resolve(const x86::Instr& instr, const x86::MemOperand& mem) const;

  bool InFixedRange(std::uint64_t address, std::size_t size) const;

  /// Reads up to 8 known bytes through an operand; returns false when the
  /// value is not known at rewrite time.
  bool ReadKnown(const x86::Instr& instr, const x86::Operand& op,
                 std::uint64_t* value) const;
  /// Reads a known 16/8/4-byte vector operand (register or memory).
  bool ReadKnownVec(const x86::Instr& instr, const x86::Operand& op,
                    std::uint64_t* lo, std::uint64_t* hi) const;

  bool ReadStackBytes(std::int64_t delta, std::size_t size,
                      std::uint64_t* value) const;
  void WriteStackBytes(std::int64_t delta, std::size_t size,
                       std::uint64_t value);
  void EraseStackBytes(std::int64_t delta, std::size_t size);

  // -- Meta-state mutation --------------------------------------------------
  /// Records a known value produced by a *folded* write to a register.
  /// Returns false when the write cannot be folded (partial write on an
  /// unknown register).
  bool FoldWriteGp(const x86::Operand& op, std::uint64_t value);
  /// Marks a register as runtime-written by an emitted instruction.
  void RuntimeWriteGp(const x86::Operand& op);
  void RuntimeWriteVec(const x86::Operand& op);
  /// Installs flag results from a folded instruction.
  void SetFlags(const MetaFlag* flags, bool writes_flags);
  void ClobberFlags(const x86::Instr& instr);
  void ClobberCallerSaved();

  // -- Emission helpers -----------------------------------------------------
  Status MaterializeGp(x86::Reg reg);
  Status MaterializeVec(x86::Reg reg);
  /// Prepares and appends `instr` to the current block: materializes or
  /// immediate-folds known-but-unmaterialized inputs, rewrites memory
  /// operands, updates meta state for written registers and flags, and
  /// updates the stack map for stores.
  Status EmitInstr(x86::Instr instr);
  /// Appends a synthesized `mov reg, imm` materialization.
  void AppendMov(x86::Reg reg, std::uint64_t value);

  // -- Control flow ---------------------------------------------------------
  struct WorkItem {
    std::uint64_t address;
    MetaState state;
    int block;
  };

  /// Returns the emit-block id for (address, state); creates the block and
  /// queues a work item when the pair has not been seen. `created` reports
  /// whether a new block was made.
  Expected<int> StartBlock(std::uint64_t address, const MetaState& state);
  /// Widens the current state if `address` has been specialized too often:
  /// known register values that *changed* since the first visit of the
  /// address (e.g. unrolled loop counters) are materialized into the code
  /// and forgotten; loop-invariant knowledge (e.g. a fixed descriptor
  /// pointer) survives, so inlining through it keeps working.
  Status MaybeWiden(std::uint64_t address);
  void Widen(std::uint64_t address);

  Status ProcessItem(WorkItem item);

  enum class StepKind { kNext, kGoto, kSplit, kDone };
  struct StepResult {
    StepKind kind = StepKind::kNext;
    std::uint64_t target = 0;       // kGoto / kSplit taken successor
    std::uint64_t fall_through = 0; // kSplit not-taken successor
    x86::Cond cond = x86::Cond::kO; // kSplit condition
  };
  Expected<StepResult> Step(const x86::Instr& instr);

  Expected<StepResult> StepIntAlu(const x86::Instr& instr);
  Expected<StepResult> StepMov(const x86::Instr& instr);
  Expected<StepResult> StepSse(const x86::Instr& instr);
  Expected<StepResult> StepMulDiv(const x86::Instr& instr);
  Expected<StepResult> StepStack(const x86::Instr& instr);
  Expected<StepResult> StepBranch(const x86::Instr& instr);

  std::uint64_t function_;
  const RewriterConfig& config_;
  std::vector<std::pair<int, std::uint64_t>> fixed_params_;
  std::vector<FixedMemRange> fixed_ranges_;
  CodeEmitter& emitter_;

  MetaState state_;
  int cur_block_ = -1;
  std::vector<WorkItem> worklist_;
  std::map<std::string, int> visited_;
  std::map<std::uint64_t, std::size_t> specialize_count_;
  /// State at the first specialization of each address, for value-aware
  /// widening.
  std::map<std::uint64_t, MetaState> first_seen_;
  Rewriter::Stats stats_;
};

}  // namespace dbll::dbrew
