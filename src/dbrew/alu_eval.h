// dbll -- rewrite-time evaluation of instruction semantics (internal).
//
// Pure value-level semantics used by the DBrew meta-emulator to fold
// instructions whose inputs are all known. Every function here mirrors the
// architectural behaviour including flag results; flags an instruction leaves
// undefined are reported as unknown.
#pragma once

#include <cstdint>
#include <optional>

#include "dbll/dbrew/meta_state.h"
#include "dbll/x86/insn.h"

namespace dbll::dbrew {

/// Result of evaluating an integer instruction: the (size-masked) value and
/// the six status flags. `flag_known[i]` is false for flags the instruction
/// leaves undefined or does not write.
struct IntResult {
  std::uint64_t value = 0;
  bool writes_flags = false;
  MetaFlag flags[x86::kFlagCount];
};

/// Masks `value` to `size` bytes.
std::uint64_t MaskToSize(std::uint64_t value, std::uint8_t size);

/// Sign-extends the `size`-byte value to 64 bits.
std::int64_t SignExtend(std::uint64_t value, std::uint8_t size);

/// Evaluates a binary/unary integer ALU operation with known inputs.
/// `a` is the destination/first operand, `b` the source (ignored for unary
/// ops). `carry_in` must be provided for adc/sbb. Returns std::nullopt when
/// the mnemonic has no rewrite-time evaluator.
std::optional<IntResult> EvalInt(x86::Mnemonic mnemonic, std::uint64_t a,
                                 std::uint64_t b, std::uint8_t size,
                                 bool carry_in = false);

/// Evaluates a condition code against known flags. Returns std::nullopt when
/// any required flag is unknown.
std::optional<bool> EvalCond(x86::Cond cond, const MetaFlag* flags);

/// Partial evaluation of a condition against a *mix* of known and runtime
/// flags: a known flag may decide the condition outright or reduce it to a
/// residual condition that only reads runtime flags (e.g. `a` with ZF known
/// to be 0 becomes `ae`). kUnresolved means the mix is not expressible as a
/// single condition code.
struct CondResolution {
  enum class Kind { kTrue, kFalse, kCond, kUnresolved } kind;
  x86::Cond cond = x86::Cond::kO;  // valid for kCond
};
CondResolution ResolveCond(x86::Cond cond, const MetaFlag* flags);

/// 128-bit value for SSE evaluation.
struct Vec128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Result of evaluating an SSE instruction with known inputs.
struct VecResult {
  Vec128 value;
  bool writes_flags = false;  // ucomis*/comis*
  MetaFlag flags[x86::kFlagCount];
};

/// Evaluates an SSE operation: `dst` is the first (destination) register
/// value, `src` the second operand value (for memory operands of fewer than
/// 16 bytes, the loaded bytes are in `src.lo`). `imm` carries the immediate
/// of shufps/shufpd/pshufd. Returns std::nullopt when the mnemonic has no
/// evaluator.
std::optional<VecResult> EvalVec(x86::Mnemonic mnemonic, Vec128 dst,
                                 Vec128 src, std::uint8_t src_size,
                                 std::uint8_t imm = 0);

}  // namespace dbll::dbrew
