// dbll -- dead-store elimination over the DBrew emitter's staged code.
//
// The meta-emulator folds instructions whose *inputs* are known, but it
// re-emits every instruction whose result it cannot compute -- including ones
// whose result is never used again because the consumer itself was folded
// (a comparison resolved at rewrite time, an address computation feeding an
// unrolled branch). This pass runs the analysis library's backward liveness
// over the emitted blocks and deletes those leftovers before layout.
//
// Deletion is only applied where the effect summary is exact and side-effect
// free: the mnemonic is fully modeled (InstrEffects::known), it writes no
// memory, and -- except for constant-pool loads, whose source is always
// readable -- touches no memory operand at all, so removing it cannot
// suppress a fault. For such instructions `defs` covers everything written
// (registers from the operand/implicit-register conventions, flags from
// x86::FlagEffectsOf), which is what makes "defs all dead => removable"
// sound. div/idiv stay regardless because they can raise #DE.
#include <cstddef>
#include <vector>

#include "dbll/analysis/dataflow.h"
#include "dbll/analysis/liveness.h"
#include "dbll/x86/insn.h"
#include "emitter.h"

namespace dbll::dbrew {
namespace {

using analysis::InstrEffects;
using analysis::LocSet;
using x86::Mnemonic;

/// Effects of one staged entry. Symbolic branches carry no encodable operands
/// yet: a jcc reads its condition's flags, an unconditional jmp reads nothing.
InstrEffects EntryEffects(const EmitEntry& entry) {
  if (entry.kind == EmitEntry::Kind::kBranch) {
    InstrEffects effects;
    if (entry.instr.mnemonic == Mnemonic::kJcc) {
      effects.uses = LocSet::FromFlagMask(x86::CondFlagUses(entry.instr.cond));
    }
    return effects;
  }
  return analysis::EffectsOf(entry.instr);
}

bool HasMemOperand(const x86::Instr& instr) {
  for (int i = 0; i < instr.op_count; ++i) {
    if (instr.ops[i].is_mem()) return true;
  }
  return false;
}

/// True when deleting the entry is observationally equivalent provided all of
/// its definitions are dead.
bool Deletable(const EmitEntry& entry, const InstrEffects& effects) {
  if (entry.kind == EmitEntry::Kind::kBranch) return false;
  if (!effects.known || effects.writes_memory) return false;
  if (effects.defs.empty()) return false;  // nop-likes: nothing to gain
  switch (entry.instr.mnemonic) {
    case Mnemonic::kCall:
    case Mnemonic::kRet:
    case Mnemonic::kDiv:   // may raise #DE even with a dead quotient
    case Mnemonic::kIdiv:
      return false;
    default:
      break;
  }
  // Loads can fault; only the constant pool is known-readable.
  if (entry.kind == EmitEntry::Kind::kInstr && HasMemOperand(entry.instr)) {
    return false;
  }
  return true;
}

/// True when control cannot fall off the end of the block into the next one.
bool EndsWithUnconditionalExit(const EmitBlock& block) {
  if (block.entries.empty()) return false;
  const EmitEntry& last = block.entries.back();
  if (last.kind == EmitEntry::Kind::kBranch) {
    return last.instr.mnemonic == Mnemonic::kJmp;
  }
  return last.instr.mnemonic == Mnemonic::kRet;
}

}  // namespace

std::size_t PruneDeadStores(CodeEmitter& emitter) {
  const std::size_t block_count = emitter.block_count();
  if (block_count == 0) return 0;

  // Successor edges: every symbolic branch target, plus the implicit
  // fall-through to the next block in layout order (blocks are encoded in id
  // order) unless the block ends with jmp or ret.
  analysis::Graph graph;
  graph.succs.resize(block_count);
  graph.preds.resize(block_count);
  for (std::size_t i = 0; i < block_count; ++i) {
    const EmitBlock& block = emitter.Block(static_cast<int>(i));
    for (const EmitEntry& entry : block.entries) {
      if (entry.kind == EmitEntry::Kind::kBranch && entry.block >= 0) {
        graph.succs[i].push_back(entry.block);
      }
    }
    if (i + 1 < block_count && !EndsWithUnconditionalExit(block)) {
      graph.succs[i].push_back(static_cast<int>(i + 1));
    }
  }
  for (std::size_t i = 0; i < block_count; ++i) {
    for (int succ : graph.succs[i]) {
      graph.preds[static_cast<std::size_t>(succ)].push_back(
          static_cast<int>(i));
    }
  }

  // Per-block transfer by forward composition, exactly as in liveness.cpp.
  std::vector<analysis::Transfer> transfers(block_count);
  for (std::size_t i = 0; i < block_count; ++i) {
    const EmitBlock& block = emitter.Block(static_cast<int>(i));
    analysis::Transfer& t = transfers[i];
    for (const EmitEntry& entry : block.entries) {
      const InstrEffects effects = EntryEffects(entry);
      t.gen |= effects.uses - t.kill;
      t.kill |= effects.kills;
    }
  }

  // Exit liveness is carried by the ret instructions themselves (EffectsOf
  // models the ABI return/callee-saved reads), so the boundary is empty.
  const analysis::DataflowResult solution = analysis::Solve(
      analysis::Direction::kBackward, graph, transfers, LocSet());

  // Reverse sweep: a deletable entry with no live definition is dropped and
  // contributes nothing to the running live set.
  std::size_t pruned = 0;
  for (std::size_t i = 0; i < block_count; ++i) {
    EmitBlock& block = emitter.Block(static_cast<int>(i));
    LocSet live = solution.out[i];
    std::vector<bool> keep(block.entries.size(), true);
    std::size_t pruned_here = 0;
    for (std::size_t e = block.entries.size(); e-- > 0;) {
      const EmitEntry& entry = block.entries[e];
      const InstrEffects effects = EntryEffects(entry);
      if (Deletable(entry, effects) && !live.Intersects(effects.defs)) {
        keep[e] = false;
        ++pruned_here;
        continue;
      }
      live = (live - effects.kills) | effects.uses;
    }
    if (pruned_here == 0) continue;
    pruned += pruned_here;
    std::size_t out = 0;
    for (std::size_t e = 0; e < block.entries.size(); ++e) {
      if (keep[e]) block.entries[out++] = block.entries[e];
    }
    block.entries.resize(out);
  }
  return pruned;
}

}  // namespace dbll::dbrew
