#include "emulator.h"

#include <cstdio>
#include <cstring>

#include "dbll/x86/decoder.h"
#include "dbll/x86/printer.h"

namespace dbll::dbrew {
namespace {

using x86::Cond;
using x86::Flag;
using x86::Instr;
using x86::MemOperand;
using x86::Mnemonic;
using x86::OpKind;
using x86::Operand;
using x86::Reg;
using x86::RegClass;

/// SysV AMD64 integer argument registers, by parameter index.
constexpr Reg kParamRegs[6] = {x86::kRdi, x86::kRsi, x86::kRdx,
                               x86::kRcx, x86::kR8,  x86::kR9};

bool FitsInt32(std::uint64_t value, std::uint8_t size) {
  // An imm32 is sign-extended to the operand size; substitution is valid iff
  // the extension reproduces the desired value.
  const std::int64_t wanted = SignExtend(value, size);
  return wanted >= INT32_MIN && wanted <= INT32_MAX;
}

/// True when the instruction writes its first operand (register or memory).
bool WritesFirstOperand(Mnemonic m) {
  switch (m) {
    case Mnemonic::kCmp: case Mnemonic::kTest: case Mnemonic::kBt:
    case Mnemonic::kUcomiss: case Mnemonic::kUcomisd:
    case Mnemonic::kComiss: case Mnemonic::kComisd:
    case Mnemonic::kPush: case Mnemonic::kJmp: case Mnemonic::kJcc:
    case Mnemonic::kCall: case Mnemonic::kRet:
      return false;
    default:
      return true;
  }
}

/// True for pure data moves: the value written to the first operand is
/// exactly the second operand (so a store's known value can be recorded).
bool IsPlainStore(Mnemonic m) {
  switch (m) {
    case Mnemonic::kMov: case Mnemonic::kMovss: case Mnemonic::kMovsdX:
    case Mnemonic::kMovaps: case Mnemonic::kMovapd: case Mnemonic::kMovups:
    case Mnemonic::kMovupd: case Mnemonic::kMovdqa: case Mnemonic::kMovdqu:
    case Mnemonic::kMovd: case Mnemonic::kMovq:
      return true;
    default:
      return false;
  }
}

/// True for mnemonics whose second operand accepts an immediate encoding.
bool AllowsImmSource(Mnemonic m) {
  switch (m) {
    case Mnemonic::kAdd: case Mnemonic::kAdc: case Mnemonic::kSub:
    case Mnemonic::kSbb: case Mnemonic::kCmp: case Mnemonic::kAnd:
    case Mnemonic::kOr: case Mnemonic::kXor: case Mnemonic::kTest:
    case Mnemonic::kMov:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MetaState::Key
// ---------------------------------------------------------------------------

std::string MetaState::Key(std::uint64_t address) const {
  std::string key;
  key.reserve(256);
  auto put64 = [&key](std::uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), 8);
  };
  put64(address);
  for (const MetaValue& v : gp) {
    key.push_back(static_cast<char>(v.kind));
    if (!v.is_unknown()) {
      put64(v.value);
      key.push_back(v.materialized ? 1 : 0);
    }
  }
  for (const MetaXmm& v : vec) {
    key.push_back(v.known ? 1 : 0);
    if (v.known) {
      put64(v.lo);
      put64(v.hi);
      key.push_back(v.materialized ? 1 : 0);
    }
  }
  for (const MetaFlag& f : flags) {
    key.push_back(static_cast<char>((f.known ? 2 : 0) | (f.value ? 1 : 0)));
  }
  put64(stack.size());
  for (const auto& [delta, byte] : stack) {
    put64(static_cast<std::uint64_t>(delta));
    key.push_back(static_cast<char>(byte));
  }
  put64(return_stack.size());
  for (std::uint64_t addr : return_stack) put64(addr);
  return key;
}

// ---------------------------------------------------------------------------
// Construction / main loop
// ---------------------------------------------------------------------------

Emulator::Emulator(std::uint64_t function, const RewriterConfig& config,
                   std::span<const std::pair<int, std::uint64_t>> fixed_params,
                   std::span<const FixedMemRange> fixed_ranges,
                   CodeEmitter& emitter)
    : function_(function),
      config_(config),
      fixed_params_(fixed_params.begin(), fixed_params.end()),
      fixed_ranges_(fixed_ranges.begin(), fixed_ranges.end()),
      emitter_(emitter) {}

Status Emulator::Run() {
  MetaState init;
  for (const auto& [index, value] : fixed_params_) {
    if (index < 0 || index >= 6) {
      return Error(ErrorKind::kBadConfig,
                   "only register parameters 0..5 can be fixed");
    }
    init.Gp(kParamRegs[index]) = MetaValue::Const(value, /*materialized=*/false);
  }

  DBLL_TRY(int entry, StartBlock(function_, init));
  if (entry != 0) {
    return Error(ErrorKind::kInternal, "entry block must be block 0");
  }
  while (!worklist_.empty()) {
    WorkItem item = std::move(worklist_.back());
    worklist_.pop_back();
    DBLL_TRY_STATUS(ProcessItem(std::move(item)));
  }
  stats_.blocks = emitter_.block_count();
  return Status::Ok();
}

Expected<int> Emulator::StartBlock(std::uint64_t address,
                                   const MetaState& state) {
  const std::string key = state.Key(address);
  auto it = visited_.find(key);
  if (it != visited_.end()) {
    return it->second;
  }
  if (emitter_.block_count() >= config_.max_blocks) {
    return Error(ErrorKind::kResourceLimit,
                 "specialization block limit exceeded", address);
  }
  if (++specialize_count_[address] == 1) {
    first_seen_.emplace(address, state);
  }
  const int id = emitter_.NewBlock();
  visited_.emplace(key, id);
  worklist_.push_back(WorkItem{address, state, id});
  return id;
}

Status Emulator::MaybeWiden(std::uint64_t address) {
  auto it = specialize_count_.find(address);
  if (it == specialize_count_.end() || it->second < config_.unroll_cap) {
    return Status::Ok();
  }
  Widen(address);
  return Status::Ok();
}

void Emulator::Widen(std::uint64_t address) {
  if (config_.verbose) {
    std::fprintf(stderr, "dbrew: widening state (unroll cap reached)\n");
  }
  auto seen_it = first_seen_.find(address);
  const MetaState* seen = seen_it != first_seen_.end() ? &seen_it->second
                                                       : nullptr;

  for (int i = 0; i < x86::kGpRegCount; ++i) {
    MetaValue& v = state_.gp[i];
    if (!v.is_const()) continue;
    // Loop-invariant knowledge survives widening: if the register held the
    // same constant at the first specialization of this address, later
    // visits will too. Materialize it (canonical state) but keep the value.
    const bool invariant = seen != nullptr && seen->gp[i].is_const() &&
                           seen->gp[i].value == v.value;
    if (!v.materialized) {
      AppendMov(x86::Gp(static_cast<std::uint8_t>(i)), v.value);
      v.materialized = true;
    }
    if (!invariant) {
      v = MetaValue::Unknown();
    }
  }
  for (int i = 0; i < x86::kVecRegCount; ++i) {
    MetaXmm& v = state_.vec[i];
    if (!v.known) continue;
    const bool invariant = seen != nullptr && seen->vec[i].known &&
                           seen->vec[i].lo == v.lo && seen->vec[i].hi == v.hi;
    if (!v.materialized) {
      (void)MaterializeVec(x86::Xmm(static_cast<std::uint8_t>(i)));
      v.materialized = true;
    }
    if (!invariant) {
      v = MetaXmm{};
    }
  }
  // Stack knowledge: keep only bytes identical to the first visit.
  if (seen != nullptr) {
    for (auto it2 = state_.stack.begin(); it2 != state_.stack.end();) {
      auto ref = seen->stack.find(it2->first);
      if (ref == seen->stack.end() || ref->second != it2->second) {
        it2 = state_.stack.erase(it2);
      } else {
        ++it2;
      }
    }
  } else {
    state_.stack.clear();
  }
}

Status Emulator::ProcessItem(WorkItem item) {
  state_ = std::move(item.state);
  cur_block_ = item.block;
  std::uint64_t pc = item.address;

  for (;;) {
    if (stats_.emulated_instrs > config_.max_blocks * 4096) {
      return Error(ErrorKind::kResourceLimit,
                   "emulated instruction budget exhausted", pc);
    }
    DBLL_TRY(Instr instr, x86::Decoder::DecodeAt(pc));
    ++stats_.emulated_instrs;
    if (config_.verbose) {
      std::fprintf(stderr, "dbrew: [%d] %s\n", cur_block_,
                   x86::PrintInstr(instr).c_str());
    }
    DBLL_TRY(StepResult out, Step(instr));
    switch (out.kind) {
      case StepKind::kNext:
        pc = instr.end();
        break;
      case StepKind::kGoto: {
        DBLL_TRY_STATUS(MaybeWiden(out.target));
        const std::string key = state_.Key(out.target);
        auto it = visited_.find(key);
        if (it != visited_.end()) {
          emitter_.AppendBranch(cur_block_, Mnemonic::kJmp, Cond::kO,
                                it->second);
          return Status::Ok();
        }
        if (emitter_.block_count() >= config_.max_blocks) {
          return Error(ErrorKind::kResourceLimit,
                       "specialization block limit exceeded", out.target);
        }
        if (++specialize_count_[out.target] == 1) {
          first_seen_.emplace(out.target, state_);
        }
        const int id = emitter_.NewBlock();
        visited_.emplace(key, id);
        emitter_.AppendBranch(cur_block_, Mnemonic::kJmp, Cond::kO, id);
        cur_block_ = id;
        pc = out.target;
        break;
      }
      case StepKind::kSplit: {
        DBLL_TRY_STATUS(MaybeWiden(out.target));
        DBLL_TRY_STATUS(MaybeWiden(out.fall_through));
        DBLL_TRY(int taken, StartBlock(out.target, state_));
        DBLL_TRY(int fall, StartBlock(out.fall_through, state_));
        emitter_.AppendBranch(cur_block_, Mnemonic::kJcc, out.cond, taken);
        emitter_.AppendBranch(cur_block_, Mnemonic::kJmp, Cond::kO, fall);
        return Status::Ok();
      }
      case StepKind::kDone:
        return Status::Ok();
    }
  }
}

// ---------------------------------------------------------------------------
// Address resolution and memory knowledge
// ---------------------------------------------------------------------------

Emulator::AddrInfo Emulator::Resolve(const Instr& instr,
                                     const MemOperand& mem) const {
  if (mem.segment != x86::Segment::kNone) {
    return AddrInfo{};  // thread-local storage: runtime only
  }
  bool is_const = true;
  bool is_stack = false;
  std::uint64_t abs = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(mem.disp));
  std::int64_t delta = mem.disp;

  auto accumulate = [&](Reg reg, std::uint64_t scale) {
    if (reg == x86::kRip) {
      // Instr::target holds the resolved absolute address (disp included),
      // so undo the disp we pre-added.
      abs = instr.target;
      delta = 0;
      return;
    }
    const MetaValue& v = state_.Gp(reg);
    if (v.is_const()) {
      abs += v.value * scale;
      delta += static_cast<std::int64_t>(v.value * scale);
    } else if (v.is_stack_rel() && scale == 1 && !is_stack) {
      is_stack = true;
      is_const = false;
      delta += v.stack_delta();
    } else {
      is_const = false;
      is_stack = false;
      abs = 0;
    }
  };

  if (mem.base.valid()) accumulate(mem.base, 1);
  if (mem.index.valid()) {
    // A stack-relative index register is possible but not useful; treat a
    // second stack-relative component as runtime.
    const MetaValue& v = state_.Gp(mem.index);
    if (v.is_const()) {
      abs += v.value * mem.scale;
      delta += static_cast<std::int64_t>(v.value) * mem.scale;
    } else {
      is_const = false;
      is_stack = false;
    }
  }

  AddrInfo info;
  if (mem.base == x86::kRip) {
    info.kind = AddrInfo::Kind::kConst;
    info.abs = instr.target;
  } else if (is_const) {
    info.kind = AddrInfo::Kind::kConst;
    info.abs = abs;
  } else if (is_stack) {
    info.kind = AddrInfo::Kind::kStack;
    info.delta = delta;
  } else {
    info.kind = AddrInfo::Kind::kRuntime;
  }
  return info;
}

bool Emulator::InFixedRange(std::uint64_t address, std::size_t size) const {
  for (const FixedMemRange& range : fixed_ranges_) {
    if (range.Contains(address, size)) return true;
  }
  return false;
}

bool Emulator::ReadStackBytes(std::int64_t delta, std::size_t size,
                              std::uint64_t* value) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < size; ++i) {
    auto it = state_.stack.find(delta + static_cast<std::int64_t>(i));
    if (it == state_.stack.end()) return false;
    out |= static_cast<std::uint64_t>(it->second) << (8 * i);
  }
  *value = out;
  return true;
}

void Emulator::WriteStackBytes(std::int64_t delta, std::size_t size,
                               std::uint64_t value) {
  for (std::size_t i = 0; i < size; ++i) {
    state_.stack[delta + static_cast<std::int64_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void Emulator::EraseStackBytes(std::int64_t delta, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    state_.stack.erase(delta + static_cast<std::int64_t>(i));
  }
}

bool Emulator::ReadKnown(const Instr& instr, const Operand& op,
                         std::uint64_t* value) const {
  switch (op.kind) {
    case OpKind::kImm:
      // The decoder stores immediates sign-extended to 64 bits; the consumer
      // masks to the destination width.
      *value = static_cast<std::uint64_t>(op.imm);
      return true;
    case OpKind::kReg: {
      if (op.reg.cls != RegClass::kGp) return false;
      const MetaValue& v = state_.Gp(op.reg);
      if (!v.is_const()) return false;
      std::uint64_t raw = v.value;
      if (op.high8) raw >>= 8;
      *value = MaskToSize(raw, op.size);
      return true;
    }
    case OpKind::kMem: {
      const AddrInfo addr = Resolve(instr, op.mem);
      if (addr.kind == AddrInfo::Kind::kConst &&
          InFixedRange(addr.abs, op.size)) {
        std::uint64_t out = 0;
        std::memcpy(&out, reinterpret_cast<const void*>(addr.abs), op.size);
        *value = MaskToSize(out, op.size);
        return true;
      }
      if (addr.kind == AddrInfo::Kind::kStack) {
        return ReadStackBytes(addr.delta, op.size, value);
      }
      return false;
    }
    case OpKind::kNone:
      return false;
  }
  return false;
}

bool Emulator::ReadKnownVec(const Instr& instr, const Operand& op,
                            std::uint64_t* lo, std::uint64_t* hi) const {
  if (op.is_reg() && op.reg.cls == RegClass::kVec) {
    const MetaXmm& v = state_.Vec(op.reg);
    if (!v.known) return false;
    *lo = v.lo;
    *hi = v.hi;
    return true;
  }
  if (op.is_mem()) {
    const AddrInfo addr = Resolve(instr, op.mem);
    if (addr.kind == AddrInfo::Kind::kConst &&
        InFixedRange(addr.abs, op.size)) {
      std::uint64_t buf[2] = {0, 0};
      std::memcpy(buf, reinterpret_cast<const void*>(addr.abs), op.size);
      *lo = buf[0];
      *hi = buf[1];
      return true;
    }
    if (addr.kind == AddrInfo::Kind::kStack && op.size <= 8) {
      std::uint64_t value = 0;
      if (!ReadStackBytes(addr.delta, op.size, &value)) return false;
      *lo = value;
      *hi = 0;
      return true;
    }
    if (addr.kind == AddrInfo::Kind::kStack && op.size == 16) {
      std::uint64_t a = 0, b = 0;
      if (!ReadStackBytes(addr.delta, 8, &a) ||
          !ReadStackBytes(addr.delta + 8, 8, &b)) {
        return false;
      }
      *lo = a;
      *hi = b;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Meta-state mutation
// ---------------------------------------------------------------------------

bool Emulator::FoldWriteGp(const Operand& op, std::uint64_t value) {
  if (!op.is_reg() || op.reg.cls != RegClass::kGp) return false;
  MetaValue& v = state_.Gp(op.reg);
  switch (op.size) {
    case 8:
      v = MetaValue::Const(value, false);
      return true;
    case 4:
      // 32-bit writes zero the upper half.
      v = MetaValue::Const(value & 0xffffffffull, false);
      return true;
    case 2:
    case 1: {
      if (!v.is_const()) return false;  // cannot merge into unknown content
      std::uint64_t mask = op.size == 2 ? 0xffffull : 0xffull;
      unsigned shift = 0;
      if (op.high8) {
        mask = 0xff00ull;
        shift = 8;
      }
      v = MetaValue::Const((v.value & ~mask) | ((value << shift) & mask), false);
      return true;
    }
    default:
      return false;
  }
}

void Emulator::RuntimeWriteGp(const Operand& op) {
  if (op.is_reg() && op.reg.cls == RegClass::kGp) {
    state_.Gp(op.reg) = MetaValue::Unknown();
  }
}

void Emulator::RuntimeWriteVec(const Operand& op) {
  if (op.is_reg() && op.reg.cls == RegClass::kVec) {
    state_.Vec(op.reg) = MetaXmm{};
  }
}

void Emulator::SetFlags(const MetaFlag* flags, bool writes_flags) {
  if (!writes_flags) return;
  for (int i = 0; i < x86::kFlagCount; ++i) {
    // Defined results become known; undefined results become unknown. A
    // flag the instruction does not write at all keeps its previous state
    // only when the semantics say so (handled by the evaluator leaving it
    // unknown and the caller merging) -- here a simple overwrite of the six
    // flags matches the behaviour of the supported flag-writing mnemonics
    // except inc/dec, whose evaluator reports CF as unknown; preserve the
    // previous CF in that case via the caller.
    state_.flags[i] = flags[i];
  }
}

void Emulator::ClobberFlags(const Instr& instr) {
  const x86::FlagEffects effects = x86::FlagEffectsOf(instr.mnemonic);
  const std::uint8_t touched = effects.written | effects.undefined;
  auto clobber = [&](Flag flag, std::uint8_t mask) {
    if (touched & mask) state_.FlagRef(flag) = MetaFlag{};
  };
  clobber(Flag::kZf, x86::kFlagZ);
  clobber(Flag::kSf, x86::kFlagS);
  clobber(Flag::kCf, x86::kFlagC);
  clobber(Flag::kOf, x86::kFlagO);
  clobber(Flag::kPf, x86::kFlagP);
  clobber(Flag::kAf, x86::kFlagA);
}

void Emulator::ClobberCallerSaved() {
  // rax, rcx, rdx, rsi, rdi, r8-r11 and all vector registers are
  // caller-saved in the SysV ABI; a called function may also leave any flag
  // state behind.
  for (std::uint8_t index : {0, 1, 2, 6, 7, 8, 9, 10, 11}) {
    state_.gp[index] = MetaValue::Unknown();
  }
  for (auto& v : state_.vec) v = MetaXmm{};
  state_.ClearFlags();
  state_.stack.clear();
}

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

void Emulator::AppendMov(Reg reg, std::uint64_t value) {
  Instr mov;
  mov.mnemonic = Mnemonic::kMov;
  mov.op_count = 2;
  if (value <= 0xffffffffull) {
    // mov r32, imm32 zero-extends and is the shortest encoding.
    mov.ops[0] = Operand::RegOp(reg, 4);
    mov.ops[1] = Operand::ImmOp(static_cast<std::int64_t>(value), 4);
  } else {
    mov.ops[0] = Operand::RegOp(reg, 8);
    mov.ops[1] = Operand::ImmOp(static_cast<std::int64_t>(value), 8);
  }
  emitter_.Append(cur_block_, mov);
  ++stats_.emitted_instrs;
}

Status Emulator::MaterializeGp(Reg reg) {
  MetaValue& v = state_.Gp(reg);
  if (!v.is_const() || v.materialized) return Status::Ok();
  AppendMov(reg, v.value);
  v.materialized = true;
  return Status::Ok();
}

Status Emulator::MaterializeVec(Reg reg) {
  MetaXmm& v = state_.Vec(reg);
  if (!v.known || v.materialized) return Status::Ok();
  if (v.lo == 0 && v.hi == 0) {
    // Zero is materialized with the classic idiom instead of a pool load.
    Instr zero;
    zero.mnemonic = Mnemonic::kPxor;
    zero.op_count = 2;
    zero.ops[0] = Operand::RegOp(reg, 16);
    zero.ops[1] = Operand::RegOp(reg, 16);
    emitter_.Append(cur_block_, zero);
    ++stats_.emitted_instrs;
    v.materialized = true;
    return Status::Ok();
  }
  Instr load;
  load.mnemonic = Mnemonic::kMovaps;
  load.op_count = 2;
  load.ops[0] = Operand::RegOp(reg, 16);
  MemOperand mem;
  mem.base = x86::kRip;
  load.ops[1] = Operand::MemOp(mem, 16);
  emitter_.AppendPoolLoad(cur_block_, load, v.lo, v.hi);
  ++stats_.emitted_instrs;
  v.materialized = true;
  return Status::Ok();
}

Status Emulator::EmitInstr(Instr instr) {
  // 1. Memory operands: fold known components into the displacement where
  //    possible, otherwise materialize the registers they reference.
  for (int i = 0; i < instr.op_count; ++i) {
    Operand& op = instr.ops[i];
    if (!op.is_mem()) continue;
    MemOperand& mem = op.mem;
    if (mem.base == x86::kRip) {
      // Already absolute via instr.target; if it fits into a disp32, rewrite
      // to absolute addressing so the code does not depend on its own
      // placement (matches the paper's Fig. 8 output).
      if (instr.target <= 0x7fffffffull) {
        mem.base = x86::kNoReg;
        mem.disp = static_cast<std::int32_t>(instr.target);
        instr.target = 0;
      }
      continue;
    }
    // Fold a known index into the displacement.
    if (mem.index.valid()) {
      const MetaValue& v = state_.Gp(mem.index);
      if (v.is_const() && !v.materialized) {
        const std::int64_t folded =
            static_cast<std::int64_t>(mem.disp) +
            static_cast<std::int64_t>(v.value) * mem.scale;
        if (folded >= INT32_MIN && folded <= INT32_MAX) {
          mem.disp = static_cast<std::int32_t>(folded);
          mem.index = x86::kNoReg;
          mem.scale = 1;
        } else {
          DBLL_TRY_STATUS(MaterializeGp(mem.index));
        }
      } else if (v.is_const()) {
        // Materialized: the register holds the value; leave as-is.
      }
    }
    if (mem.base.valid()) {
      const MetaValue& v = state_.Gp(mem.base);
      if (v.is_const() && !v.materialized) {
        const std::int64_t folded = static_cast<std::int64_t>(mem.disp) +
                                    static_cast<std::int64_t>(v.value);
        if (!mem.index.valid() && folded >= 0 && folded <= INT32_MAX) {
          // Absolute [disp32] operand.
          mem.disp = static_cast<std::int32_t>(folded);
          mem.base = x86::kNoReg;
        } else {
          DBLL_TRY_STATUS(MaterializeGp(mem.base));
        }
      }
    }
  }

  // 2. Register source operands: substitute immediates or materialize.
  //    The destination of a read-modify-write instruction is also an input.
  const bool dst_is_input = [&] {
    switch (instr.mnemonic) {
      case Mnemonic::kMov: case Mnemonic::kMovzx: case Mnemonic::kMovsx:
      case Mnemonic::kMovsxd: case Mnemonic::kLea: case Mnemonic::kPop:
      case Mnemonic::kSetcc: case Mnemonic::kMovd:
        return false;
      case Mnemonic::kMovq:
        return false;
      default:
        return true;
    }
  }();

  for (int i = 0; i < instr.op_count; ++i) {
    Operand& op = instr.ops[i];
    if (op.is_reg() && op.reg.cls == RegClass::kGp) {
      // A sub-dword register write preserves the remaining bits, so the old
      // content is an input even for "pure" destinations (e.g. setcc al on
      // a register whose upper bits are known but not materialized).
      const bool partial_write = i == 0 && op.size < 4;
      const bool is_pure_dst =
          i == 0 && !dst_is_input && !op.is_mem() && !partial_write;
      if (is_pure_dst) continue;
      if (partial_write && !dst_is_input) {
        DBLL_TRY_STATUS(MaterializeGp(op.reg));
        continue;
      }
      const MetaValue& v = state_.Gp(op.reg);
      if (v.is_const() && !v.materialized) {
        // Try immediate substitution for the classic source slot.
        std::uint64_t value = v.value;
        if (op.high8) value >>= 8;
        value = MaskToSize(value, op.size);
        if (i == 1 && AllowsImmSource(instr.mnemonic) &&
            (op.size == 1 || FitsInt32(value, op.size))) {
          op = Operand::ImmOp(SignExtend(value, op.size), op.size == 1 ? 1 : 4);
          continue;
        }
        if ((instr.mnemonic == Mnemonic::kShl ||
             instr.mnemonic == Mnemonic::kShr ||
             instr.mnemonic == Mnemonic::kSar ||
             instr.mnemonic == Mnemonic::kRol ||
             instr.mnemonic == Mnemonic::kRor) &&
            i == 1) {
          op = Operand::ImmOp(static_cast<std::int64_t>(value & 0x3f), 1);
          continue;
        }
        DBLL_TRY_STATUS(MaterializeGp(op.reg));
      }
    } else if (op.is_reg() && op.reg.cls == RegClass::kVec) {
      const bool is_pure_dst = i == 0 && !dst_is_input;
      const MetaXmm& v = state_.Vec(op.reg);
      if (!is_pure_dst && v.known && !v.materialized) {
        DBLL_TRY_STATUS(MaterializeVec(op.reg));
      }
    }
  }

  // 3. Record stores into the stack map (all stores are emitted, so the map
  //    stays consistent); runtime stores may alias the stack, so they clear
  //    the map. Only plain moves carry a recordable value; read-modify-write
  //    memory destinations (add [mem], ...) invalidate their bytes.
  if (instr.op_count > 0 && instr.ops[0].is_mem() &&
      WritesFirstOperand(instr.mnemonic)) {
    const AddrInfo addr = Resolve(instr, instr.ops[0].mem);
    if (addr.kind == AddrInfo::Kind::kStack) {
      std::uint64_t value = 0;
      std::uint64_t lo = 0, hi = 0;
      if (!IsPlainStore(instr.mnemonic)) {
        // Read-modify-write on a tracked slot: when the old bytes and the
        // source are known and the operation has an evaluator, the new slot
        // content is still known (e.g. `add qword [rbp-0x10], 1` on an -O0
        // loop counter). The instruction itself is emitted regardless.
        std::uint64_t old_value = 0;
        std::uint64_t src_value = 0;
        const bool unary = instr.op_count == 1;
        if (ReadStackBytes(addr.delta, instr.ops[0].size, &old_value) &&
            (unary || ReadKnown(instr, instr.ops[1], &src_value))) {
          auto result = EvalInt(instr.mnemonic, old_value, src_value,
                                instr.ops[0].size);
          if (result.has_value()) {
            WriteStackBytes(addr.delta, instr.ops[0].size, result->value);
          } else {
            EraseStackBytes(addr.delta, instr.ops[0].size);
          }
        } else {
          EraseStackBytes(addr.delta, instr.ops[0].size);
        }
      } else if (instr.op_count > 1 && instr.ops[1].is_imm()) {
        WriteStackBytes(addr.delta, instr.ops[0].size,
                        static_cast<std::uint64_t>(instr.ops[1].imm));
      } else if (instr.op_count > 1 && instr.ops[1].is_reg() &&
                 instr.ops[1].reg.cls == RegClass::kVec) {
        if (ReadKnownVec(instr, instr.ops[1], &lo, &hi)) {
          WriteStackBytes(addr.delta, std::min<std::size_t>(instr.ops[0].size, 8), lo);
          if (instr.ops[0].size == 16) WriteStackBytes(addr.delta + 8, 8, hi);
        } else {
          EraseStackBytes(addr.delta, instr.ops[0].size);
        }
      } else if (instr.op_count > 1 && ReadKnown(instr, instr.ops[1], &value)) {
        WriteStackBytes(addr.delta, instr.ops[0].size, value);
      } else {
        EraseStackBytes(addr.delta, instr.ops[0].size);
      }
    } else if (addr.kind == AddrInfo::Kind::kRuntime) {
      state_.stack.clear();
    }
  }

  // 4. Mark written registers and flags as runtime values.
  if (instr.op_count > 0 && instr.ops[0].is_reg() &&
      WritesFirstOperand(instr.mnemonic)) {
    if (instr.ops[0].reg.cls == RegClass::kGp) {
      RuntimeWriteGp(instr.ops[0]);
    } else {
      RuntimeWriteVec(instr.ops[0]);
    }
  }
  ClobberFlags(instr);

  emitter_.Append(cur_block_, instr);
  ++stats_.emitted_instrs;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Per-instruction stepping
// ---------------------------------------------------------------------------

Expected<Emulator::StepResult> Emulator::Step(const Instr& instr) {
  using M = Mnemonic;
  switch (instr.mnemonic) {
    case M::kNop:
    case M::kEndbr64:
      return StepResult{};  // dropped from the output entirely

    case M::kJmp:
    case M::kJcc:
    case M::kCall:
    case M::kRet:
    case M::kUd2:
      return StepBranch(instr);

    case M::kPush:
    case M::kPop:
    case M::kLeave:
      return StepStack(instr);

    case M::kMov:
    case M::kMovzx:
    case M::kMovsx:
    case M::kMovsxd:
    case M::kLea:
    case M::kXchg:
    case M::kCmovcc:
    case M::kSetcc:
    case M::kCwde:
    case M::kCbw:
    case M::kCdqe:
    case M::kCwd:
    case M::kCdq:
    case M::kCqo:
      return StepMov(instr);

    case M::kAdd: case M::kAdc: case M::kSub: case M::kSbb:
    case M::kCmp: case M::kTest: case M::kAnd: case M::kOr: case M::kXor:
    case M::kNot: case M::kNeg: case M::kInc: case M::kDec:
    case M::kShl: case M::kShr: case M::kSar: case M::kRol: case M::kRor:
    case M::kBswap: case M::kBt: case M::kBsf: case M::kBsr:
    case M::kTzcnt: case M::kPopcnt: case M::kStc: case M::kClc:
      return StepIntAlu(instr);

    case M::kImul:
      if (instr.op_count == 1) return StepMulDiv(instr);
      return StepIntAlu(instr);
    case M::kMul: case M::kIdiv: case M::kDiv:
      return StepMulDiv(instr);

    default:
      // Everything else is SSE.
      return StepSse(instr);
  }
}

Expected<Emulator::StepResult> Emulator::StepBranch(const Instr& instr) {
  using M = Mnemonic;
  StepResult out;
  switch (instr.mnemonic) {
    case M::kUd2: {
      DBLL_TRY_STATUS(EmitInstr(instr));
      out.kind = StepKind::kDone;
      return out;
    }
    case M::kRet: {
      if (!state_.return_stack.empty()) {
        if (instr.op_count != 0) {
          return Error(ErrorKind::kUnsupported,
                       "ret imm cannot be inlined", instr.address);
        }
        out.kind = StepKind::kGoto;
        out.target = state_.return_stack.back();
        state_.return_stack.pop_back();
        return out;
      }
      // The SysV return registers must hold their actual values; anything
      // still known-but-unmaterialized is materialized now.
      DBLL_TRY_STATUS(MaterializeGp(x86::kRax));
      DBLL_TRY_STATUS(MaterializeGp(x86::kRdx));
      DBLL_TRY_STATUS(MaterializeVec(x86::Xmm(0)));
      DBLL_TRY_STATUS(MaterializeVec(x86::Xmm(1)));
      DBLL_TRY_STATUS(EmitInstr(instr));
      out.kind = StepKind::kDone;
      return out;
    }
    case M::kJmp: {
      if (instr.op_count == 1 && !instr.ops[0].is_imm()) {
        // Indirect: only a rewrite-time-known target can be followed.
        std::uint64_t target = 0;
        if (instr.ops[0].is_reg()) {
          const MetaValue& v = state_.Gp(instr.ops[0].reg);
          if (v.is_const()) target = v.value;
        } else if (instr.ops[0].is_mem()) {
          ReadKnown(instr, instr.ops[0], &target);
        }
        if (target == 0) {
          return Error(ErrorKind::kUnsupported,
                       "indirect jump with unknown target", instr.address);
        }
        out.kind = StepKind::kGoto;
        out.target = target;
        return out;
      }
      out.kind = StepKind::kGoto;
      out.target = instr.target;
      return out;
    }
    case M::kJcc: {
      // Partial evaluation of the condition: decided outright, reduced to a
      // residual condition on runtime flags, or unresolvable.
      const CondResolution res = ResolveCond(instr.cond, state_.flags);
      switch (res.kind) {
        case CondResolution::Kind::kTrue:
        case CondResolution::Kind::kFalse:
          ++stats_.folded_instrs;
          out.kind = StepKind::kGoto;
          out.target = res.kind == CondResolution::Kind::kTrue ? instr.target
                                                               : instr.end();
          return out;
        case CondResolution::Kind::kCond:
          out.kind = StepKind::kSplit;
          out.cond = res.cond;
          out.target = instr.target;
          out.fall_through = instr.end();
          return out;
        case CondResolution::Kind::kUnresolved:
          return Error(ErrorKind::kEmulate,
                       "conditional branch mixes known and runtime flags",
                       instr.address);
      }
      return Error(ErrorKind::kInternal, "bad condition resolution");
    }
    case M::kCall: {
      std::uint64_t target = 0;
      bool have_target = false;
      if (instr.op_count == 1 && instr.ops[0].is_imm()) {
        target = instr.target;
        have_target = true;
      } else if (instr.op_count == 1) {
        // Indirect call: follow when the target is known (this is the
        // "tight coupling of separately compiled functions" feature).
        if (instr.ops[0].is_reg()) {
          const MetaValue& v = state_.Gp(instr.ops[0].reg);
          if (v.is_const()) {
            target = v.value;
            have_target = true;
          }
        } else if (instr.ops[0].is_mem()) {
          have_target = ReadKnown(instr, instr.ops[0], &target);
        }
      }
      if (have_target &&
          static_cast<int>(state_.return_stack.size()) <
              config_.max_inline_depth) {
        state_.return_stack.push_back(instr.end());
        ++stats_.inlined_calls;
        out.kind = StepKind::kGoto;
        out.target = target;
        return out;
      }
      // Emit the call (direct or with runtime target): the callee receives
      // its arguments in registers, so every known-but-unmaterialized
      // argument register must hold its real value first.
      for (Reg reg : kParamRegs) {
        DBLL_TRY_STATUS(MaterializeGp(reg));
      }
      for (std::uint8_t i = 0; i < 8; ++i) {
        DBLL_TRY_STATUS(MaterializeVec(x86::Xmm(i)));
      }
      if (!have_target && instr.ops[0].is_reg() &&
          state_.Gp(instr.ops[0].reg).is_const()) {
        DBLL_TRY_STATUS(MaterializeGp(instr.ops[0].reg));
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      ClobberCallerSaved();
      return StepResult{};
    }
    default:
      return Error(ErrorKind::kInternal, "StepBranch on non-branch");
  }
}

Expected<Emulator::StepResult> Emulator::StepStack(const Instr& instr) {
  using M = Mnemonic;
  const MetaValue rsp = state_.Gp(x86::kRsp);
  switch (instr.mnemonic) {
    case M::kPush: {
      if (!rsp.is_stack_rel()) {
        DBLL_TRY_STATUS(EmitInstr(instr));
        return StepResult{};
      }
      const std::int64_t slot = rsp.stack_delta() - 8;
      std::uint64_t value = 0;
      const bool known = ReadKnown(instr, instr.ops[0], &value);
      // Convert a push of a known register into push imm when possible.
      Instr emit = instr;
      if (known && instr.ops[0].is_reg() &&
          !state_.Gp(instr.ops[0].reg).materialized) {
        if (FitsInt32(value, 8)) {
          emit.ops[0] = Operand::ImmOp(SignExtend(value, 8), 4);
        } else {
          DBLL_TRY_STATUS(MaterializeGp(instr.ops[0].reg));
        }
      }
      DBLL_TRY_STATUS(EmitInstr(emit));
      state_.Gp(x86::kRsp) = MetaValue::StackRel(slot);
      if (known) {
        // Pushed immediates/values are sign-extended to the 8-byte slot.
        const std::uint8_t src_size =
            instr.ops[0].size == 0 ? 8 : instr.ops[0].size;
        WriteStackBytes(
            slot, 8, static_cast<std::uint64_t>(SignExtend(value, src_size)));
      } else {
        EraseStackBytes(slot, 8);
      }
      return StepResult{};
    }
    case M::kPop: {
      DBLL_TRY_STATUS(EmitInstr(instr));
      if (rsp.is_stack_rel()) {
        std::uint64_t value = 0;
        if (instr.ops[0].is_reg() &&
            ReadStackBytes(rsp.stack_delta(), 8, &value)) {
          // The emitted pop loads the true value, so it is materialized.
          state_.Gp(instr.ops[0].reg) = MetaValue::Const(value, true);
        }
        EraseStackBytes(rsp.stack_delta(), 8);
        state_.Gp(x86::kRsp) = MetaValue::StackRel(rsp.stack_delta() + 8);
      }
      return StepResult{};
    }
    case M::kLeave: {
      DBLL_TRY_STATUS(EmitInstr(instr));
      const MetaValue rbp = state_.Gp(x86::kRbp);
      if (rbp.is_stack_rel()) {
        const std::int64_t slot = rbp.stack_delta();
        std::uint64_t value = 0;
        if (ReadStackBytes(slot, 8, &value)) {
          state_.Gp(x86::kRbp) = MetaValue::Const(value, true);
        } else {
          state_.Gp(x86::kRbp) = MetaValue::Unknown();
        }
        EraseStackBytes(slot, 8);
        state_.Gp(x86::kRsp) = MetaValue::StackRel(slot + 8);
      } else {
        state_.Gp(x86::kRbp) = MetaValue::Unknown();
        state_.Gp(x86::kRsp) = MetaValue::Unknown();
        state_.stack.clear();
      }
      return StepResult{};
    }
    default:
      return Error(ErrorKind::kInternal, "StepStack on non-stack op");
  }
}

Expected<Emulator::StepResult> Emulator::StepIntAlu(const Instr& instr) {
  using M = Mnemonic;
  const Operand& dst = instr.ops[0];
  const bool is_unary = instr.op_count == 1 || instr.mnemonic == M::kBswap;
  const bool writes_dst = instr.mnemonic != M::kCmp &&
                          instr.mnemonic != M::kTest &&
                          instr.mnemonic != M::kBt;

  if (instr.mnemonic == M::kStc || instr.mnemonic == M::kClc) {
    state_.FlagRef(Flag::kCf) = MetaFlag{true, instr.mnemonic == M::kStc};
    ++stats_.folded_instrs;
    return StepResult{};
  }

  // xor reg, reg and sub reg, reg produce zero regardless of the register
  // content (idiom for zeroing). The instruction is *emitted* (it is the
  // canonical cheap way to zero a register and it keeps the runtime flags
  // in sync -- the paper's Fig. 8 output also keeps its pxor idioms), but
  // the zero value is recorded as known and already materialized.
  if ((instr.mnemonic == M::kXor || instr.mnemonic == M::kSub) &&
      instr.op_count == 2 && dst.is_reg() && instr.ops[1].is_reg() &&
      dst.reg == instr.ops[1].reg && dst.high8 == instr.ops[1].high8 &&
      dst.reg.cls == RegClass::kGp && dst.size >= 4) {
    emitter_.Append(cur_block_, instr);
    ++stats_.emitted_instrs;
    state_.Gp(dst.reg) = MetaValue::Const(0, /*materialized=*/true);
    ClobberFlags(instr);  // runtime flags now valid
    return StepResult{};
  }

  // bsf/bsr/tzcnt/popcnt compute from their *source*; route it into `a`.
  const bool src_computes =
      instr.mnemonic == M::kBsf || instr.mnemonic == M::kBsr ||
      instr.mnemonic == M::kTzcnt || instr.mnemonic == M::kPopcnt;
  // Three-operand imul: dst = ops[1] * ops[2]; the destination is pure.
  const bool is_imul3 = instr.mnemonic == M::kImul && instr.op_count == 3;

  std::uint64_t a = 0, b = 0;
  const bool a_known = ReadKnown(
      instr, (src_computes || is_imul3) ? instr.ops[1] : dst, &a);
  const bool b_known =
      is_unary || src_computes ||
      (is_imul3 ? ReadKnown(instr, instr.ops[2], &b)
                : (instr.op_count < 2 || ReadKnown(instr, instr.ops[1], &b)));

  // adc/sbb need the carry flag.
  bool carry_in = false;
  bool carry_usable = true;
  if (instr.mnemonic == M::kAdc || instr.mnemonic == M::kSbb) {
    const MetaFlag& cf = state_.FlagRef(Flag::kCf);
    if (cf.known) {
      carry_in = cf.value;
    } else {
      carry_usable = false;  // runtime flag: folding impossible
    }
  }

  if (a_known && b_known && carry_usable && (!dst.is_mem() || !writes_dst)) {
    auto result = EvalInt(instr.mnemonic, a, b, dst.size, carry_in);
    if (result.has_value()) {
      bool folded = true;
      if (writes_dst) {
        folded = FoldWriteGp(dst, result->value);
      }
      if (folded) {
        // inc/dec leave CF untouched: the evaluator reports it unknown, but
        // the architectural behaviour is "preserved", so keep the old value.
        MetaFlag saved_cf = state_.FlagRef(Flag::kCf);
        SetFlags(result->flags, result->writes_flags);
        if ((instr.mnemonic == M::kInc || instr.mnemonic == M::kDec) &&
            result->writes_flags) {
          state_.FlagRef(Flag::kCf) = saved_cf;
        }
        ++stats_.folded_instrs;
        return StepResult{};
      }
    }
  }

  // adc/sbb with a known carry but unknown values: re-establish the carry
  // flag at runtime, then emit.
  if ((instr.mnemonic == M::kAdc || instr.mnemonic == M::kSbb) &&
      state_.FlagRef(Flag::kCf).known) {
    Instr setcf;
    setcf.mnemonic = state_.FlagRef(Flag::kCf).value ? M::kStc : M::kClc;
    DBLL_TRY_STATUS(EmitInstr(setcf));
  }

  DBLL_TRY_STATUS(EmitInstr(instr));
  return StepResult{};
}

Expected<Emulator::StepResult> Emulator::StepMov(const Instr& instr) {
  using M = Mnemonic;
  switch (instr.mnemonic) {
    case M::kMov: case M::kMovzx: case M::kMovsx: case M::kMovsxd: {
      const Operand& dst = instr.ops[0];
      const Operand& src = instr.ops[1];
      // Full-width register copies propagate the stack-relative tag
      // (mov rbp, rsp and friends); the mov itself is emitted, so the
      // runtime register is valid.
      if (instr.mnemonic == M::kMov && dst.is_reg() && src.is_reg() &&
          dst.size == 8 && dst.reg.cls == RegClass::kGp &&
          src.reg.cls == RegClass::kGp &&
          state_.Gp(src.reg).is_stack_rel()) {
        DBLL_TRY_STATUS(EmitInstr(instr));
        state_.Gp(dst.reg) =
            MetaValue::StackRel(state_.Gp(src.reg).stack_delta());
        return StepResult{};
      }
      // SSE moves never reach here; GP only.
      std::uint64_t value = 0;
      if (ReadKnown(instr, src, &value) && dst.is_reg()) {
        std::uint64_t out = value;
        if (instr.mnemonic == M::kMovsx || instr.mnemonic == M::kMovsxd) {
          out = MaskToSize(
              static_cast<std::uint64_t>(SignExtend(value, src.size)),
              dst.size);
        }
        if (FoldWriteGp(dst, out)) {
          ++stats_.folded_instrs;
          return StepResult{};
        }
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      return StepResult{};
    }
    case M::kLea: {
      const AddrInfo addr = Resolve(instr, instr.ops[1].mem);
      if (addr.kind == AddrInfo::Kind::kConst) {
        if (FoldWriteGp(instr.ops[0],
                        MaskToSize(addr.abs, instr.ops[0].size))) {
          ++stats_.folded_instrs;
          return StepResult{};
        }
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      if (addr.kind == AddrInfo::Kind::kStack && instr.ops[0].size == 8 &&
          instr.ops[0].is_reg()) {
        state_.Gp(instr.ops[0].reg) = MetaValue::StackRel(addr.delta);
      }
      return StepResult{};
    }
    case M::kXchg: {
      const Operand& a = instr.ops[0];
      const Operand& b = instr.ops[1];
      if (a.is_reg() && b.is_reg() && a.size == 8 &&
          a.reg.cls == RegClass::kGp && b.reg.cls == RegClass::kGp) {
        MetaValue va = state_.Gp(a.reg);
        MetaValue vb = state_.Gp(b.reg);
        if (va.is_const() && vb.is_const() && !va.materialized &&
            !vb.materialized) {
          std::swap(state_.Gp(a.reg), state_.Gp(b.reg));
          ++stats_.folded_instrs;
          return StepResult{};
        }
        // Emit and swap the meta view: the runtime swap makes each register
        // hold the other's previous (runtime-consistent) content.
        DBLL_TRY_STATUS(MaterializeGp(a.reg));
        DBLL_TRY_STATUS(MaterializeGp(b.reg));
        va = state_.Gp(a.reg);
        vb = state_.Gp(b.reg);
        Instr emit = instr;
        emitter_.Append(cur_block_, emit);
        ++stats_.emitted_instrs;
        state_.Gp(a.reg) = vb;
        state_.Gp(b.reg) = va;
        return StepResult{};
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      if (instr.ops[1].is_reg()) RuntimeWriteGp(instr.ops[1]);
      return StepResult{};
    }
    case M::kCmovcc: {
      const CondResolution res = ResolveCond(instr.cond, state_.flags);
      switch (res.kind) {
        case CondResolution::Kind::kFalse:
          ++stats_.folded_instrs;
          return StepResult{};  // no move
        case CondResolution::Kind::kTrue: {
          ++stats_.folded_instrs;
          Instr mov = instr;
          mov.mnemonic = M::kMov;
          return StepMov(mov);
        }
        case CondResolution::Kind::kCond: {
          Instr emit = instr;
          emit.cond = res.cond;
          DBLL_TRY_STATUS(EmitInstr(emit));
          return StepResult{};
        }
        case CondResolution::Kind::kUnresolved:
          return Error(ErrorKind::kEmulate,
                       "cmovcc mixes known and runtime flags", instr.address);
      }
      return Error(ErrorKind::kInternal, "bad condition resolution");
    }
    case M::kSetcc: {
      const CondResolution res = ResolveCond(instr.cond, state_.flags);
      switch (res.kind) {
        case CondResolution::Kind::kTrue:
        case CondResolution::Kind::kFalse: {
          ++stats_.folded_instrs;
          Instr mov;
          mov.mnemonic = M::kMov;
          mov.op_count = 2;
          mov.ops[0] = instr.ops[0];
          mov.ops[1] = Operand::ImmOp(
              res.kind == CondResolution::Kind::kTrue ? 1 : 0, 1);
          return StepMov(mov);
        }
        case CondResolution::Kind::kCond: {
          Instr emit = instr;
          emit.cond = res.cond;
          DBLL_TRY_STATUS(EmitInstr(emit));
          return StepResult{};
        }
        case CondResolution::Kind::kUnresolved:
          return Error(ErrorKind::kEmulate,
                       "setcc mixes known and runtime flags", instr.address);
      }
      return Error(ErrorKind::kInternal, "bad condition resolution");
    }
    case M::kCwde: case M::kCbw: case M::kCdqe: {
      const MetaValue rax = state_.Gp(x86::kRax);
      if (rax.is_const()) {
        std::uint64_t out = 0;
        if (instr.mnemonic == M::kCbw) {
          out = (rax.value & ~0xffffull) |
                MaskToSize(static_cast<std::uint64_t>(SignExtend(rax.value, 1)), 2);
        } else if (instr.mnemonic == M::kCwde) {
          out = MaskToSize(static_cast<std::uint64_t>(SignExtend(rax.value, 2)), 4);
        } else {
          out = static_cast<std::uint64_t>(SignExtend(rax.value, 4));
        }
        state_.Gp(x86::kRax) = MetaValue::Const(out, false);
        ++stats_.folded_instrs;
        return StepResult{};
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      state_.Gp(x86::kRax) = MetaValue::Unknown();
      return StepResult{};
    }
    case M::kCwd: case M::kCdq: case M::kCqo: {
      const MetaValue rax = state_.Gp(x86::kRax);
      const std::uint8_t size =
          instr.mnemonic == M::kCwd ? 2 : (instr.mnemonic == M::kCdq ? 4 : 8);
      if (rax.is_const()) {
        const bool negative = SignExtend(rax.value, size) < 0;
        const std::uint64_t fill = negative ? MaskToSize(~0ull, size) : 0;
        // rdx's upper part is zeroed for cdq (32-bit write); preserved for cwd.
        if (size == 2) {
          MetaValue rdx = state_.Gp(x86::kRdx);
          if (!rdx.is_const()) {
            DBLL_TRY_STATUS(EmitInstr(instr));
            state_.Gp(x86::kRdx) = MetaValue::Unknown();
            return StepResult{};
          }
          state_.Gp(x86::kRdx) =
              MetaValue::Const((rdx.value & ~0xffffull) | fill, false);
        } else {
          state_.Gp(x86::kRdx) = MetaValue::Const(fill, false);
        }
        ++stats_.folded_instrs;
        return StepResult{};
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      state_.Gp(x86::kRdx) = MetaValue::Unknown();
      return StepResult{};
    }
    default:
      return Error(ErrorKind::kInternal, "StepMov on unsupported mnemonic");
  }
}

Expected<Emulator::StepResult> Emulator::StepMulDiv(const Instr& instr) {
  using M = Mnemonic;
  const Operand& src = instr.ops[0];
  const std::uint8_t size = src.size;
  std::uint64_t a = 0, b = 0;
  const bool rax_known = state_.Gp(x86::kRax).is_const();
  const bool rdx_known = state_.Gp(x86::kRdx).is_const();
  const bool src_known = ReadKnown(instr, src, &b);
  if (rax_known) a = MaskToSize(state_.Gp(x86::kRax).value, size);

  if (instr.mnemonic == M::kImul || instr.mnemonic == M::kMul) {
    if (rax_known && src_known && size >= 4) {
      unsigned __int128 wide;
      if (instr.mnemonic == M::kImul) {
        wide = static_cast<unsigned __int128>(
            static_cast<__int128>(SignExtend(a, size)) *
            SignExtend(b, size));
      } else {
        wide = static_cast<unsigned __int128>(a) * b;
      }
      const std::uint64_t lo = MaskToSize(static_cast<std::uint64_t>(wide), size);
      const std::uint64_t hi =
          MaskToSize(static_cast<std::uint64_t>(wide >> (size * 8)), size);
      state_.Gp(x86::kRax) = MetaValue::Const(lo, false);
      state_.Gp(x86::kRdx) = MetaValue::Const(hi, false);
      // CF/OF indicate a significant upper half; ZF/SF/PF/AF are undefined
      // by the ISA, so folding may leave them as stale runtime values.
      bool upper_significant;
      if (instr.mnemonic == M::kImul) {
        upper_significant =
            SignExtend(hi, size) !=
            (SignExtend(lo, size) < 0 ? -1 : 0);
      } else {
        upper_significant = hi != 0;
      }
      state_.ClearFlags();
      state_.FlagRef(Flag::kCf) = MetaFlag{true, upper_significant};
      state_.FlagRef(Flag::kOf) = MetaFlag{true, upper_significant};
      ++stats_.folded_instrs;
      return StepResult{};
    }
  } else {  // div / idiv
    if (rax_known && rdx_known && src_known && b != 0 && size >= 4) {
      const std::uint64_t d = MaskToSize(state_.Gp(x86::kRdx).value, size);
      if (instr.mnemonic == M::kIdiv) {
        const __int128 dividend =
            (static_cast<__int128>(SignExtend(d, size)) << (size * 8)) |
            static_cast<__int128>(a);
        const std::int64_t divisor = SignExtend(b, size);
        const __int128 quot = dividend / divisor;
        const __int128 rem = dividend % divisor;
        state_.Gp(x86::kRax) =
            MetaValue::Const(MaskToSize(static_cast<std::uint64_t>(quot), size), false);
        state_.Gp(x86::kRdx) =
            MetaValue::Const(MaskToSize(static_cast<std::uint64_t>(rem), size), false);
      } else {
        const unsigned __int128 dividend =
            (static_cast<unsigned __int128>(d) << (size * 8)) | a;
        const unsigned __int128 quot = dividend / b;
        const unsigned __int128 rem = dividend % b;
        state_.Gp(x86::kRax) =
            MetaValue::Const(MaskToSize(static_cast<std::uint64_t>(quot), size), false);
        state_.Gp(x86::kRdx) =
            MetaValue::Const(MaskToSize(static_cast<std::uint64_t>(rem), size), false);
      }
      state_.ClearFlags();
      ++stats_.folded_instrs;
      return StepResult{};
    }
    // Emitted divides need rax and rdx live.
    DBLL_TRY_STATUS(MaterializeGp(x86::kRax));
    DBLL_TRY_STATUS(MaterializeGp(x86::kRdx));
    DBLL_TRY_STATUS(EmitInstr(instr));
    state_.Gp(x86::kRax) = MetaValue::Unknown();
    state_.Gp(x86::kRdx) = MetaValue::Unknown();
    return StepResult{};
  }

  DBLL_TRY_STATUS(MaterializeGp(x86::kRax));
  DBLL_TRY_STATUS(EmitInstr(instr));
  state_.Gp(x86::kRax) = MetaValue::Unknown();
  state_.Gp(x86::kRdx) = MetaValue::Unknown();
  return StepResult{};
}

Expected<Emulator::StepResult> Emulator::StepSse(const Instr& instr) {
  using M = Mnemonic;
  switch (instr.mnemonic) {
    case M::kInvalid:
      return Error(ErrorKind::kUnsupported, "unsupported instruction",
                   instr.address);
    case M::kCmpxchg:
    case M::kXadd:
    case M::kRdtsc:
    case M::kCpuid:
    case M::kInt3:
      // Decodable for tooling, but their implicit-register / atomic /
      // nondeterministic semantics are outside the rewriting subset.
      return Error(ErrorKind::kUnsupported,
                   std::string(x86::MnemonicName(instr.mnemonic)) +
                       " cannot be rewritten",
                   instr.address);
    default:
      break;
  }

  // Mixed GP <-> vector conversions handled directly.
  switch (instr.mnemonic) {
    case M::kCvtsi2sd: case M::kCvtsi2ss: {
      std::uint64_t value = 0;
      if (ReadKnown(instr, instr.ops[1], &value) && instr.ops[0].is_reg()) {
        const std::int64_t sv = SignExtend(value, instr.ops[1].size);
        MetaXmm& dst = state_.Vec(instr.ops[0].reg);
        if (dst.known) {
          std::uint64_t bits = 0;
          if (instr.mnemonic == M::kCvtsi2sd) {
            const double d = static_cast<double>(sv);
            std::memcpy(&bits, &d, 8);
            dst.lo = bits;
          } else {
            const float f = static_cast<float>(sv);
            std::uint32_t fb = 0;
            std::memcpy(&fb, &f, 4);
            dst.lo = (dst.lo & ~0xffffffffull) | fb;
          }
          dst.materialized = false;
          ++stats_.folded_instrs;
          return StepResult{};
        }
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      return StepResult{};
    }
    case M::kCvttsd2si: case M::kCvttss2si: {
      std::uint64_t lo = 0, hi = 0;
      if (ReadKnownVec(instr, instr.ops[1], &lo, &hi)) {
        std::int64_t result = 0;
        if (instr.mnemonic == M::kCvttsd2si) {
          double d;
          std::memcpy(&d, &lo, 8);
          result = static_cast<std::int64_t>(d);
        } else {
          float f;
          const std::uint32_t fb = static_cast<std::uint32_t>(lo);
          std::memcpy(&f, &fb, 4);
          result = static_cast<std::int64_t>(f);
        }
        if (FoldWriteGp(instr.ops[0],
                        MaskToSize(static_cast<std::uint64_t>(result),
                                   instr.ops[0].size))) {
          ++stats_.folded_instrs;
          return StepResult{};
        }
      }
      DBLL_TRY_STATUS(EmitInstr(instr));
      return StepResult{};
    }
    case M::kMovd: case M::kMovq: {
      const Operand& dst = instr.ops[0];
      const Operand& src = instr.ops[1];
      const std::uint8_t width = instr.mnemonic == M::kMovq ? 8 : 4;
      if (dst.is_reg() && dst.reg.cls == RegClass::kVec) {
        // Load into vector register.
        std::uint64_t value = 0;
        bool known = false;
        if (src.is_reg() && src.reg.cls == RegClass::kVec) {
          std::uint64_t lo = 0, hi = 0;
          known = ReadKnownVec(instr, src, &lo, &hi);
          value = lo;
        } else {
          known = ReadKnown(instr, src, &value);
        }
        if (known) {
          state_.Vec(dst.reg) =
              MetaXmm{true, false, MaskToSize(value, width), 0};
          ++stats_.folded_instrs;
          return StepResult{};
        }
        DBLL_TRY_STATUS(EmitInstr(instr));
        return StepResult{};
      }
      if (dst.is_reg() && dst.reg.cls == RegClass::kGp) {
        std::uint64_t lo = 0, hi = 0;
        if (ReadKnownVec(instr, src, &lo, &hi) &&
            FoldWriteGp(dst, MaskToSize(lo, width))) {
          ++stats_.folded_instrs;
          return StepResult{};
        }
        DBLL_TRY_STATUS(EmitInstr(instr));
        return StepResult{};
      }
      // Store to memory.
      DBLL_TRY_STATUS(EmitInstr(instr));
      return StepResult{};
    }
    default:
      break;
  }

  // Pure vector operations (possibly with a memory operand).
  const Operand& dst = instr.ops[0];
  const bool is_store = dst.is_mem();

  if (!is_store && dst.is_reg() && dst.reg.cls == RegClass::kVec) {
    std::uint64_t dlo = 0, dhi = 0, slo = 0, shi = 0;
    const bool d_known = ReadKnownVec(instr, dst, &dlo, &dhi);
    bool s_known;
    if (instr.op_count < 2) {
      s_known = true;
    } else if (instr.ops[1].is_imm()) {
      // Immediate second operand (vector shift counts): route the count
      // through the source value.
      slo = static_cast<std::uint64_t>(instr.ops[1].imm);
      s_known = true;
    } else if (instr.ops[1].is_reg() || instr.ops[1].is_mem()) {
      s_known = ReadKnownVec(instr, instr.ops[1], &slo, &shi);
    } else {
      s_known = true;
    }
    // Zeroing idiom: pxor/xorps xmm, same-xmm.
    const bool zero_idiom =
        (instr.mnemonic == M::kPxor || instr.mnemonic == M::kXorps ||
         instr.mnemonic == M::kXorpd) &&
        instr.op_count == 2 && instr.ops[1].is_reg() &&
        instr.ops[1].reg == dst.reg;
    if (zero_idiom) {
      // Emit the idiom (as the paper's DBrew does) and record the zero as
      // known and materialized; vector bitwise ops do not write flags.
      emitter_.Append(cur_block_, instr);
      ++stats_.emitted_instrs;
      state_.Vec(dst.reg) = MetaXmm{true, true, 0, 0};
      return StepResult{};
    }
    // Full-overwrite operations (plain loads/moves) do not need the old
    // destination value to fold.
    const bool full_overwrite =
        IsPlainStore(instr.mnemonic) ||
        ((instr.mnemonic == M::kMovss || instr.mnemonic == M::kMovsdX) &&
         instr.ops[1].is_mem());
    if ((d_known || full_overwrite) && s_known) {
      std::uint8_t imm = 0;
      if (instr.op_count == 3 && instr.ops[2].is_imm()) {
        imm = static_cast<std::uint8_t>(instr.ops[2].imm);
      }
      auto result = EvalVec(instr.mnemonic, Vec128{dlo, dhi}, Vec128{slo, shi},
                            instr.op_count >= 2 ? instr.ops[1].size : 16, imm);
      if (result.has_value()) {
        if (result->writes_flags) {
          SetFlags(result->flags, true);
        }
        const bool is_compare =
            instr.mnemonic == M::kUcomisd || instr.mnemonic == M::kUcomiss ||
            instr.mnemonic == M::kComisd || instr.mnemonic == M::kComiss;
        if (!is_compare) {
          state_.Vec(dst.reg) =
              MetaXmm{true, false, result->value.lo, result->value.hi};
        }
        ++stats_.folded_instrs;
        return StepResult{};
      }
    }
  }

  DBLL_TRY_STATUS(EmitInstr(instr));
  return StepResult{};
}

}  // namespace dbll::dbrew
