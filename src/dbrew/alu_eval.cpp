#include "alu_eval.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace dbll::dbrew {
namespace {

using x86::Flag;
using x86::Mnemonic;

std::uint64_t MsbMask(std::uint8_t size) {
  return 1ull << (size * 8 - 1);
}

bool Parity8(std::uint64_t value) {
  return (std::popcount(value & 0xff) % 2) == 0;
}

void SetFlag(IntResult& r, Flag flag, bool value) {
  r.flags[static_cast<int>(flag)] = MetaFlag{true, value};
}

/// Sets ZF/SF/PF from a result value.
void SetZsp(IntResult& r, std::uint64_t value, std::uint8_t size) {
  SetFlag(r, Flag::kZf, MaskToSize(value, size) == 0);
  SetFlag(r, Flag::kSf, (value & MsbMask(size)) != 0);
  SetFlag(r, Flag::kPf, Parity8(value));
}

IntResult Add(std::uint64_t a, std::uint64_t b, std::uint8_t size, bool cin) {
  IntResult r;
  r.writes_flags = true;
  a = MaskToSize(a, size);
  b = MaskToSize(b, size);
  const std::uint64_t sum = a + b + (cin ? 1 : 0);
  r.value = MaskToSize(sum, size);
  SetZsp(r, r.value, size);
  // CF: unsigned overflow out of `size` bytes.
  const bool carry = size == 8
                         ? (sum < a || (cin && sum == a))
                         : (sum >> (size * 8)) != 0;
  SetFlag(r, Flag::kCf, carry);
  // OF: signs of operands equal and differ from result sign.
  const bool of = ((~(a ^ b) & (a ^ r.value)) & MsbMask(size)) != 0;
  SetFlag(r, Flag::kOf, of);
  SetFlag(r, Flag::kAf, (((a ^ b ^ r.value) >> 4) & 1) != 0);
  return r;
}

IntResult Sub(std::uint64_t a, std::uint64_t b, std::uint8_t size, bool bin) {
  IntResult r;
  r.writes_flags = true;
  a = MaskToSize(a, size);
  b = MaskToSize(b, size);
  const std::uint64_t diff = a - b - (bin ? 1 : 0);
  r.value = MaskToSize(diff, size);
  SetZsp(r, r.value, size);
  // Borrow: a < b for sub, a <= b for sbb-with-borrow (a - b - 1 wraps when
  // a == b as well).
  const bool cf = bin ? a <= b : a < b;
  SetFlag(r, Flag::kCf, cf);
  const bool of = (((a ^ b) & (a ^ r.value)) & MsbMask(size)) != 0;
  SetFlag(r, Flag::kOf, of);
  SetFlag(r, Flag::kAf, (((a ^ b ^ r.value) >> 4) & 1) != 0);
  return r;
}

IntResult Logic(Mnemonic m, std::uint64_t a, std::uint64_t b, std::uint8_t size) {
  IntResult r;
  r.writes_flags = true;
  switch (m) {
    case Mnemonic::kAnd:
    case Mnemonic::kTest: r.value = a & b; break;
    case Mnemonic::kOr: r.value = a | b; break;
    case Mnemonic::kXor: r.value = a ^ b; break;
    default: break;
  }
  r.value = MaskToSize(r.value, size);
  SetZsp(r, r.value, size);
  SetFlag(r, Flag::kCf, false);
  SetFlag(r, Flag::kOf, false);
  // AF undefined for logic ops: leave unknown.
  return r;
}

IntResult Shift(Mnemonic m, std::uint64_t a, std::uint64_t count,
                std::uint8_t size) {
  IntResult r;
  count &= size == 8 ? 63 : 31;
  a = MaskToSize(a, size);
  if (count == 0) {
    // Zero-count shifts do not modify flags.
    r.value = a;
    r.writes_flags = false;
    return r;
  }
  r.writes_flags = true;
  bool last_out = false;
  switch (m) {
    case Mnemonic::kShl:
      last_out = (a >> (size * 8 - count)) & 1;
      r.value = MaskToSize(a << count, size);
      break;
    case Mnemonic::kShr:
      last_out = (a >> (count - 1)) & 1;
      r.value = a >> count;
      break;
    case Mnemonic::kSar: {
      const std::int64_t sa = SignExtend(a, size);
      last_out = (sa >> (count - 1)) & 1;
      r.value = MaskToSize(static_cast<std::uint64_t>(sa >> count), size);
      break;
    }
    case Mnemonic::kRol: {
      const unsigned bits = size * 8;
      const unsigned c = count % bits;
      r.value = MaskToSize((a << c) | (a >> (bits - c)), size);
      last_out = r.value & 1;
      break;
    }
    case Mnemonic::kRor: {
      const unsigned bits = size * 8;
      const unsigned c = count % bits;
      r.value = MaskToSize((a >> c) | (a << (bits - c)), size);
      last_out = (r.value & MsbMask(size)) != 0;
      break;
    }
    default: break;
  }
  SetZsp(r, r.value, size);
  SetFlag(r, Flag::kCf, last_out);
  // OF defined only for 1-bit shifts; conservatively unknown.
  return r;
}

IntResult Imul2(std::uint64_t a, std::uint64_t b, std::uint8_t size) {
  IntResult r;
  r.writes_flags = true;
  const std::int64_t sa = SignExtend(a, size);
  const std::int64_t sb = SignExtend(b, size);
  const __int128 wide = static_cast<__int128>(sa) * sb;
  r.value = MaskToSize(static_cast<std::uint64_t>(wide), size);
  const bool overflow = wide != SignExtend(r.value, size);
  SetFlag(r, Flag::kCf, overflow);
  SetFlag(r, Flag::kOf, overflow);
  // ZF/SF/PF/AF undefined.
  return r;
}

double BitsToDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}
std::uint64_t DoubleToBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}
float BitsToFloat(std::uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}
std::uint32_t FloatToBits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  return bits;
}

void SetVecFlag(VecResult& r, Flag flag, bool value) {
  r.flags[static_cast<int>(flag)] = MetaFlag{true, value};
}

/// addsd/subsd/... on the low double lane, upper preserved.
Vec128 ScalarD(Mnemonic m, Vec128 dst, Vec128 src) {
  const double a = BitsToDouble(dst.lo);
  const double b = BitsToDouble(src.lo);
  double out = 0.0;
  switch (m) {
    case Mnemonic::kAddsd: out = a + b; break;
    case Mnemonic::kSubsd: out = a - b; break;
    case Mnemonic::kMulsd: out = a * b; break;
    case Mnemonic::kDivsd: out = a / b; break;
    // min/maxsd return the *source* when the compare is false or unordered
    // (NaN, equal zeros): result = (dst OP src) ? dst : src.
    case Mnemonic::kMinsd: out = a < b ? a : b; break;
    case Mnemonic::kMaxsd: out = a > b ? a : b; break;
    case Mnemonic::kSqrtsd: out = std::sqrt(b); break;
    default: break;
  }
  return Vec128{DoubleToBits(out), dst.hi};
}

Vec128 ScalarS(Mnemonic m, Vec128 dst, Vec128 src) {
  const float a = BitsToFloat(static_cast<std::uint32_t>(dst.lo));
  const float b = BitsToFloat(static_cast<std::uint32_t>(src.lo));
  float out = 0.0f;
  switch (m) {
    case Mnemonic::kAddss: out = a + b; break;
    case Mnemonic::kSubss: out = a - b; break;
    case Mnemonic::kMulss: out = a * b; break;
    case Mnemonic::kDivss: out = a / b; break;
    case Mnemonic::kMinss: out = a < b ? a : b; break;
    case Mnemonic::kMaxss: out = a > b ? a : b; break;
    case Mnemonic::kSqrtss: out = std::sqrt(b); break;
    default: break;
  }
  return Vec128{(dst.lo & ~0xffffffffull) | FloatToBits(out), dst.hi};
}

Vec128 PackedD(Mnemonic m, Vec128 dst, Vec128 src) {
  auto op = [&](std::uint64_t x, std::uint64_t y) {
    const double a = BitsToDouble(x);
    const double b = BitsToDouble(y);
    switch (m) {
      case Mnemonic::kAddpd: return DoubleToBits(a + b);
      case Mnemonic::kSubpd: return DoubleToBits(a - b);
      case Mnemonic::kMulpd: return DoubleToBits(a * b);
      case Mnemonic::kDivpd: return DoubleToBits(a / b);
      case Mnemonic::kSqrtpd: return DoubleToBits(std::sqrt(b));
      default: return std::uint64_t{0};
    }
  };
  return Vec128{op(dst.lo, src.lo), op(dst.hi, src.hi)};
}

Vec128 PackedS(Mnemonic m, Vec128 dst, Vec128 src) {
  auto lane = [&](std::uint32_t x, std::uint32_t y) {
    const float a = BitsToFloat(x);
    const float b = BitsToFloat(y);
    switch (m) {
      case Mnemonic::kAddps: return FloatToBits(a + b);
      case Mnemonic::kSubps: return FloatToBits(a - b);
      case Mnemonic::kMulps: return FloatToBits(a * b);
      case Mnemonic::kDivps: return FloatToBits(a / b);
      case Mnemonic::kSqrtps: return FloatToBits(std::sqrt(b));
      default: return std::uint32_t{0};
    }
  };
  Vec128 r;
  r.lo = lane(static_cast<std::uint32_t>(dst.lo), static_cast<std::uint32_t>(src.lo)) |
         (static_cast<std::uint64_t>(lane(static_cast<std::uint32_t>(dst.lo >> 32),
                                          static_cast<std::uint32_t>(src.lo >> 32)))
          << 32);
  r.hi = lane(static_cast<std::uint32_t>(dst.hi), static_cast<std::uint32_t>(src.hi)) |
         (static_cast<std::uint64_t>(lane(static_cast<std::uint32_t>(dst.hi >> 32),
                                          static_cast<std::uint32_t>(src.hi >> 32)))
          << 32);
  return r;
}

Vec128 PackedInt(Mnemonic m, Vec128 dst, Vec128 src) {
  auto bin = [&](std::uint64_t a, std::uint64_t b, int lane_bytes) {
    std::uint64_t out = 0;
    for (int i = 0; i < 8; i += lane_bytes) {
      const std::uint64_t mask =
          lane_bytes == 8 ? ~0ull : ((1ull << (lane_bytes * 8)) - 1);
      const std::uint64_t x = (a >> (i * 8)) & mask;
      const std::uint64_t y = (b >> (i * 8)) & mask;
      std::uint64_t v = 0;
      switch (m) {
        case Mnemonic::kPaddb: case Mnemonic::kPaddw:
        case Mnemonic::kPaddd: case Mnemonic::kPaddq: v = x + y; break;
        case Mnemonic::kPsubb: case Mnemonic::kPsubw:
        case Mnemonic::kPsubd: case Mnemonic::kPsubq: v = x - y; break;
        default: break;
      }
      out |= (v & mask) << (i * 8);
    }
    return out;
  };
  int lane_bytes = 0;
  switch (m) {
    case Mnemonic::kPaddb: case Mnemonic::kPsubb: lane_bytes = 1; break;
    case Mnemonic::kPaddw: case Mnemonic::kPsubw: lane_bytes = 2; break;
    case Mnemonic::kPaddd: case Mnemonic::kPsubd: lane_bytes = 4; break;
    default: lane_bytes = 8; break;
  }
  return Vec128{bin(dst.lo, src.lo, lane_bytes), bin(dst.hi, src.hi, lane_bytes)};
}

/// Generic lane-wise binary operation over the 128-bit value.
template <typename Fn>
Vec128 LaneWise(Vec128 a, Vec128 b, int lane_bytes, Fn&& fn) {
  auto half = [&](std::uint64_t x, std::uint64_t y) {
    std::uint64_t out = 0;
    const std::uint64_t mask =
        lane_bytes == 8 ? ~0ull : ((1ull << (lane_bytes * 8)) - 1);
    for (int i = 0; i < 8; i += lane_bytes) {
      const std::uint64_t lx = (x >> (i * 8)) & mask;
      const std::uint64_t ly = (y >> (i * 8)) & mask;
      out |= (fn(lx, ly) & mask) << (i * 8);
    }
    return out;
  };
  return Vec128{half(a.lo, b.lo), half(a.hi, b.hi)};
}

/// Shifts every lane by `count` bits (count >= lane width yields 0, or the
/// sign fill for arithmetic shifts).
Vec128 LaneShift(Mnemonic m, Vec128 a, std::uint64_t count) {
  int lane_bytes = 2;
  switch (m) {
    case Mnemonic::kPsllw: case Mnemonic::kPsrlw: case Mnemonic::kPsraw:
      lane_bytes = 2;
      break;
    case Mnemonic::kPslld: case Mnemonic::kPsrld: case Mnemonic::kPsrad:
      lane_bytes = 4;
      break;
    default:
      lane_bytes = 8;
      break;
  }
  const unsigned bits = lane_bytes * 8;
  return LaneWise(a, Vec128{}, lane_bytes,
                  [&](std::uint64_t x, std::uint64_t) -> std::uint64_t {
    switch (m) {
      case Mnemonic::kPsllw: case Mnemonic::kPslld: case Mnemonic::kPsllq:
        return count >= bits ? 0 : x << count;
      case Mnemonic::kPsrlw: case Mnemonic::kPsrld: case Mnemonic::kPsrlq:
        return count >= bits ? 0 : x >> count;
      default: {  // arithmetic
        const std::int64_t sx =
            SignExtend(x, static_cast<std::uint8_t>(lane_bytes));
        const std::uint64_t c = count >= bits - 1 ? bits - 1 : count;
        return static_cast<std::uint64_t>(sx >> c);
      }
    }
  });
}

/// Whole-register byte shifts (pslldq/psrldq).
Vec128 ByteShift(Mnemonic m, Vec128 a, std::uint64_t count) {
  if (count > 15) return Vec128{};
  std::uint8_t bytes[16];
  std::memcpy(bytes, &a.lo, 8);
  std::memcpy(bytes + 8, &a.hi, 8);
  std::uint8_t out[16] = {};
  for (int i = 0; i < 16; ++i) {
    const int src = m == Mnemonic::kPslldq ? i - static_cast<int>(count)
                                           : i + static_cast<int>(count);
    if (src >= 0 && src < 16) out[i] = bytes[src];
  }
  Vec128 r;
  std::memcpy(&r.lo, out, 8);
  std::memcpy(&r.hi, out + 8, 8);
  return r;
}

}  // namespace

std::uint64_t MaskToSize(std::uint64_t value, std::uint8_t size) {
  if (size >= 8) return value;
  return value & ((1ull << (size * 8)) - 1);
}

std::int64_t SignExtend(std::uint64_t value, std::uint8_t size) {
  switch (size) {
    case 1: return static_cast<std::int8_t>(value);
    case 2: return static_cast<std::int16_t>(value);
    case 4: return static_cast<std::int32_t>(value);
    default: return static_cast<std::int64_t>(value);
  }
}

std::optional<IntResult> EvalInt(Mnemonic mnemonic, std::uint64_t a,
                                 std::uint64_t b, std::uint8_t size,
                                 bool carry_in) {
  switch (mnemonic) {
    case Mnemonic::kAdd: return Add(a, b, size, false);
    case Mnemonic::kAdc: return Add(a, b, size, carry_in);
    case Mnemonic::kSub:
    case Mnemonic::kCmp: return Sub(a, b, size, false);
    case Mnemonic::kSbb: return Sub(a, b, size, carry_in);
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kTest: return Logic(mnemonic, a, b, size);
    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor: return Shift(mnemonic, a, b, size);
    case Mnemonic::kInc: {
      IntResult r = Add(a, 1, size, false);
      // inc preserves CF.
      r.flags[static_cast<int>(Flag::kCf)] = MetaFlag{};
      return r;
    }
    case Mnemonic::kDec: {
      IntResult r = Sub(a, 1, size, false);
      r.flags[static_cast<int>(Flag::kCf)] = MetaFlag{};
      return r;
    }
    case Mnemonic::kNeg: {
      IntResult r = Sub(0, a, size, false);
      return r;
    }
    case Mnemonic::kNot: {
      IntResult r;
      r.value = MaskToSize(~a, size);
      r.writes_flags = false;
      return r;
    }
    case Mnemonic::kImul: return Imul2(a, b, size);
    case Mnemonic::kBswap: {
      IntResult r;
      std::uint64_t v = a;
      std::uint64_t out = 0;
      for (std::uint8_t i = 0; i < size; ++i) {
        out = (out << 8) | (v & 0xff);
        v >>= 8;
      }
      r.value = out;
      return r;
    }
    case Mnemonic::kBt: {
      IntResult r;
      r.writes_flags = true;
      const unsigned bit = static_cast<unsigned>(b) % (size * 8u);
      r.flags[static_cast<int>(Flag::kCf)] = MetaFlag{true, ((a >> bit) & 1) != 0};
      r.value = MaskToSize(a, size);  // bt does not write its operand
      return r;
    }
    case Mnemonic::kPopcnt: {
      IntResult r;
      r.writes_flags = true;
      r.value = static_cast<std::uint64_t>(std::popcount(MaskToSize(a, size)));
      r.flags[static_cast<int>(Flag::kZf)] = MetaFlag{true, r.value == 0};
      r.flags[static_cast<int>(Flag::kCf)] = MetaFlag{true, false};
      return r;
    }
    case Mnemonic::kTzcnt: {
      IntResult r;
      r.writes_flags = true;
      const std::uint64_t m = MaskToSize(a, size);
      r.value = m == 0 ? size * 8u
                       : static_cast<std::uint64_t>(std::countr_zero(m));
      r.flags[static_cast<int>(Flag::kCf)] = MetaFlag{true, m == 0};
      r.flags[static_cast<int>(Flag::kZf)] = MetaFlag{true, r.value == 0};
      return r;
    }
    default:
      return std::nullopt;
  }
}

std::optional<bool> EvalCond(x86::Cond cond, const MetaFlag* flags) {
  auto flag = [&](Flag f) -> std::optional<bool> {
    const MetaFlag& mf = flags[static_cast<int>(f)];
    if (!mf.known) return std::nullopt;
    return mf.value;
  };
  using x86::Cond;
  std::optional<bool> result;
  switch (cond) {
    case Cond::kO: result = flag(Flag::kOf); break;
    case Cond::kNo: if (auto v = flag(Flag::kOf)) result = !*v; break;
    case Cond::kB: result = flag(Flag::kCf); break;
    case Cond::kAe: if (auto v = flag(Flag::kCf)) result = !*v; break;
    case Cond::kE: result = flag(Flag::kZf); break;
    case Cond::kNe: if (auto v = flag(Flag::kZf)) result = !*v; break;
    case Cond::kBe: {
      auto c = flag(Flag::kCf), z = flag(Flag::kZf);
      if (c && z) result = *c || *z;
      break;
    }
    case Cond::kA: {
      auto c = flag(Flag::kCf), z = flag(Flag::kZf);
      if (c && z) result = !*c && !*z;
      break;
    }
    case Cond::kS: result = flag(Flag::kSf); break;
    case Cond::kNs: if (auto v = flag(Flag::kSf)) result = !*v; break;
    case Cond::kP: result = flag(Flag::kPf); break;
    case Cond::kNp: if (auto v = flag(Flag::kPf)) result = !*v; break;
    case Cond::kL: {
      auto s = flag(Flag::kSf), o = flag(Flag::kOf);
      if (s && o) result = *s != *o;
      break;
    }
    case Cond::kGe: {
      auto s = flag(Flag::kSf), o = flag(Flag::kOf);
      if (s && o) result = *s == *o;
      break;
    }
    case Cond::kLe: {
      auto s = flag(Flag::kSf), o = flag(Flag::kOf), z = flag(Flag::kZf);
      if (s && o && z) result = *z || (*s != *o);
      break;
    }
    case Cond::kG: {
      auto s = flag(Flag::kSf), o = flag(Flag::kOf), z = flag(Flag::kZf);
      if (s && o && z) result = !*z && (*s == *o);
      break;
    }
  }
  return result;
}

CondResolution ResolveCond(x86::Cond cond, const MetaFlag* flags) {
  using x86::Cond;
  auto known = [&](Flag f) { return flags[static_cast<int>(f)].known; };
  auto value = [&](Flag f) { return flags[static_cast<int>(f)].value; };
  auto boolean = [](bool b) {
    return CondResolution{b ? CondResolution::Kind::kTrue
                            : CondResolution::Kind::kFalse};
  };
  auto residual = [](Cond c) {
    return CondResolution{CondResolution::Kind::kCond, c};
  };
  const CondResolution unresolved{CondResolution::Kind::kUnresolved};

  // Fully known first.
  if (auto full = EvalCond(cond, flags)) return boolean(*full);

  switch (cond) {
    // Single-flag conditions: not fully known means the flag is runtime.
    case Cond::kE: case Cond::kNe:
    case Cond::kB: case Cond::kAe:
    case Cond::kS: case Cond::kNs:
    case Cond::kO: case Cond::kNo:
    case Cond::kP: case Cond::kNp:
      return residual(cond);

    case Cond::kBe:  // CF | ZF
    case Cond::kA:   // !CF & !ZF
    {
      const bool want_a = cond == Cond::kA;
      if (known(Flag::kZf)) {
        if (value(Flag::kZf)) return boolean(!want_a);
        return residual(want_a ? Cond::kAe : Cond::kB);
      }
      if (known(Flag::kCf)) {
        if (value(Flag::kCf)) return boolean(!want_a);
        return residual(want_a ? Cond::kNe : Cond::kE);
      }
      return residual(cond);  // both runtime
    }

    case Cond::kL:   // SF ^ OF
    case Cond::kGe:  // !(SF ^ OF)
    {
      const bool want_ge = cond == Cond::kGe;
      if (known(Flag::kSf)) {
        const bool sf = value(Flag::kSf);
        // L = sf ^ OF: sf=0 -> OF (kO), sf=1 -> !OF (kNo); GE negates.
        return residual(sf != want_ge ? Cond::kNo : Cond::kO);
      }
      if (known(Flag::kOf)) {
        const bool of = value(Flag::kOf);
        return residual(of != want_ge ? Cond::kNs : Cond::kS);
      }
      return residual(cond);
    }

    case Cond::kLe:  // ZF | (SF ^ OF)
    case Cond::kG:   // !ZF & (SF == OF)
    {
      const bool want_g = cond == Cond::kG;
      if (known(Flag::kZf)) {
        if (value(Flag::kZf)) return boolean(!want_g);
        return ResolveCond(want_g ? Cond::kGe : Cond::kL, flags);
      }
      if (known(Flag::kSf) && known(Flag::kOf)) {
        const bool less = value(Flag::kSf) != value(Flag::kOf);
        if (less) return boolean(!want_g);
        // Residual: LE == ZF, G == !ZF.
        return residual(want_g ? Cond::kNe : Cond::kE);
      }
      return known(Flag::kSf) || known(Flag::kOf) ? unresolved
                                                  : residual(cond);
    }
  }
  return unresolved;
}

std::optional<VecResult> EvalVec(Mnemonic mnemonic, Vec128 dst, Vec128 src,
                                 std::uint8_t src_size, std::uint8_t imm) {
  using M = Mnemonic;
  VecResult r;
  switch (mnemonic) {
    case M::kMovss:
      r.value = Vec128{(dst.lo & ~0xffffffffull) | (src.lo & 0xffffffff), dst.hi};
      // movss xmm, m32 zeroes the rest; handled by the caller via src_size.
      if (src_size == 4) r.value = Vec128{src.lo & 0xffffffff, 0};
      return r;
    case M::kMovsdX:
      if (src_size == 8) {
        // movsd xmm, m64 zeroes the upper half.
        r.value = Vec128{src.lo, 0};
      } else {
        r.value = Vec128{src.lo, dst.hi};
      }
      return r;
    case M::kMovaps: case M::kMovapd: case M::kMovups: case M::kMovupd:
    case M::kMovdqa: case M::kMovdqu:
      r.value = src;
      return r;
    case M::kMovq:
      r.value = Vec128{src.lo, 0};
      return r;
    case M::kMovd:
      r.value = Vec128{src.lo & 0xffffffff, 0};
      return r;
    case M::kMovlps: case M::kMovlpd:
      r.value = Vec128{src.lo, dst.hi};
      return r;
    case M::kMovhps: case M::kMovhpd:
      r.value = Vec128{dst.lo, src.lo};
      return r;
    case M::kMovhlps:
      r.value = Vec128{src.hi, dst.hi};
      return r;
    case M::kMovlhps:
      r.value = Vec128{dst.lo, src.lo};
      return r;
    case M::kAddsd: case M::kSubsd: case M::kMulsd: case M::kDivsd:
    case M::kMinsd: case M::kMaxsd: case M::kSqrtsd:
      r.value = ScalarD(mnemonic, dst, src);
      return r;
    case M::kAddss: case M::kSubss: case M::kMulss: case M::kDivss:
    case M::kMinss: case M::kMaxss: case M::kSqrtss:
      r.value = ScalarS(mnemonic, dst, src);
      return r;
    case M::kAddpd: case M::kSubpd: case M::kMulpd: case M::kDivpd:
    case M::kSqrtpd:
      r.value = PackedD(mnemonic, dst, src);
      return r;
    case M::kAddps: case M::kSubps: case M::kMulps: case M::kDivps:
    case M::kSqrtps:
      r.value = PackedS(mnemonic, dst, src);
      return r;
    case M::kAndps: case M::kAndpd: case M::kPand:
      r.value = Vec128{dst.lo & src.lo, dst.hi & src.hi};
      return r;
    case M::kAndnps: case M::kAndnpd: case M::kPandn:
      r.value = Vec128{~dst.lo & src.lo, ~dst.hi & src.hi};
      return r;
    case M::kOrps: case M::kOrpd: case M::kPor:
      r.value = Vec128{dst.lo | src.lo, dst.hi | src.hi};
      return r;
    case M::kXorps: case M::kXorpd: case M::kPxor:
      r.value = Vec128{dst.lo ^ src.lo, dst.hi ^ src.hi};
      return r;
    case M::kPaddb: case M::kPaddw: case M::kPaddd: case M::kPaddq:
    case M::kPsubb: case M::kPsubw: case M::kPsubd: case M::kPsubq:
      r.value = PackedInt(mnemonic, dst, src);
      return r;
    case M::kUnpcklpd: case M::kPunpcklqdq:
      r.value = Vec128{dst.lo, src.lo};
      return r;
    case M::kUnpckhpd: case M::kPunpckhqdq:
      r.value = Vec128{dst.hi, src.hi};
      return r;
    case M::kUnpcklps: {
      const std::uint32_t d0 = static_cast<std::uint32_t>(dst.lo);
      const std::uint32_t d1 = static_cast<std::uint32_t>(dst.lo >> 32);
      const std::uint32_t s0 = static_cast<std::uint32_t>(src.lo);
      const std::uint32_t s1 = static_cast<std::uint32_t>(src.lo >> 32);
      r.value = Vec128{d0 | (static_cast<std::uint64_t>(s0) << 32),
                       d1 | (static_cast<std::uint64_t>(s1) << 32)};
      return r;
    }
    case M::kUnpckhps: {
      const std::uint32_t d2 = static_cast<std::uint32_t>(dst.hi);
      const std::uint32_t d3 = static_cast<std::uint32_t>(dst.hi >> 32);
      const std::uint32_t s2 = static_cast<std::uint32_t>(src.hi);
      const std::uint32_t s3 = static_cast<std::uint32_t>(src.hi >> 32);
      r.value = Vec128{d2 | (static_cast<std::uint64_t>(s2) << 32),
                       d3 | (static_cast<std::uint64_t>(s3) << 32)};
      return r;
    }
    case M::kPshufd: {
      auto lane = [&](Vec128 v, int i) -> std::uint32_t {
        const std::uint64_t half = i < 2 ? v.lo : v.hi;
        return static_cast<std::uint32_t>(half >> ((i & 1) * 32));
      };
      std::uint32_t out[4];
      for (int i = 0; i < 4; ++i) out[i] = lane(src, (imm >> (2 * i)) & 3);
      r.value = Vec128{out[0] | (static_cast<std::uint64_t>(out[1]) << 32),
                       out[2] | (static_cast<std::uint64_t>(out[3]) << 32)};
      return r;
    }
    case M::kShufpd: {
      r.value = Vec128{(imm & 1) ? dst.hi : dst.lo, (imm & 2) ? src.hi : src.lo};
      return r;
    }
    case M::kUcomisd: case M::kComisd: {
      double a, b;
      std::memcpy(&a, &dst.lo, 8);
      std::memcpy(&b, &src.lo, 8);
      r.writes_flags = true;
      const bool unordered = std::isnan(a) || std::isnan(b);
      SetVecFlag(r, Flag::kZf, unordered || a == b);
      SetVecFlag(r, Flag::kPf, unordered);
      SetVecFlag(r, Flag::kCf, unordered || a < b);
      SetVecFlag(r, Flag::kOf, false);
      SetVecFlag(r, Flag::kSf, false);
      SetVecFlag(r, Flag::kAf, false);
      r.value = dst;
      return r;
    }
    case M::kUcomiss: case M::kComiss: {
      float a, b;
      const std::uint32_t abits = static_cast<std::uint32_t>(dst.lo);
      const std::uint32_t bbits = static_cast<std::uint32_t>(src.lo);
      std::memcpy(&a, &abits, 4);
      std::memcpy(&b, &bbits, 4);
      r.writes_flags = true;
      const bool unordered = std::isnan(a) || std::isnan(b);
      SetVecFlag(r, Flag::kZf, unordered || a == b);
      SetVecFlag(r, Flag::kPf, unordered);
      SetVecFlag(r, Flag::kCf, unordered || a < b);
      SetVecFlag(r, Flag::kOf, false);
      SetVecFlag(r, Flag::kSf, false);
      SetVecFlag(r, Flag::kAf, false);
      r.value = dst;
      return r;
    }
    case M::kCvtss2sd: {
      float f;
      const std::uint32_t bits = static_cast<std::uint32_t>(src.lo);
      std::memcpy(&f, &bits, 4);
      const double d = static_cast<double>(f);
      std::uint64_t out;
      std::memcpy(&out, &d, 8);
      r.value = Vec128{out, dst.hi};
      return r;
    }
    case M::kCvtsd2ss: {
      double d;
      std::memcpy(&d, &src.lo, 8);
      const float f = static_cast<float>(d);
      std::uint32_t out;
      std::memcpy(&out, &f, 4);
      r.value = Vec128{(dst.lo & ~0xffffffffull) | out, dst.hi};
      return r;
    }
    case M::kPcmpeqb: case M::kPcmpeqw: case M::kPcmpeqd: {
      const int lane = mnemonic == M::kPcmpeqb ? 1
                       : mnemonic == M::kPcmpeqw ? 2 : 4;
      const std::uint64_t ones = lane == 8 ? ~0ull : (1ull << (lane * 8)) - 1;
      r.value = LaneWise(dst, src, lane, [&](std::uint64_t a, std::uint64_t b) {
        return a == b ? ones : 0ull;
      });
      return r;
    }
    case M::kPcmpgtb: case M::kPcmpgtw: case M::kPcmpgtd: {
      const int lane = mnemonic == M::kPcmpgtb ? 1
                       : mnemonic == M::kPcmpgtw ? 2 : 4;
      const std::uint64_t ones = (1ull << (lane * 8)) - 1;
      const std::uint8_t lane8 = static_cast<std::uint8_t>(lane);
      r.value = LaneWise(dst, src, lane, [&](std::uint64_t a, std::uint64_t b) {
        return SignExtend(a, lane8) > SignExtend(b, lane8) ? ones : 0ull;
      });
      return r;
    }
    case M::kPsllw: case M::kPslld: case M::kPsllq:
    case M::kPsrlw: case M::kPsrld: case M::kPsrlq:
    case M::kPsraw: case M::kPsrad:
      // src_size == 1 marks the immediate form; otherwise the count is the
      // low 64 bits of the source register.
      r.value = LaneShift(mnemonic, dst, src.lo);
      return r;
    case M::kPslldq: case M::kPsrldq:
      r.value = ByteShift(mnemonic, dst, src.lo);
      return r;
    case M::kPmullw:
      r.value = LaneWise(dst, src, 2, [](std::uint64_t a, std::uint64_t b) {
        return a * b;
      });
      return r;
    case M::kPmuludq: {
      // Multiplies the even 32-bit lanes into 64-bit results.
      const std::uint64_t lo = (dst.lo & 0xffffffff) * (src.lo & 0xffffffff);
      const std::uint64_t hi = (dst.hi & 0xffffffff) * (src.hi & 0xffffffff);
      r.value = Vec128{lo, hi};
      return r;
    }
    case M::kPminub:
      r.value = LaneWise(dst, src, 1, [](std::uint64_t a, std::uint64_t b) {
        return a < b ? a : b;
      });
      return r;
    case M::kPmaxub:
      r.value = LaneWise(dst, src, 1, [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a : b;
      });
      return r;
    case M::kPminsw:
      r.value = LaneWise(dst, src, 2, [](std::uint64_t a, std::uint64_t b) {
        return SignExtend(a, 2) < SignExtend(b, 2) ? a : b;
      });
      return r;
    case M::kPmaxsw:
      r.value = LaneWise(dst, src, 2, [](std::uint64_t a, std::uint64_t b) {
        return SignExtend(a, 2) > SignExtend(b, 2) ? a : b;
      });
      return r;
    case M::kPavgb:
      r.value = LaneWise(dst, src, 1, [](std::uint64_t a, std::uint64_t b) {
        return (a + b + 1) >> 1;
      });
      return r;
    case M::kPavgw:
      r.value = LaneWise(dst, src, 2, [](std::uint64_t a, std::uint64_t b) {
        return (a + b + 1) >> 1;
      });
      return r;
    case M::kPunpcklbw: case M::kPunpcklwd: case M::kPunpckldq:
    case M::kPunpckhbw: case M::kPunpckhwd: case M::kPunpckhdq: {
      const int lane = (mnemonic == M::kPunpcklbw || mnemonic == M::kPunpckhbw)
                           ? 1
                       : (mnemonic == M::kPunpcklwd || mnemonic == M::kPunpckhwd)
                           ? 2
                           : 4;
      const bool high = mnemonic == M::kPunpckhbw ||
                        mnemonic == M::kPunpckhwd ||
                        mnemonic == M::kPunpckhdq;
      std::uint8_t a[16], b[16], out[16];
      std::memcpy(a, &dst.lo, 8);
      std::memcpy(a + 8, &dst.hi, 8);
      std::memcpy(b, &src.lo, 8);
      std::memcpy(b + 8, &src.hi, 8);
      const int base = high ? 8 : 0;
      int at = 0;
      for (int i = 0; i < 8 / lane; ++i) {
        for (int j = 0; j < lane; ++j) out[at++] = a[base + i * lane + j];
        for (int j = 0; j < lane; ++j) out[at++] = b[base + i * lane + j];
      }
      std::memcpy(&r.value.lo, out, 8);
      std::memcpy(&r.value.hi, out + 8, 8);
      return r;
    }
    case M::kCmpsd: case M::kCmpss: {
      // imm selects the predicate: 0 eq, 1 lt, 2 le, 3 unord, 4 neq,
      // 5 nlt, 6 nle, 7 ord.
      bool result;
      if (mnemonic == M::kCmpsd) {
        double a, bb;
        std::memcpy(&a, &dst.lo, 8);
        std::memcpy(&bb, &src.lo, 8);
        const bool unord = std::isnan(a) || std::isnan(bb);
        switch (imm & 7) {
          case 0: result = a == bb; break;
          case 1: result = a < bb; break;
          case 2: result = a <= bb; break;
          case 3: result = unord; break;
          case 4: result = !(a == bb); break;
          case 5: result = !(a < bb); break;
          case 6: result = !(a <= bb); break;
          default: result = !unord; break;
        }
        r.value = Vec128{result ? ~0ull : 0ull, dst.hi};
      } else {
        float a, bb;
        const std::uint32_t ab = static_cast<std::uint32_t>(dst.lo);
        const std::uint32_t bbits = static_cast<std::uint32_t>(src.lo);
        std::memcpy(&a, &ab, 4);
        std::memcpy(&bb, &bbits, 4);
        const bool unord = std::isnan(a) || std::isnan(bb);
        switch (imm & 7) {
          case 0: result = a == bb; break;
          case 1: result = a < bb; break;
          case 2: result = a <= bb; break;
          case 3: result = unord; break;
          case 4: result = !(a == bb); break;
          case 5: result = !(a < bb); break;
          case 6: result = !(a <= bb); break;
          default: result = !unord; break;
        }
        r.value = Vec128{(dst.lo & ~0xffffffffull) | (result ? 0xffffffffull : 0),
                         dst.hi};
      }
      return r;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace dbll::dbrew
