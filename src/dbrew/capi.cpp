#include "dbll/dbrew/capi.h"

#include <string>

#include "dbll/dbrew/rewriter.h"

struct dbrew_rewriter {
  explicit dbrew_rewriter(std::uint64_t function) : impl(function) {}
  dbll::dbrew::Rewriter impl;
  std::string last_error;
};

extern "C" {

dbrew_rewriter* dbrew_new(void* func) {
  return new dbrew_rewriter(reinterpret_cast<std::uint64_t>(func));
}

void dbrew_setpar(dbrew_rewriter* r, int index, uint64_t value) {
  r->impl.SetParam(index - 1, value);  // paper examples are 1-based
}

void dbrew_setmem(dbrew_rewriter* r, const void* start, const void* end) {
  r->impl.SetMemRange(reinterpret_cast<std::uint64_t>(start),
                      reinterpret_cast<std::uint64_t>(end));
}

void dbrew_set_buffer_size(dbrew_rewriter* r, uint64_t bytes) {
  r->impl.config().code_buffer_size = bytes;
}

void dbrew_set_verbose(dbrew_rewriter* r, int verbose) {
  r->impl.config().verbose = verbose != 0;
}

void* dbrew_rewrite(dbrew_rewriter* r) {
  const std::uint64_t entry = r->impl.RewriteOrOriginal();
  r->last_error = r->impl.last_error().ok() ? std::string()
                                            : r->impl.last_error().Format();
  return reinterpret_cast<void*>(entry);
}

const char* dbrew_last_error(dbrew_rewriter* r) {
  return r->last_error.c_str();
}

void dbrew_set_unroll_cap(dbrew_rewriter* r, uint64_t cap) {
  r->impl.config().unroll_cap = cap;
}

void dbrew_set_inline_depth(dbrew_rewriter* r, int depth) {
  r->impl.config().max_inline_depth = depth;
}

uint64_t dbrew_stat_emitted(dbrew_rewriter* r) {
  return r->impl.stats().emitted_instrs;
}

uint64_t dbrew_stat_folded(dbrew_rewriter* r) {
  return r->impl.stats().folded_instrs;
}

uint64_t dbrew_stat_inlined_calls(dbrew_rewriter* r) {
  return r->impl.stats().inlined_calls;
}

uint64_t dbrew_stat_code_bytes(dbrew_rewriter* r) {
  return r->impl.stats().code_bytes;
}

void dbrew_free(dbrew_rewriter* r) { delete r; }

}  // extern "C"
