#include "dbll/dbrew/capi.h"

#include <string>

#include "dbll/dbrew/rewriter.h"
#include "dbll/runtime/compile_service.h"

struct dbrew_rewriter {
  explicit dbrew_rewriter(std::uint64_t function) : impl(function) {}
  dbll::dbrew::Rewriter impl;
  std::string last_error;
};

struct dbll_cache {
  explicit dbll_cache(dbll::runtime::CompileService::Options options)
      : impl(options) {}
  dbll::runtime::CompileService impl;
};

struct dbll_cache_req {
  dbll_cache* cache = nullptr;
  dbll::runtime::CompileRequest request;
  dbll::runtime::FunctionHandle handle;  // valid once submitted
  bool submitted = false;
  std::string last_error;

  void Submit() {
    if (!submitted) {
      handle = cache->impl.Request(request);
      submitted = true;
    }
  }
};

extern "C" {

dbrew_rewriter* dbrew_new(void* func) {
  return new dbrew_rewriter(reinterpret_cast<std::uint64_t>(func));
}

void dbrew_setpar(dbrew_rewriter* r, int index, uint64_t value) {
  r->impl.SetParam(index - 1, value);  // paper examples are 1-based
}

void dbrew_setmem(dbrew_rewriter* r, const void* start, const void* end) {
  r->impl.SetMemRange(reinterpret_cast<std::uint64_t>(start),
                      reinterpret_cast<std::uint64_t>(end));
}

void dbrew_set_buffer_size(dbrew_rewriter* r, uint64_t bytes) {
  r->impl.config().code_buffer_size = bytes;
}

void dbrew_set_verbose(dbrew_rewriter* r, int verbose) {
  r->impl.config().verbose = verbose != 0;
}

void* dbrew_rewrite(dbrew_rewriter* r) {
  const std::uint64_t entry = r->impl.RewriteOrOriginal();
  r->last_error = r->impl.last_error().ok() ? std::string()
                                            : r->impl.last_error().Format();
  return reinterpret_cast<void*>(entry);
}

const char* dbrew_last_error(dbrew_rewriter* r) {
  return r->last_error.c_str();
}

void dbrew_set_unroll_cap(dbrew_rewriter* r, uint64_t cap) {
  r->impl.config().unroll_cap = cap;
}

void dbrew_set_inline_depth(dbrew_rewriter* r, int depth) {
  r->impl.config().max_inline_depth = depth;
}

uint64_t dbrew_stat_emitted(dbrew_rewriter* r) {
  return r->impl.stats().emitted_instrs;
}

uint64_t dbrew_stat_folded(dbrew_rewriter* r) {
  return r->impl.stats().folded_instrs;
}

uint64_t dbrew_stat_inlined_calls(dbrew_rewriter* r) {
  return r->impl.stats().inlined_calls;
}

uint64_t dbrew_stat_code_bytes(dbrew_rewriter* r) {
  return r->impl.stats().code_bytes;
}

void dbrew_free(dbrew_rewriter* r) { delete r; }

// --- dbll_cache_*: specialization cache + async compile service ------------

dbll_cache* dbll_cache_new(int workers, uint64_t capacity) {
  dbll::runtime::CompileService::Options options;
  options.workers = workers;
  options.capacity = static_cast<std::size_t>(capacity);
  return new dbll_cache(options);
}

void dbll_cache_free(dbll_cache* c) { delete c; }

dbll_cache_req* dbll_cache_request(dbll_cache* c, void* func, int int_args,
                                   int returns_value) {
  auto* q = new dbll_cache_req;
  q->cache = c;
  q->request.address = reinterpret_cast<std::uint64_t>(func);
  q->request.signature = dbll::lift::Signature::Ints(
      int_args, returns_value != 0 ? dbll::lift::RetKind::kInt
                                   : dbll::lift::RetKind::kVoid);
  return q;
}

void dbll_cache_req_setpar(dbll_cache_req* q, int index, uint64_t value) {
  q->request.FixParam(index - 1, value);  // paper examples are 1-based
}

void dbll_cache_req_setmem(dbll_cache_req* q, int index, const void* data,
                           uint64_t size) {
  q->request.FixConstMem(index - 1, data, static_cast<std::size_t>(size));
}

void* dbll_cache_call_target(dbll_cache_req* q) {
  q->Submit();
  return reinterpret_cast<void*>(q->handle.target());
}

void* dbll_cache_wait(dbll_cache_req* q) {
  q->Submit();
  return reinterpret_cast<void*>(q->handle.wait());
}

int dbll_cache_ready(dbll_cache_req* q) {
  q->Submit();
  return q->handle.specialized() ? 1 : 0;
}

const char* dbll_cache_req_error(dbll_cache_req* q) {
  using State = dbll::runtime::FunctionHandle::State;
  if (q->submitted && q->handle.state() == State::kFailed) {
    q->last_error = q->handle.error().Format();
  } else {
    q->last_error.clear();
  }
  return q->last_error.c_str();
}

void dbll_cache_req_free(dbll_cache_req* q) { delete q; }

uint64_t dbll_cache_stat_hits(dbll_cache* c) {
  const auto stats = c->impl.stats();
  return stats.hits + stats.coalesced;
}

uint64_t dbll_cache_stat_misses(dbll_cache* c) { return c->impl.stats().misses; }

uint64_t dbll_cache_stat_evictions(dbll_cache* c) {
  return c->impl.stats().evictions;
}

uint64_t dbll_cache_stat_compiles(dbll_cache* c) {
  return c->impl.stats().compiles;
}

uint64_t dbll_cache_stat_compile_ns(dbll_cache* c) {
  return c->impl.stats().stage_total.total_ns();
}

}  // extern "C"
