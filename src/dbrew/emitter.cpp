#include "emitter.h"

#include <cstring>

#include "dbll/x86/encoder.h"

namespace dbll::dbrew {

void CodeEmitter::AppendPoolLoad(int block, const x86::Instr& instr,
                                 std::uint64_t lo, std::uint64_t hi) {
  std::size_t index = pool_.size();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i].lo == lo && pool_[i].hi == hi) {
      index = i;
      break;
    }
  }
  if (index == pool_.size()) {
    pool_.push_back({lo, hi});
  }
  EmitEntry entry;
  entry.kind = EmitEntry::Kind::kPoolLoad;
  entry.instr = instr;
  entry.pool_index = index;
  blocks_[static_cast<std::size_t>(block)].entries.push_back(entry);
}

std::size_t CodeEmitter::TotalEntries() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block.entries.size();
  return total;
}

Expected<std::uint64_t> CodeEmitter::Layout(CodeBuffer& buffer) {
  struct Fixup {
    std::uint64_t patch_address;  // address of the rel32/disp32 field
    int target_block = -1;        // branch fixup
    std::size_t pool_index = 0;   // pool fixup (when target_block < 0)
  };
  std::vector<Fixup> fixups;

  const std::uint64_t start =
      reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();

  for (auto& block : blocks_) {
    block.address = reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();
    for (std::size_t ei = 0; ei < block.entries.size(); ++ei) {
      EmitEntry& entry = block.entries[ei];
      const std::uint64_t address =
          reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();
      switch (entry.kind) {
        case EmitEntry::Kind::kInstr: {
          DBLL_TRY(std::uint8_t * dest, buffer.Reserve(x86::Encoder::kMaxLength));
          DBLL_TRY(std::size_t length,
                   x86::Encoder::Encode(entry.instr,
                                        {dest, x86::Encoder::kMaxLength}, address));
          buffer.Reset(buffer.used() - (x86::Encoder::kMaxLength - length));
          break;
        }
        case EmitEntry::Kind::kBranch: {
          // Skip a trailing unconditional jump to the block that is laid out
          // immediately after this one.
          const bool is_last = ei + 1 == block.entries.size();
          const bool next_is_sequential =
              entry.block ==
              static_cast<int>(&block - blocks_.data()) + 1;
          if (entry.instr.mnemonic == x86::Mnemonic::kJmp && is_last &&
              next_is_sequential) {
            break;
          }
          const std::size_t length =
              entry.instr.mnemonic == x86::Mnemonic::kJmp ? 5u : 6u;
          DBLL_TRY(std::uint8_t * dest, buffer.Reserve(length));
          if (entry.instr.mnemonic == x86::Mnemonic::kJmp) {
            dest[0] = 0xe9;
          } else {
            dest[0] = 0x0f;
            dest[1] = static_cast<std::uint8_t>(
                0x80 | static_cast<std::uint8_t>(entry.instr.cond));
          }
          std::memset(dest + length - 4, 0, 4);
          fixups.push_back(Fixup{address + length - 4, entry.block, 0});
          break;
        }
        case EmitEntry::Kind::kPoolLoad: {
          // Encode with a zero RIP displacement, then patch.
          x86::Instr instr = entry.instr;
          DBLL_TRY(std::uint8_t * dest, buffer.Reserve(x86::Encoder::kMaxLength));
          instr.target = address;  // rel 0 placeholder, always in range
          DBLL_TRY(std::size_t length,
                   x86::Encoder::Encode(instr, {dest, x86::Encoder::kMaxLength},
                                        address));
          buffer.Reset(buffer.used() - (x86::Encoder::kMaxLength - length));
          // The disp32 of a RIP-relative operand without immediate is the
          // last 4 bytes of the encoding (no pool instruction carries an
          // immediate).
          fixups.push_back(Fixup{address + length - 4, -1, entry.pool_index});
          break;
        }
      }
    }
  }

  // Constant pool, 16-byte aligned.
  const std::size_t misalign = buffer.used() % 16;
  if (misalign != 0) {
    DBLL_TRY(std::uint8_t * pad, buffer.Reserve(16 - misalign));
    std::memset(pad, 0xcc, 16 - misalign);
  }
  std::vector<std::uint64_t> pool_addresses;
  pool_addresses.reserve(pool_.size());
  for (const PoolEntry& entry : pool_) {
    const std::uint64_t address =
        reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();
    DBLL_TRY(std::uint8_t * dest, buffer.Reserve(16));
    std::memcpy(dest, &entry.lo, 8);
    std::memcpy(dest + 8, &entry.hi, 8);
    pool_addresses.push_back(address);
  }

  for (const Fixup& fixup : fixups) {
    const std::uint64_t target =
        fixup.target_block >= 0
            ? blocks_[static_cast<std::size_t>(fixup.target_block)].address
            : pool_addresses[fixup.pool_index];
    const std::int64_t rel = static_cast<std::int64_t>(target) -
                             static_cast<std::int64_t>(fixup.patch_address + 4);
    if (rel < INT32_MIN || rel > INT32_MAX) {
      return Error(ErrorKind::kEncode, "layout fixup out of rel32 range");
    }
    const std::int32_t rel32 = static_cast<std::int32_t>(rel);
    std::memcpy(reinterpret_cast<void*>(fixup.patch_address), &rel32, 4);
  }

  return start;
}

}  // namespace dbll::dbrew
