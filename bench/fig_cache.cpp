// dbll bench -- the specialization-cache amortization curve (extends the
// paper's Fig. 10 compile-time story to a serving scenario).
//
// Measures, on the flat line-kernel specialization the paper evaluates:
//   1. uncached request latency: full lift -> O3 -> JIT on every request;
//   2. cached request latency: the same request as a hash lookup;
//   3. the async path: the first request returns the *generic* entry
//      immediately (never blocks), and the Jacobi driver picks up the
//      specialized kernel mid-run once the background compile installs it;
//   4. calls-to-breakeven: how many specialized calls amortize one compile;
//   5. concurrent-requester throughput on a warm cache.
//
// Results are printed and written to BENCH_cache.json (median/p95 ns per
// request, breakeven call count) for scripts/check.sh and CI trending.
// `--smoke` (or DBLL_BENCH_REPS) shrinks the repetition counts.
//
// A sixth section measures the static-analysis tentpole (flag liveness and
// value ranges, docs/static_analysis.md): Tier-0 lift wall time and pre-O3
// IR size with and without flag-liveness pruning, the wall-time cost of the
// value-range pass on the same kernel, and the eligibility delta on a dense
// switch (lifts with ranges, rejected without), written to
// BENCH_analysis.json.
//
// A seventh section measures crash containment (docs/robustness.md): the
// per-call cost of the signal-guarded probation dispatcher vs a raw call of
// the same specialized entry, and -- the gate -- that the steady-state cost
// after probation re-binds the raw entry is unchanged (within 2%), written
// to BENCH_containment.json.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "dbll/lift/lifter.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/containment.h"
#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

namespace {

// Same dense-switch shape as the corpus's c_switch_dispatch: the compiler
// emits a jump table, so the function is lift-eligible only with the
// value-range pass resolving the indirect dispatch.
__attribute__((noinline)) long BenchSwitchDispatch(long a, long b) {
  switch (a & 7) {
    case 0: return b + 1;
    case 1: return b * 3;
    case 2: return b - a;
    case 3: return b ^ a;
    case 4: return b << 2;
    case 5: return b & 0x5555;
    case 6: return -b;
    default: return a + b;
  }
}

runtime::CompileRequest LineRequest() {
  runtime::CompileRequest request(
      reinterpret_cast<std::uint64_t>(&stencil_line_flat), KernelSignature());
  request.FixConstMem(0, &FourPointFlat(), sizeof(FlatStencil));
  return request;
}

double TimeRequestNs(runtime::CompileService& service,
                     const runtime::CompileRequest& request) {
  Timer timer;
  auto handle = service.Request(request);
  (void)handle.wait();
  return timer.Seconds() * 1e9;
}

/// Best-of-rounds per-call cost of `fn` on one grid row; the minimum over
/// rounds filters co-tenant noise on shared hosts (both sides of every
/// containment comparison are measured the same way).
double MinCallNs(LineKernel fn, JacobiGrid& grid, int calls, int rounds) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    Timer timer;
    for (int i = 0; i < calls; ++i) {
      fn(&FourPointFlat(), grid.front(), grid.front(), 1);
    }
    best = std::min(best, timer.Seconds() * 1e9 / calls);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 20;
  if (const char* env = std::getenv("DBLL_BENCH_REPS")) reps = std::atoi(env);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) reps = 5;
  if (reps < 2) reps = 2;

  std::printf("dbll fig_cache: specialization cache + async compile service "
              "(%d compile reps)\n\n", reps);

  // --- 1+2: uncached vs cached request latency -----------------------------
  runtime::CompileService service({/*workers=*/1, /*capacity=*/256});
  const runtime::CompileRequest request = LineRequest();

  std::vector<double> uncached_ns;
  for (int i = 0; i < reps; ++i) {
    service.Clear();  // force the miss path; the JIT session stays warm
    uncached_ns.push_back(TimeRequestNs(service, request));
  }

  const int lookup_reps = reps * 500;
  std::vector<double> cached_ns;
  cached_ns.reserve(static_cast<std::size_t>(lookup_reps));
  for (int i = 0; i < lookup_reps; ++i) {
    cached_ns.push_back(TimeRequestNs(service, request));
  }

  const double uncached_median = Median(uncached_ns);
  const double cached_median = Median(cached_ns);
  const double speedup =
      cached_median > 0 ? uncached_median / cached_median : 0.0;
  std::printf("uncached request (lift+O3+JIT): median %10.0f ns  p95 %10.0f ns\n",
              uncached_median, Percentile(uncached_ns, 95));
  std::printf("cached request (hash lookup):   median %10.0f ns  p95 %10.0f ns\n",
              cached_median, Percentile(cached_ns, 95));
  std::printf("cache-hit speedup: %.0fx %s\n\n", speedup,
              speedup >= 100.0 ? "(ok, >= 100x)" : "(BELOW the 100x target)");

  // --- 3: async path never blocks the caller -------------------------------
  runtime::CompileService async_service({1, 256});
  const std::uint64_t generic =
      reinterpret_cast<std::uint64_t>(&stencil_line_flat);
  Timer request_timer;
  auto handle = async_service.Request(LineRequest());
  const double request_ns = request_timer.Seconds() * 1e9;
  const std::uint64_t first_target = handle.target();
  const bool first_call_generic = first_target == generic;

  // Drive the Jacobi workload while the compile runs in the background; the
  // provider observes the atomic swap between sweeps.
  JacobiGrid grid;
  int sweeps_before_swap = 0;
  bool counting = true;
  grid.RunLineAdaptive(
      [&]() -> LineKernel {
        if (counting && !handle.specialized()) ++sweeps_before_swap;
        else counting = false;
        return handle.as<LineKernel>();
      },
      &FourPointFlat(), 40);
  (void)handle.wait();
  const runtime::StageTimes times = handle.times();
  std::printf("async: Request() returned in %.0f ns; first call target was "
              "%s; %d generic sweeps served during compile\n",
              request_ns, first_call_generic ? "the generic entry"
                                             : "already specialized",
              sweeps_before_swap);
  std::printf("stage times: lift %.2f ms, opt %.2f ms, jit %.2f ms\n\n",
              times.lift_ns / 1e6, times.opt_ns / 1e6, times.jit_ns / 1e6);

  // --- 4: calls-to-breakeven ------------------------------------------------
  // Per-call cost of the generic vs the specialized line kernel on one row.
  const auto specialized = handle.as<LineKernel>();
  JacobiGrid cost_grid;
  const int call_reps = 2000;
  Timer generic_timer;
  for (int i = 0; i < call_reps; ++i) {
    stencil_line_flat(&FourPointFlat(), cost_grid.front(), cost_grid.front(),
                      1);
  }
  const double generic_call_ns = generic_timer.Seconds() * 1e9 / call_reps;
  Timer spec_timer;
  for (int i = 0; i < call_reps; ++i) {
    specialized(&FourPointFlat(), cost_grid.front(), cost_grid.front(), 1);
  }
  const double spec_call_ns = spec_timer.Seconds() * 1e9 / call_reps;
  const double compile_ns = static_cast<double>(times.total_ns());
  const double gain_ns = generic_call_ns - spec_call_ns;
  const double breakeven =
      gain_ns > 0 ? compile_ns / gain_ns : -1.0;
  std::printf("per-call: generic %.0f ns, specialized %.0f ns, compile %.2f ms\n",
              generic_call_ns, spec_call_ns, compile_ns / 1e6);
  if (breakeven >= 0) {
    std::printf("breakeven after ~%.0f specialized calls\n\n", breakeven);
  } else {
    std::printf("breakeven: n/a (specialized kernel not faster on this run)\n\n");
  }

  // --- 5: concurrent requesters on a warm cache -----------------------------
  const int threads = 4;
  const int per_thread = reps * 2000;
  std::atomic<std::uint64_t> sink{0};
  Timer concurrent_timer;
  {
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        std::uint64_t local = 0;
        for (int i = 0; i < per_thread; ++i) {
          auto h = service.Request(request);
          local ^= h.target();
        }
        sink += local;
      });
    }
    for (auto& t : pool) t.join();
  }
  const double concurrent_s = concurrent_timer.Seconds();
  const double total_requests = static_cast<double>(threads) * per_thread;
  std::printf("concurrent: %d threads x %d requests in %.3f s "
              "(%.0f requests/s)\n",
              threads, per_thread, concurrent_s,
              total_requests / concurrent_s);

  const runtime::CacheStats stats = service.stats();
  std::printf("stats: %llu hits, %llu coalesced, %llu misses, %llu "
              "evictions, %llu compiles, %llu failures\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.compiles),
              static_cast<unsigned long long>(stats.failures));

  // --- 6: flag-liveness pruning in the lifter -------------------------------
  // Pre-O3 IR size and lift wall time for the paper's line kernel, with the
  // static flag-liveness analysis on vs off (LiftConfig::flag_liveness).
  const std::uint64_t line_entry =
      reinterpret_cast<std::uint64_t>(&stencil_line_flat);
  lift::LiftConfig flag_on;
  flag_on.flag_liveness = true;
  lift::LiftConfig flag_off;
  flag_off.flag_liveness = false;
  std::size_t ir_pruned = 0;
  std::size_t ir_unpruned = 0;
  std::vector<double> lift_on_ns;
  std::vector<double> lift_off_ns;
  bool analysis_ok = true;
  for (int i = 0; i < reps; ++i) {
    lift::Lifter lifter_on(flag_on);
    Timer on_timer;
    auto lifted_on = lifter_on.Lift(line_entry, KernelSignature());
    lift_on_ns.push_back(on_timer.Seconds() * 1e9);
    lift::Lifter lifter_off(flag_off);
    Timer off_timer;
    auto lifted_off = lifter_off.Lift(line_entry, KernelSignature());
    lift_off_ns.push_back(off_timer.Seconds() * 1e9);
    if (!lifted_on.has_value() || !lifted_off.has_value()) {
      analysis_ok = false;
      break;
    }
    ir_pruned = lifted_on->IrInstructionCount();
    ir_unpruned = lifted_off->IrInstructionCount();
  }
  const double ir_reduction_pct =
      ir_unpruned > 0
          ? 100.0 * (1.0 - static_cast<double>(ir_pruned) /
                               static_cast<double>(ir_unpruned))
          : 0.0;
  analysis_ok = analysis_ok && ir_pruned < ir_unpruned;
  std::printf("flag liveness: pre-O3 IR %zu -> %zu instrs (-%.1f%%), "
              "lift median %.0f ns (on) vs %.0f ns (off) %s\n\n",
              ir_unpruned, ir_pruned, ir_reduction_pct, Median(lift_on_ns),
              Median(lift_off_ns),
              analysis_ok ? "(ok, pruning reduces IR)"
                          : "(FAIL: no IR reduction)");

  // Value ranges: pass cost on the same kernel (no indirect jumps, so the
  // delta is pure analysis wall time), plus the eligibility delta on the
  // dense switch -- lifts with ranges on, rejected with ranges off.
  lift::LiftConfig ranges_on;
  ranges_on.value_ranges = true;
  lift::LiftConfig ranges_off;
  ranges_off.value_ranges = false;
  std::vector<double> ranges_on_ns;
  std::vector<double> ranges_off_ns;
  for (int i = 0; i < reps; ++i) {
    lift::Lifter lifter_ranges_on(ranges_on);
    Timer on_timer;
    (void)lifter_ranges_on.Lift(line_entry, KernelSignature());
    ranges_on_ns.push_back(on_timer.Seconds() * 1e9);
    lift::Lifter lifter_ranges_off(ranges_off);
    Timer off_timer;
    (void)lifter_ranges_off.Lift(line_entry, KernelSignature());
    ranges_off_ns.push_back(off_timer.Seconds() * 1e9);
  }
  const std::uint64_t switch_entry =
      reinterpret_cast<std::uint64_t>(&BenchSwitchDispatch);
  const lift::Signature switch_sig = lift::Signature::Ints(2);
  lift::Lifter switch_lifter_on(ranges_on);
  auto switch_on = switch_lifter_on.Lift(switch_entry, switch_sig);
  lift::Lifter switch_lifter_off(ranges_off);
  auto switch_off = switch_lifter_off.Lift(switch_entry, switch_sig);
  const bool ranges_ok = switch_on.has_value() && !switch_off.has_value();
  const std::size_t switch_ir =
      switch_on.has_value() ? switch_on->IrInstructionCount() : 0;
  std::printf("value ranges: lift median %.0f ns (on) vs %.0f ns (off); "
              "switch dispatch %s with ranges (%zu IR instrs), %s without %s\n",
              Median(ranges_on_ns), Median(ranges_off_ns),
              switch_on.has_value() ? "lifts" : "REJECTED", switch_ir,
              switch_off.has_value() ? "LIFTS" : "rejected",
              ranges_ok ? "(ok)" : "(FAIL)");
  analysis_ok = analysis_ok && ranges_ok;

  JsonObject analysis_json;
  analysis_json.Put("kernel", "stencil_line_flat")
      .Put("ir_instrs_unpruned", static_cast<std::uint64_t>(ir_unpruned))
      .Put("ir_instrs_pruned", static_cast<std::uint64_t>(ir_pruned))
      .Put("ir_reduction_pct", ir_reduction_pct)
      .Put("lift_median_ns_flag_liveness_on", Median(lift_on_ns))
      .Put("lift_median_ns_flag_liveness_off", Median(lift_off_ns))
      .Put("lift_median_ns_ranges_on", Median(ranges_on_ns))
      .Put("lift_median_ns_ranges_off", Median(ranges_off_ns))
      .Put("switch_ir_instrs", static_cast<std::uint64_t>(switch_ir))
      .Put("switch_lifts_with_ranges", switch_on.has_value())
      .Put("switch_rejected_without_ranges", !switch_off.has_value())
      .Put("reps", static_cast<std::uint64_t>(lift_on_ns.size()))
      .Put("pruning_ok", analysis_ok);
  const char* analysis_path = "BENCH_analysis.json";
  if (WriteJsonFile(analysis_path, analysis_json)) {
    std::printf("wrote %s\n", analysis_path);
  } else {
    std::printf("FAILED to write %s\n", analysis_path);
    return 1;
  }

  // --- 7: crash-containment probation overhead ------------------------------
  // (a) Dispatcher cost: the same specialized entry called raw vs through a
  // never-completing probation stub (every guarded call pays the register
  // spill + sigsetjmp + guard bookkeeping). (b) The steady-state gate: with
  // containment on, after N clean calls the slot must re-bind to the raw
  // entry, so the post-probation hit cost matches the raw cost within 2%.
  const std::uint64_t spec_entry = handle.target();
  JacobiGrid contain_grid;
  const int contain_calls = 2000;
  const int contain_rounds = 5;
  const double raw_call_ns =
      MinCallNs(specialized, contain_grid, contain_calls, contain_rounds);

  auto guard = runtime::ProbationGuard::Create(
      spec_entry, generic, /*probation_calls=*/1u << 30,
      runtime::ProbationGuard::Hooks{});
  double guarded_call_ns = -1.0;
  double guard_overhead_ns = -1.0;
  if (guard.has_value()) {
    guarded_call_ns =
        MinCallNs(reinterpret_cast<LineKernel>((*guard)->stub_entry()),
                  contain_grid, contain_calls, contain_rounds);
    guard_overhead_ns = guarded_call_ns - raw_call_ns;
  }

  runtime::CompileService::Options contain_options;
  contain_options.workers = 1;
  contain_options.containment.enabled = true;
  contain_options.containment.probation_calls = 8;
  runtime::CompileService contain_service(contain_options);
  auto contain_handle = contain_service.Request(LineRequest());
  const std::uint64_t contain_stub = contain_handle.wait();
  auto contain_fn = contain_handle.as<LineKernel>();
  for (std::uint32_t i = 0; i < contain_options.containment.probation_calls;
       ++i) {
    contain_fn(&FourPointFlat(), contain_grid.front(), contain_grid.front(), 1);
  }
  const bool rebound = contain_handle.target() != contain_stub;
  // Both sides of the ratio are the raw entry address by construction once
  // the re-bind happened; min-of-rounds keeps the 2% gate meaningful on a
  // noisy shared host (one full re-measure on a miss, like fig_tiering).
  double steady_call_ns = -1.0;
  double steady_ratio = -1.0;
  bool steady_ok = false;
  for (int attempt = 0; attempt < 2 && !steady_ok; ++attempt) {
    steady_call_ns = MinCallNs(contain_handle.as<LineKernel>(), contain_grid,
                               contain_calls, contain_rounds);
    const double raw_again =
        MinCallNs(specialized, contain_grid, contain_calls, contain_rounds);
    const double raw_best = std::min(raw_call_ns, raw_again);
    steady_ratio = raw_best > 0 ? steady_call_ns / raw_best : -1.0;
    steady_ok = rebound && steady_ratio >= 0 && steady_ratio <= 1.02;
  }
  std::printf("containment: raw call %.1f ns, guarded (probation) %.1f ns "
              "(+%.1f ns), steady-state after re-bind %.1f ns "
              "(ratio %.3f) %s\n\n",
              raw_call_ns, guarded_call_ns, guard_overhead_ns, steady_call_ns,
              steady_ratio,
              steady_ok ? "(ok, within 2%)"
                        : "(FAIL: probation cost did not vanish)");

  JsonObject containment_json;
  containment_json.Put("bench", "fig_cache_containment")
      .Put("kernel", "stencil_line_flat")
      .Put("raw_call_ns", raw_call_ns)
      .Put("guarded_call_ns", guarded_call_ns)
      .Put("guard_overhead_ns", guard_overhead_ns)
      .Put("probation_calls",
           static_cast<std::uint64_t>(contain_options.containment
                                          .probation_calls))
      .Put("rebound_to_raw_entry", rebound)
      .Put("steady_state_call_ns", steady_call_ns)
      .Put("steady_vs_raw_ratio", steady_ratio)
      .Put("steady_ok", steady_ok);
  const char* containment_path = "BENCH_containment.json";
  if (WriteJsonFile(containment_path, containment_json)) {
    std::printf("wrote %s\n", containment_path);
  } else {
    std::printf("FAILED to write %s\n", containment_path);
    return 1;
  }

  JsonObject json;
  json.Put("bench", "fig_cache").Put("reps", reps);
  JsonObject uncached;
  uncached.Put("median_ns", uncached_median)
      .Put("p95_ns", Percentile(uncached_ns, 95))
      .Put("reps", static_cast<std::uint64_t>(uncached_ns.size()));
  json.Put("uncached_request", uncached);
  JsonObject cached;
  cached.Put("median_ns", cached_median)
      .Put("p95_ns", Percentile(cached_ns, 95))
      .Put("reps", static_cast<std::uint64_t>(cached_ns.size()));
  json.Put("cached_request", cached);
  json.Put("hit_speedup_median", speedup);
  json.Put("hit_speedup_ok", speedup >= 100.0);
  JsonObject async;
  async.Put("request_ns", request_ns)
      .Put("first_call_generic", first_call_generic)
      .Put("generic_sweeps_during_compile",
           static_cast<std::uint64_t>(sweeps_before_swap))
      .Put("lift_ns", static_cast<std::uint64_t>(times.lift_ns))
      .Put("opt_ns", static_cast<std::uint64_t>(times.opt_ns))
      .Put("jit_ns", static_cast<std::uint64_t>(times.jit_ns));
  json.Put("async", async);
  JsonObject amortization;
  amortization.Put("generic_call_ns", generic_call_ns)
      .Put("specialized_call_ns", spec_call_ns)
      .Put("compile_ns", compile_ns)
      .Put("breakeven_calls", breakeven);
  json.Put("amortization", amortization);
  JsonObject concurrent;
  concurrent.Put("threads", threads)
      .Put("requests", static_cast<std::uint64_t>(total_requests))
      .Put("requests_per_sec", total_requests / concurrent_s);
  json.Put("concurrent", concurrent);
  JsonObject stats_json;
  stats_json.Put("hits", stats.hits)
      .Put("coalesced", stats.coalesced)
      .Put("misses", stats.misses)
      .Put("evictions", stats.evictions)
      .Put("compiles", stats.compiles)
      .Put("failures", stats.failures);
  json.Put("stats", stats_json);

  const char* out_path = "BENCH_cache.json";
  if (WriteJsonFile(out_path, json)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("FAILED to write %s\n", out_path);
    return 1;
  }
  return speedup >= 100.0 && first_call_generic && analysis_ok && steady_ok
             ? 0
             : 2;
}
