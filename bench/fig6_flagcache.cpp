// dbll bench -- Figure 6: effect of the flag cache on the lifted IR of a
// maximum-of-two-registers function, plus a runtime micro-benchmark of both
// variants (the paper only shows the IR; the timing quantifies the effect).
#include <cstdint>
#include <cstdio>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;

namespace {

__attribute__((noinline)) long MaxFn(long a, long b) { return a > b ? a : b; }

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("dbll fig6: flag-cache effect on `max(a, b)` (cmp + cmovl)\n\n");

  lift::Jit jit;
  std::uint64_t with_cache = 0;
  std::uint64_t without_cache = 0;

  {
    lift::Lifter lifter;  // flag cache on (default)
    auto lifted = lifter.Lift(&MaxFn, lift::Signature::Ints(2), "max_fc");
    if (!lifted.has_value()) {
      std::printf("lift failed: %s\n", lifted.error().Format().c_str());
      return 1;
    }
    auto ir = lifted->OptimizeAndGetIr();
    std::printf("--- optimized LLVM-IR WITH flag cache (paper Fig. 6c) ---\n%s\n",
                ir.has_value() ? ir->c_str() : ir.error().Format().c_str());
    auto compiled = lifted->Compile(jit);
    if (compiled.has_value()) with_cache = *compiled;
  }
  {
    lift::LiftConfig config;
    config.flag_cache = false;
    lift::Lifter lifter(config);
    auto lifted = lifter.Lift(&MaxFn, lift::Signature::Ints(2), "max_nofc");
    if (!lifted.has_value()) {
      std::printf("lift failed: %s\n", lifted.error().Format().c_str());
      return 1;
    }
    auto ir = lifted->OptimizeAndGetIr();
    std::printf(
        "--- optimized LLVM-IR WITHOUT flag cache (paper Fig. 6b) ---\n%s\n",
        ir.has_value() ? ir->c_str() : ir.error().Format().c_str());
    auto compiled = lifted->Compile(jit);
    if (compiled.has_value()) without_cache = *compiled;
  }

  if (with_cache == 0 || without_cache == 0) {
    std::printf("compilation failed; no timing\n");
    return 1;
  }

  // Micro-benchmark: a reduction over pseudo-random values.
  auto run = [](std::uint64_t entry) {
    auto fn = reinterpret_cast<long (*)(long, long)>(entry);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    long acc = 0;
    Timer timer;
    for (int i = 0; i < 50'000'000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      acc = fn(acc, static_cast<long>(x));
    }
    const double s = timer.Seconds();
    std::printf("  checksum %ld\n", acc);
    return s;
  };
  std::printf("micro-benchmark: 50M max() reductions\n");
  const double t_native = [&] {
    Timer timer;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    long acc = 0;
    for (int i = 0; i < 50'000'000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      acc = MaxFn(acc, static_cast<long>(x));
    }
    std::printf("  checksum %ld\n", acc);
    return timer.Seconds();
  }();
  const double t_cache = run(with_cache);
  const double t_nocache = run(without_cache);
  std::printf("%-24s %8.3f s\n", "native", t_native);
  std::printf("%-24s %8.3f s (%.2fx native)\n", "lifted, flag cache", t_cache,
              t_cache / t_native);
  std::printf("%-24s %8.3f s (%.2fx native)\n", "lifted, no flag cache",
              t_nocache, t_nocache / t_native);
  return 0;
}
