// dbll bench -- second workload (beyond the paper's stencil): CSR sparse
// matrix-vector product with a runtime-known sparsity pattern. The paper's
// introduction motivates exactly this class of specialization ("input data
// ... can be covered in generic code. This gets specialized into a concrete
// implementation when executed").
//
// Modes: Native generic CSR; LLVM identity transform; DBrew with the full
// matrix fixed (pattern + values fold, per-row loops unroll); DBrew with
// only the *pattern* fixed (value loads stay live -- the realistic solver
// setting where values change per assembly step); DBrew+LLVM on top.
#include <cstdint>
#include <vector>

#include "dbll/spmv/spmv.h"
#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::spmv;

namespace {

using Fn = void (*)(const CsrMatrix*, const double*, double*, long);

double TimeProduct(Fn fn, const CsrMatrix* m, const std::vector<double>& x,
                   std::vector<double>& y, long rows, int reps) {
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    fn(m, x.data(), y.data(), rows);
  }
  return timer.Seconds();
}

double MaxDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 50000;
  if (const char* env = std::getenv("DBLL_BENCH_ITERS")) reps = std::atoi(env) * 20;
  if (argc > 1) reps = std::atoi(argv[1]);
  const long n = 256;

  std::printf(
      "dbll fig_spmv: CSR sparse matrix-vector product, n=%ld, %d repeated "
      "products per mode\n",
      n, reps);
  PrintHeader("Second workload -- pattern-specialized SpMV");

  struct Pattern {
    const char* name;
    CsrBuilder builder;
  };
  Pattern patterns[] = {
      {"Banded5", CsrBuilder::Banded(n, {-16, -1, 0, 1, 16})},
      {"Random8", CsrBuilder::Random(n, 8, 42)},
  };

  lift::Jit jit;
  std::vector<dbrew::Rewriter> rewriters;
  rewriters.reserve(8);

  for (Pattern& pattern : patterns) {
    const CsrMatrix m = pattern.builder.Finish();
    std::vector<double> x(static_cast<std::size_t>(n));
    for (long i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = 0.5 + 0.001 * static_cast<double>(i);
    }
    std::vector<double> y_ref(static_cast<std::size_t>(n));
    SpmvReference(m, x.data(), y_ref.data());

    double native_time = 0;
    auto report = [&](const char* mode, Expected<std::uint64_t> entry,
                      const CsrMatrix* arg) {
      Row row;
      row.kernel = pattern.name;
      row.mode = mode;
      if (!entry.has_value()) {
        row.ok = false;
        row.note = entry.error().Format();
        PrintRow(row);
        return;
      }
      std::vector<double> y(static_cast<std::size_t>(n));
      row.seconds = TimeProduct(reinterpret_cast<Fn>(*entry), arg, x, y, n,
                                reps);
      if (native_time == 0) native_time = row.seconds;
      row.vs_native = row.seconds / native_time;
      row.ok = MaxDiff(y, y_ref) < 1e-12;
      PrintRow(row);
    };

    report("Native", reinterpret_cast<std::uint64_t>(&spmv_full), &m);

    {
      lift::Lifter lifter;
      auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&spmv_full),
                                KernelSignature());
      report("LLVM", lifted.has_value()
                         ? lifted->Compile(jit)
                         : Expected<std::uint64_t>(lifted.error()),
             &m);
    }

    // DBrew, full matrix fixed (pattern + values).
    {
      rewriters.emplace_back(reinterpret_cast<std::uint64_t>(&spmv_full));
      dbrew::Rewriter& rewriter = rewriters.back();
      rewriter.config().code_buffer_size = 1 << 20;
      rewriter.config().max_blocks = 1 << 15;
      rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&m));
      rewriter.SetParam(3, n);
      rewriter.SetMemRange(&m, &m + 1);
      rewriter.SetMemRange(m.row_start, m.row_start + m.rows + 1);
      rewriter.SetMemRange(m.col_idx, m.col_idx + m.row_start[m.rows]);
      rewriter.SetMemRange(m.values, m.values + m.row_start[m.rows]);
      auto entry = rewriter.Rewrite();
      report("DBrew-all", entry, nullptr);
      if (entry.has_value()) {
        lift::Lifter lifter;
        auto lifted = lifter.Lift(*entry, KernelSignature());
        report("DBrew+LLVM", lifted.has_value()
                                 ? lifted->Compile(jit)
                                 : Expected<std::uint64_t>(lifted.error()),
               nullptr);
      }
    }

    // DBrew, pattern only (value loads stay live).
    {
      rewriters.emplace_back(reinterpret_cast<std::uint64_t>(&spmv_full));
      dbrew::Rewriter& rewriter = rewriters.back();
      rewriter.config().code_buffer_size = 1 << 20;
      rewriter.config().max_blocks = 1 << 15;
      rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&m));
      rewriter.SetParam(3, n);
      rewriter.SetMemRange(&m, &m + 1);
      rewriter.SetMemRange(m.row_start, m.row_start + m.rows + 1);
      rewriter.SetMemRange(m.col_idx, m.col_idx + m.row_start[m.rows]);
      auto entry = rewriter.Rewrite();
      report("DBrew-pat", entry, nullptr);
    }
  }
  return 0;
}
