// dbll bench -- Figure 9a: running times of the *element kernel* for
// {Direct, Struct (flat), SortedStruct} x {Native, LLVM, LLVM-fix, DBrew,
// DBrew+LLVM}.
//
// Expected shape (paper values in parentheses, Haswell/GCC5.4/LLVM3.7):
//  * Direct: all modes equal (10.5/10.5/10.7 s) except DBrew, which loses
//    some ground on re-encoded scalar code (21.7 s).
//  * Struct: generic code is ~4x slower than Direct (38.5 vs 10.5); LLVM-fix
//    reaches Direct (38.6); DBrew helps (100.9 -> 54.9 relative to its
//    unspecialized base); DBrew+LLVM reaches Direct (44.0 -> ~10.5 class).
//  * SortedStruct: LLVM-fix degrades (nested pointers not propagated);
//    DBrew+LLVM reaches Direct.
#include <cstdint>
#include <vector>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

namespace {

struct Kernel {
  const char* name;
  std::uint64_t fn;
  const void* st;
  std::size_t st_size;
  /// Second fixed region (the nested group array of the sorted structure);
  /// only DBrew can exploit it (paper Sec. IV limitation for LLVM-fix).
  const void* st2 = nullptr;
  std::size_t st2_size = 0;
};

Expected<std::uint64_t> LlvmMode(lift::Jit& jit, const Kernel& k, bool fix) {
  lift::Lifter lifter;
  DBLL_TRY(lift::LiftedFunction lifted, lifter.Lift(k.fn, KernelSignature()));
  if (fix && k.st != nullptr) {
    DBLL_TRY_STATUS(lifted.SpecializeParamToConstMem(0, k.st, k.st_size));
  }
  return lifted.Compile(jit);
}

Expected<std::uint64_t> DbrewMode(std::vector<dbrew::Rewriter>& keep,
                                  const Kernel& k) {
  keep.emplace_back(k.fn);
  dbrew::Rewriter& rewriter = keep.back();
  if (k.st != nullptr) {
    rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(k.st));
    rewriter.SetMemRange(k.st,
                         static_cast<const char*>(k.st) + k.st_size);
  }
  if (k.st2 != nullptr) {
    rewriter.SetMemRange(k.st2,
                         static_cast<const char*>(k.st2) + k.st2_size);
  }
  return rewriter.Rewrite();
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = JacobiIterations(argc, argv);
  std::printf(
      "dbll fig9a: element-kernel running times, %d Jacobi iterations on a "
      "%ldx%ld grid (paper: 50000 iterations)\n",
      iters, kMatrixSize, kMatrixSize);
  PrintHeader("Figure 9a -- element kernel");

  const Kernel kernels[] = {
      {"Direct", reinterpret_cast<std::uint64_t>(&stencil_apply_direct),
       nullptr, 0},
      {"Struct", reinterpret_cast<std::uint64_t>(&stencil_apply_flat),
       &FourPointFlat(), sizeof(FlatStencil)},
      {"SortedStruct",
       reinterpret_cast<std::uint64_t>(&stencil_apply_sorted_ptr),
       &FourPointSortedPtr(), sizeof(PtrSortedStencil),
       FourPointSortedPtr().groups, sizeof(SortedGroup)},
  };

  lift::Jit jit;
  std::vector<dbrew::Rewriter> rewriters;  // keep generated code alive
  rewriters.reserve(16);

  double reference_checksum = 0;
  {
    JacobiGrid grid;
    grid.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct),
                    nullptr, iters);
    reference_checksum = grid.Checksum();
  }

  for (const Kernel& k : kernels) {
    double native_time = 0;

    auto report = [&](const char* mode, Expected<std::uint64_t> entry,
                      const void* stencil_arg) {
      Row row;
      row.kernel = k.name;
      row.mode = mode;
      if (!entry.has_value()) {
        row.ok = false;
        row.note = entry.error().Format();
        PrintRow(row);
        return;
      }
      row.seconds = TimeElement(*entry, stencil_arg, iters, &row.checksum);
      row.ok = ChecksumOk(row.checksum, reference_checksum);
      if (native_time == 0) native_time = row.seconds;
      row.vs_native = row.seconds / native_time;
      PrintRow(row);
    };

    report("Native", k.fn, k.st);
    report("LLVM", LlvmMode(jit, k, /*fix=*/false), k.st);
    if (k.st != nullptr) {
      report("LLVM-fix", LlvmMode(jit, k, /*fix=*/true), nullptr);
    } else {
      report("LLVM-fix", LlvmMode(jit, k, /*fix=*/false), nullptr);
    }
    auto dbrew_entry = DbrewMode(rewriters, k);
    report("DBrew", dbrew_entry, k.st);
    if (dbrew_entry.has_value()) {
      lift::Lifter lifter;
      auto lifted = lifter.Lift(*dbrew_entry, KernelSignature());
      if (lifted.has_value()) {
        report("DBrew+LLVM", lifted->Compile(jit), k.st);
      } else {
        report("DBrew+LLVM", Expected<std::uint64_t>(lifted.error()), k.st);
      }
    }
  }
  return 0;
}
