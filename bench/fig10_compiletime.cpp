// dbll bench -- Figure 10: average transformation (compile) times of the
// different modes on the line kernel, averaged over many repetitions.
//
// Expected shape (paper values): DBrew < 0.05 ms in every case; LLVM
// transformation times grow with code complexity (8.8 ms Direct ->
// 18.2 ms SortedStruct with fixation on their machine/LLVM 3.7). Absolute
// numbers differ with LLVM 14, but DBrew must stay orders of magnitude
// below the LLVM-based modes.
#include <cstdint>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

namespace {

struct Kernel {
  const char* name;
  std::uint64_t inline_fn;
  std::uint64_t outlined_fn;
  const void* st;
  std::size_t st_size;
};

double AvgMillis(int repetitions, const std::function<void()>& fn) {
  Timer timer;
  for (int i = 0; i < repetitions; ++i) fn();
  return timer.Millis() / repetitions;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 50;  // paper: 1000; LLVM 14 is slower per compile
  if (const char* env = std::getenv("DBLL_BENCH_REPS")) reps = std::atoi(env);
  if (argc > 1) reps = std::atoi(argv[1]);

  std::printf(
      "dbll fig10: average transformation times on the line kernel, "
      "%d repetitions per mode (paper: 1000)\n",
      reps);
  std::printf("%-14s %-12s %12s\n", "kernel", "mode", "avg time[ms]");

  const Kernel kernels[] = {
      {"Direct", reinterpret_cast<std::uint64_t>(&stencil_line_direct),
       reinterpret_cast<std::uint64_t>(&stencil_line_direct_outlined),
       nullptr, 0},
      {"Struct", reinterpret_cast<std::uint64_t>(&stencil_line_flat),
       reinterpret_cast<std::uint64_t>(&stencil_line_flat_outlined),
       &FourPointFlat(), sizeof(FlatStencil)},
      {"SortedStruct", reinterpret_cast<std::uint64_t>(&stencil_line_sorted),
       reinterpret_cast<std::uint64_t>(&stencil_line_sorted_outlined),
       &FourPointSorted(), sizeof(SortedStencil)},
  };

  for (const Kernel& k : kernels) {
    // LLVM identity transformation: lift + O3 + JIT codegen.
    {
      const double ms = AvgMillis(reps, [&] {
        lift::Jit jit;
        lift::Lifter lifter;
        auto lifted = lifter.Lift(k.inline_fn, KernelSignature());
        if (lifted.has_value()) (void)lifted->Compile(jit);
      });
      std::printf("%-14s %-12s %12.3f\n", k.name, "LLVM", ms);
    }
    // LLVM with parameter fixation.
    if (k.st != nullptr) {
      const double ms = AvgMillis(reps, [&] {
        lift::Jit jit;
        lift::Lifter lifter;
        auto lifted = lifter.Lift(k.inline_fn, KernelSignature());
        if (lifted.has_value()) {
          (void)lifted->SpecializeParamToConstMem(0, k.st, k.st_size);
          (void)lifted->Compile(jit);
        }
      });
      std::printf("%-14s %-12s %12.3f\n", k.name, "LLVM-fix", ms);
    }
    // Plain DBrew rewrite of the outlined line kernel.
    {
      const double ms = AvgMillis(reps * 10, [&] {
        dbrew::Rewriter rewriter(k.outlined_fn);
        if (k.st != nullptr) {
          rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(k.st));
          rewriter.SetMemRange(k.st,
                               static_cast<const char*>(k.st) + k.st_size);
        }
        (void)rewriter.Rewrite();
      });
      std::printf("%-14s %-12s %12.3f\n", k.name, "DBrew", ms);
    }
    // DBrew followed by the LLVM transformation.
    {
      dbrew::Rewriter rewriter(k.outlined_fn);
      if (k.st != nullptr) {
        rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(k.st));
        rewriter.SetMemRange(k.st,
                             static_cast<const char*>(k.st) + k.st_size);
      }
      auto rewritten = rewriter.Rewrite();
      const double ms = AvgMillis(reps, [&] {
        dbrew::Rewriter inner(k.outlined_fn);
        if (k.st != nullptr) {
          inner.SetParam(0, reinterpret_cast<std::uint64_t>(k.st));
          inner.SetMemRange(k.st, static_cast<const char*>(k.st) + k.st_size);
        }
        auto entry = inner.Rewrite();
        if (entry.has_value()) {
          lift::Jit jit;
          lift::Lifter lifter;
          auto lifted = lifter.Lift(*entry, KernelSignature());
          if (lifted.has_value()) (void)lifted->Compile(jit);
        }
      });
      (void)rewritten;
      std::printf("%-14s %-12s %12.3f\n", k.name, "DBrew+LLVM", ms);
    }
  }
  // --- Stage breakdown (extends the paper's Fig. 10): where does the LLVM
  // transformation time go? Lift (x86 -> IR), optimize (-O3 pipeline), and
  // JIT codegen are timed separately on the flat line kernel.
  std::printf("\nstage breakdown, flat line kernel (avg over %d reps):\n",
              reps);
  {
    double lift_ms = 0;
    double opt_ms = 0;
    double jit_ms = 0;
    for (int i = 0; i < reps; ++i) {
      lift::Jit jit;
      lift::Lifter lifter;
      Timer t_lift;
      auto lifted = lifter.Lift(
          reinterpret_cast<std::uint64_t>(&stencil_line_flat),
          KernelSignature());
      lift_ms += t_lift.Millis();
      if (!lifted.has_value()) break;
      Timer t_opt;
      (void)lifted->OptimizeAndGetIr();
      opt_ms += t_opt.Millis();
      Timer t_jit;
      (void)lifted->Compile(jit);  // pipeline already ran; JIT only
      jit_ms += t_jit.Millis();
    }
    std::printf("  %-18s %10.3f ms\n", "lift (x86->IR)", lift_ms / reps);
    std::printf("  %-18s %10.3f ms\n", "optimize (-O3)", opt_ms / reps);
    std::printf("  %-18s %10.3f ms\n", "JIT codegen", jit_ms / reps);
  }
  return 0;
}
