// dbll bench -- shared harness for the figure-reproduction benchmarks.
//
// Every bench binary prints the rows of one paper table/figure. Iteration
// counts are scaled down from the paper's 50 000 Jacobi sweeps (the shapes
// are iteration-count invariant); override with DBLL_BENCH_ITERS or argv[1].
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/stencil/stencil.h"

namespace dbll::bench {

inline int JacobiIterations(int argc, char** argv, int fallback = 60) {
  if (const char* env = std::getenv("DBLL_BENCH_ITERS")) {
    return std::atoi(env);
  }
  if (argc > 1) {
    return std::atoi(argv[1]);
  }
  return fallback;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The kernel signature shared by all stencil benchmarks:
/// void(const void* stencil, const double* m1, double* m2, long).
inline lift::Signature KernelSignature() {
  return lift::Signature{{lift::ArgKind::kInt, lift::ArgKind::kInt,
                          lift::ArgKind::kInt, lift::ArgKind::kInt},
                         lift::RetKind::kVoid};
}

/// Times one element-kernel Jacobi run and verifies the checksum.
inline double TimeElement(std::uint64_t kernel, const void* stencil,
                          int iterations, double* checksum) {
  stencil::JacobiGrid grid;
  Timer timer;
  grid.RunElement(reinterpret_cast<stencil::ElementKernel>(kernel), stencil,
                  iterations);
  const double elapsed = timer.Seconds();
  *checksum = grid.Checksum();
  return elapsed;
}

inline double TimeLine(std::uint64_t kernel, const void* stencil,
                       int iterations, double* checksum) {
  stencil::JacobiGrid grid;
  Timer timer;
  grid.RunLine(reinterpret_cast<stencil::LineKernel>(kernel), stencil,
               iterations);
  const double elapsed = timer.Seconds();
  *checksum = grid.Checksum();
  return elapsed;
}

/// One row of a Fig. 9-style table.
struct Row {
  std::string kernel;   // Direct / Struct / SortedStruct
  std::string mode;     // Native / LLVM / LLVM-fix / DBrew / DBrew+LLVM
  double seconds = 0;
  double vs_native = 0;  // ratio to the same kernel's Native time
  double checksum = 0;
  bool ok = true;        // checksum matched the reference
  std::string note;
};

/// Checksum comparison: fast-math post-processing (which the paper enables,
/// Sec. IV: "similar to the -ffast-math compiler flag") may legally
/// reassociate FP sums, so checksums are compared with a tight relative
/// tolerance rather than bit-exactly.
inline bool ChecksumOk(double got, double reference) {
  const double scale = std::max(1.0, std::abs(reference));
  return std::abs(got - reference) <= 1e-9 * scale;
}

inline void PrintHeader(const char* title) {
  std::printf("## %s\n", title);
  std::printf("%-14s %-12s %10s %10s  %s\n", "kernel", "mode", "time[s]",
              "vs-native", "status");
}

inline void PrintRow(const Row& row) {
  std::printf("%-14s %-12s %10.3f %10.2f  %s%s%s\n", row.kernel.c_str(),
              row.mode.c_str(), row.seconds, row.vs_native,
              row.ok ? "ok" : "CHECKSUM-MISMATCH",
              row.note.empty() ? "" : "  # ", row.note.c_str());
}

// --- Machine-readable output (BENCH_*.json) ---------------------------------

/// Percentile of a sample set (nearest-rank); `p` in [0, 100]. Sorts a copy.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

inline double Median(const std::vector<double>& samples) {
  return Percentile(samples, 50.0);
}

/// Minimal JSON object builder for the BENCH_*.json result files consumed by
/// scripts/check.sh and CI tooling. Keys are emitted in insertion order;
/// values are numbers, booleans, strings, or nested objects.
class JsonObject {
 public:
  JsonObject& Put(const std::string& key, double value) {
    char buf[64];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    return PutRaw(key, buf);
  }
  JsonObject& Put(const std::string& key, std::uint64_t value) {
    return PutRaw(key, std::to_string(value));
  }
  JsonObject& Put(const std::string& key, int value) {
    return PutRaw(key, std::to_string(value));
  }
  JsonObject& Put(const std::string& key, bool value) {
    return PutRaw(key, value ? "true" : "false");
  }
  JsonObject& Put(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return PutRaw(key, quoted);
  }
  JsonObject& Put(const std::string& key, const char* value) {
    return Put(key, std::string(value));
  }
  JsonObject& Put(const std::string& key, const JsonObject& object) {
    return PutRaw(key, object.Str());
  }

  std::string Str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  JsonObject& PutRaw(const std::string& key, std::string raw) {
    fields_.emplace_back(key, std::move(raw));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes `object` to `path` (pretty-printed enough for humans: one line).
/// Returns false on I/O failure.
inline bool WriteJsonFile(const std::string& path, const JsonObject& object) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = object.Str() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace dbll::bench
