// dbll bench -- Sec. VI-B vectorization experiment: the LLVM loop vectorizer
// considers the lifted line-kernel loop non-profitable (missing type/meta
// information); forcing it (the paper's -force-vector-width=2) recovers most
// of the statically vectorized performance, losing only on unaligned loads.
#include <cstdint>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

int main(int argc, char** argv) {
  const int iters = JacobiIterations(argc, argv);
  std::printf(
      "dbll fig_vectorize: forced loop vectorization on the lifted direct "
      "line kernel, %d Jacobi iterations\n",
      iters);
  PrintHeader("Sec. VI-B -- forced vectorization");

  const std::uint64_t kernel =
      reinterpret_cast<std::uint64_t>(&stencil_line_direct);

  double reference = 0;
  double native_time = 0;
  {
    Row row;
    row.kernel = "Direct-line";
    row.mode = "Native";
    row.seconds = TimeLine(kernel, nullptr, iters, &row.checksum);
    reference = row.checksum;
    native_time = row.seconds;
    row.vs_native = 1.0;
    PrintRow(row);
  }

  auto run_mode = [&](const char* mode, bool force) {
    Row row;
    row.kernel = "Direct-line";
    row.mode = mode;
    lift::Jit jit;
    lift::Lifter lifter;
    auto lifted = lifter.Lift(kernel, KernelSignature());
    if (!lifted.has_value()) {
      row.ok = false;
      row.note = lifted.error().Format();
      PrintRow(row);
      return;
    }
    if (force) {
      auto status = lift::SetLlvmOption("force-vector-width=2");
      if (!status.ok()) {
        row.note = "option rejected: " + status.error().Format();
      }
    }
    auto compiled = lifted->Compile(jit);
    if (force) {
      (void)lift::SetLlvmOption("force-vector-width=0");  // restore default
    }
    if (!compiled.has_value()) {
      row.ok = false;
      row.note = compiled.error().Format();
      PrintRow(row);
      return;
    }
    row.seconds = TimeLine(*compiled, nullptr, iters, &row.checksum);
    row.vs_native = row.seconds / native_time;
    row.ok = ChecksumOk(row.checksum, reference);
    PrintRow(row);
  };

  run_mode("LLVM", false);
  run_mode("LLVM-forceW2", true);
  return 0;
}
