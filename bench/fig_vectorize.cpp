// dbll bench -- Sec. VI-B vectorization experiment, per ISA ladder level.
//
// The paper recovered vectorized performance on the lifted direct line
// kernel by flipping the process-global -force-vector-width=2 option. This
// bench exercises the two mechanisms that replaced it (docs/codegen.md):
//
//   * LiftConfig.vectorize_hint / vector_width -- per-request loop metadata
//     instead of a global cl::opt, and
//   * LiftConfig.isa_level -- multi-versioned codegen: the same lifted IR
//     compiled once per ISA ladder level the host supports (baseline SSE2,
//     AVX2, AVX-512), each with the level's real TargetTransformInfo, so the
//     vectorizer picks the level's natural width on its own.
//
// Rows: Native (statically compiled), one LLVM row per ladder level up to
// the host's effective level, and an "auto" row (isa_level = -1) showing
// which level dispatch resolves to. Results go to BENCH_vectorize.json.
//
// `--smoke` turns the run into a gate: on a host whose effective level is
// at least avx2, the best level's variant must beat the baseline-ISA
// variant by >= 1.2x and auto-dispatch must have selected the best level.
// With DBLL_JIT_ISA=baseline only the baseline row exists, so the speedup
// gate is vacuous and the run just checks correctness.
#include <cstdint>
#include <cstring>
#include <string>

#include "dbll/support/cpu_features.h"
#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

namespace {

/// Min-of-reps line-kernel timing: the grid sweep is long enough that the
/// minimum is a stable estimator and cheap enough to repeat.
double TimeLineBest(std::uint64_t kernel, int iters, int reps,
                    double* checksum) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    double sum = 0;
    const double t = TimeLine(kernel, nullptr, iters, &sum);
    if (r == 0 || t < best) {
      best = t;
      *checksum = sum;
    }
  }
  return best;
}

/// Rows swept by the hot-band measurement: 2 interior rows (reading rows
/// 0..3) keep the working set around 2 x 4 x 649 x 8 B -- L1-resident, so
/// the sweep is bound by the kernel's arithmetic, not by DRAM bandwidth.
constexpr long kBandRows = 2;

/// Hot-band timing: the full 649^2 Jacobi sweep streams ~6.7 MB per
/// iteration and is memory-bound on most hosts, which hides any SIMD-width
/// difference between the ISA variants. Sweeping only a narrow row band
/// (double-buffered, like the real Jacobi loop) keeps the data in L1 and
/// exposes the compute-bound speedup multi-versioning buys. Checksum is over
/// the final front buffer; every variant runs the identical iteration count,
/// so matching sums mean matching arithmetic.
double TimeBandBest(std::uint64_t kernel, int iters, int reps,
                    double* checksum) {
  auto k = reinterpret_cast<LineKernel>(kernel);
  stencil::JacobiGrid a, b;
  const double* src = a.front();
  double* dst = b.front();
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (int i = 0; i < iters; ++i) {
      for (long y = 1; y <= kBandRows; ++y) k(nullptr, src, dst, y);
      std::swap(src, const_cast<const double*&>(dst));
    }
    const double t = timer.Seconds();
    if (r == 0 || t < best) best = t;
  }
  // Sum over whichever buffer holds the last-written band (src after the
  // final swap): the untouched rows contribute identically across variants.
  double sum = 0;
  for (long i = 0; i < stencil::kMatrixSize * stencil::kMatrixSize; ++i) {
    sum += src[i];
  }
  *checksum = sum;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int arg_iters = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      arg_iters = std::atoi(argv[i]);
    }
  }
  int iters = smoke ? 40 : 60;
  if (arg_iters > 0) iters = arg_iters;
  if (const char* env = std::getenv("DBLL_BENCH_ITERS")) iters = std::atoi(env);
  const int reps = smoke ? 5 : 7;
  const int band_iters = smoke ? 12000 : 24000;
  const int host_level = static_cast<int>(support::EffectiveIsaLevel());

  std::printf(
      "dbll fig_vectorize: lifted direct line kernel per ISA level, %d "
      "Jacobi iterations, host dispatches at %s\n",
      iters, support::IsaLevelName(support::EffectiveIsaLevel()));
  PrintHeader("Sec. VI-B -- vectorization across the ISA ladder");

  const std::uint64_t kernel =
      reinterpret_cast<std::uint64_t>(&stencil_line_direct);

  JsonObject json;
  json.Put("bench", "fig_vectorize")
      .Put("smoke", smoke)
      .Put("iters", iters)
      .Put("band_iters", band_iters)
      .Put("band_rows", static_cast<int>(kBandRows))
      .Put("reps", reps)
      .Put("host_isa", support::IsaLevelName(support::EffectiveIsaLevel()));

  double reference = 0;
  double band_reference = 0;
  double native_time = 0;
  {
    Row row;
    row.kernel = "Direct-line";
    row.mode = "Native";
    row.seconds = TimeLineBest(kernel, iters, reps, &row.checksum);
    reference = row.checksum;
    native_time = row.seconds;
    row.vs_native = 1.0;
    PrintRow(row);
    const double native_band =
        TimeBandBest(kernel, band_iters, reps, &band_reference);
    json.Put("native_seconds", row.seconds)
        .Put("native_band_seconds", native_band);
  }

  bool all_ok = true;
  // Per-level timings; <= 0 marks "not run / failed". The band numbers are
  // the compute-bound ones the speedup gate judges.
  double level_seconds[support::kMaxIsaLevel + 1] = {};
  double level_band_seconds[support::kMaxIsaLevel + 1] = {};

  // One Jit for every variant: the multi-ISA compiler picks the right
  // TargetMachine per module, and keeping the Jit alive keeps all compiled
  // entry points valid for the paired gate measurement at the end.
  lift::Jit jit;
  std::uint64_t level_entries[support::kMaxIsaLevel + 1] = {};

  // One lift+compile+run per configuration. Returns the full-sweep seconds
  // (<= 0 on failure, recorded in the row and in all_ok), the hot-band
  // seconds through `band_out`, and the compiled entry through `entry_out`.
  auto run_lifted = [&](const char* mode, int isa_level, JsonObject* out,
                        double* band_out, std::uint64_t* entry_out,
                        int* resolved_out = nullptr) -> double {
    Row row;
    row.kernel = "Direct-line";
    row.mode = mode;
    lift::LiftConfig config;
    config.isa_level = isa_level;
    config.vectorize_hint = true;
    lift::Lifter lifter(config);
    auto lifted = lifter.Lift(kernel, KernelSignature());
    if (!lifted.has_value()) {
      row.ok = false;
      row.note = lifted.error().Format();
      PrintRow(row);
      all_ok = false;
      if (out != nullptr) out->Put("ok", false).Put("error", row.note);
      return 0;
    }
    auto compiled = lifted->Compile(jit);
    if (!compiled.has_value()) {
      row.ok = false;
      row.note = compiled.error().Format();
      PrintRow(row);
      all_ok = false;
      if (out != nullptr) out->Put("ok", false).Put("error", row.note);
      return 0;
    }
    row.seconds = TimeLineBest(*compiled, iters, reps, &row.checksum);
    row.vs_native = row.seconds / native_time;
    double band_checksum = 0;
    const double band_seconds =
        TimeBandBest(*compiled, band_iters, reps, &band_checksum);
    row.ok = ChecksumOk(row.checksum, reference) &&
             ChecksumOk(band_checksum, band_reference);
    all_ok = all_ok && row.ok;
    PrintRow(row);
    if (resolved_out != nullptr) *resolved_out = lifter.config().isa_level;
    if (out != nullptr) {
      out->Put("resolved_level", lifter.config().isa_level)
          .Put("seconds", row.seconds)
          .Put("vs_native", row.vs_native)
          .Put("band_seconds", band_seconds)
          .Put("ok", row.ok);
    }
    if (band_out != nullptr) *band_out = row.ok ? band_seconds : 0;
    if (entry_out != nullptr) *entry_out = row.ok ? *compiled : 0;
    return row.ok ? row.seconds : 0;
  };

  // One variant per ladder level the host can actually execute. Levels the
  // host lacks (or that DBLL_JIT_ISA masks away) are reported as skipped --
  // compiling them anyway would produce code this process cannot time.
  for (int level = 0; level <= support::kMaxIsaLevel; ++level) {
    const char* name = support::IsaLevelName(
        static_cast<support::IsaLevel>(level));
    JsonObject entry;
    if (level > host_level) {
      std::printf("%-14s LLVM-%-7s %10s %10s  skipped (host lacks it)\n",
                  "Direct-line", name, "-", "-");
      entry.Put("skipped", true);
      json.Put(std::string("isa_") + name, entry);
      continue;
    }
    const std::string mode = std::string("LLVM-") + name;
    level_seconds[level] =
        run_lifted(mode.c_str(), level, &entry, &level_band_seconds[level],
                   &level_entries[level]);
    json.Put(std::string("isa_") + name, entry);
  }

  // Auto dispatch: isa_level = -1 resolves inside the Lifter. The entry must
  // land on the host's effective level -- that is the install-time dispatch
  // decision every CompileService request takes.
  JsonObject auto_entry;
  int auto_resolved = -1;
  const double auto_seconds =
      run_lifted("LLVM-auto", -1, &auto_entry, nullptr, nullptr,
                 &auto_resolved);
  json.Put("auto", auto_entry);

  // Speedup of the host-best variant over the baseline-ISA variant of the
  // same lifted function -- measured on the compute-bound hot band, the
  // quantity multi-versioning exists to buy (the full streaming sweep is
  // memory-bound and reported for honesty). The two variants are re-timed
  // *interleaved* (min over alternating reps) so slow phases of a shared or
  // frequency-scaling host hit both equally instead of skewing whichever
  // block they landed on.
  double speedup = 0;
  if (host_level > 0 && level_entries[0] != 0 &&
      level_entries[host_level] != 0) {
    double best_base = 0, best_wide = 0, sum = 0;
    for (int r = 0; r < 2 * reps; ++r) {
      const double tb = TimeBandBest(level_entries[0], band_iters, 1, &sum);
      const double tw =
          TimeBandBest(level_entries[host_level], band_iters, 1, &sum);
      if (r == 0 || tb < best_base) best_base = tb;
      if (r == 0 || tw < best_wide) best_wide = tw;
    }
    if (best_wide > 0) speedup = best_base / best_wide;
  } else if (level_band_seconds[0] > 0 && level_band_seconds[host_level] > 0) {
    speedup = level_band_seconds[0] / level_band_seconds[host_level];
  }
  json.Put("best_level", host_level).Put("speedup_best_vs_baseline", speedup);
  if (host_level > 0) {
    std::printf("speedup %s vs baseline: %.2fx\n",
                support::IsaLevelName(support::EffectiveIsaLevel()), speedup);
  }

  bool gate_ok = all_ok;
  if (smoke && host_level >= 1) {
    // The acceptance gate: on an AVX2-capable (or better) host the wide
    // variant must clearly beat the baseline variant, and auto dispatch
    // must have picked it.
    if (speedup < 1.2) {
      std::printf("FAIL: best/baseline speedup %.2fx < 1.2x\n", speedup);
      gate_ok = false;
    }
    if (auto_seconds <= 0) {
      std::printf("FAIL: auto dispatch did not produce a runnable variant\n");
      gate_ok = false;
    }
    if (auto_resolved != host_level) {
      std::printf("FAIL: auto dispatch resolved to level %d, host best is %d\n",
                  auto_resolved, host_level);
      gate_ok = false;
    }
  }
  json.Put("gate_ok", gate_ok);

  const char* out_path = "BENCH_vectorize.json";
  if (WriteJsonFile(out_path, json)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("FAILED to write %s\n", out_path);
    return 1;
  }
  return gate_ok ? 0 : 2;
}
