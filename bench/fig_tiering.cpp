// dbll bench -- profile-guided tiered recompilation (tiering.h): what the
// Tier-0a fast baseline + counter-driven auto-promotion buy over the paper's
// pay-O3-up-front model.
//
// Sections, on the two paper workloads (Jacobi line stencil, CSR SpMV):
//   1. call-counter overhead: handle.target() fetch cost, tiered vs untiered
//      (the <5ns/call budget of TierProfile::NoteCall);
//   2. time-to-first-JIT-call: Request()+wait() on a tiered service (returns
//      at Tier-0a install) vs an untiered one (returns after full O3);
//      target: tiered >= 10x faster;
//   3. time-to-Nth-call curves from a cold start: generic-only vs async
//      always-O3 vs tiered auto-promotion, cumulative wall time at call
//      1/10/100/...; the tiered run must end auto-promoted to Tier-0 O3
//      without any explicit specialize (the check.sh promoted-handle gate);
//   4. steady state: promoted per-call cost (counter + guard included) vs
//      always-O3 per-call cost; target: within 10%;
//   5. effective breakeven: caller-blocked install cost / per-call gain over
//      generic, vs the ~41k-call breakeven of the pay-O3-up-front model
//      (BENCH_cache.json); target: >= 10x better (<= 4100 calls);
//   6. deoptimization: a guarded SpMV specialization called with the wrong
//      fixed value must produce the *generic* (correct) result, then demote
//      to Tier 2 with cache.deopt observable.
//
// Results go to BENCH_tiering.json; exit status 2 when a target is missed.
// `--smoke` (or DBLL_BENCH_REPS) shrinks the repetition counts.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dbll/runtime/compile_service.h"
#include "dbll/spmv/spmv.h"
#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;
using dbll::spmv::CsrBuilder;
using dbll::spmv::CsrMatrix;
using dbll::spmv::spmv_full;

namespace {

constexpr long kSpmvRows = 256;
using SpmvFn = void (*)(const CsrMatrix*, const double*, double*, long);

/// Element-wise comparison with the harness's relative tolerance: the
/// promoted Tier-0 kernel targets the host's best ISA level
/// (docs/codegen.md), where fast-math lets mul+add contract to FMA --
/// bit equality with the natively-built generic kernel is not the contract.
bool AlmostEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!ChecksumOk(a[i], b[i])) return false;
  }
  return true;
}

runtime::CompileService::Options Untiered() {
  runtime::CompileService::Options options;
  options.workers = 1;
  options.capacity = 64;
  return options;
}

runtime::CompileService::Options Tiered(std::uint64_t hot_threshold = 256) {
  runtime::CompileService::Options options = Untiered();
  options.tiering.enabled = true;
  options.tiering.hot_threshold = hot_threshold;
  return options;
}

/// Drives target() (so the profile counts calls and fires promotion) until
/// the handle serves `want`, nudging the worker queue along the way.
bool SpinToTier(runtime::CompileService& service,
                const runtime::FunctionHandle& handle, runtime::Tier want,
                int spins = 200000) {
  for (int i = 0; i < spins; ++i) {
    if (handle.tier() == want) return true;
    (void)handle.target();
    if ((i & 1023) == 0) service.WaitIdle();
  }
  service.WaitIdle();
  return handle.tier() == want;
}

/// One workload: how to build the request, make one unit call through an
/// entry, and verify an entry against the generic kernel.
struct Workload {
  std::string name;
  std::function<runtime::CompileRequest()> make_request;
  std::function<void(std::uint64_t entry)> call;
  std::function<bool(std::uint64_t entry)> verify;
};

double MedianFirstCallNs(const runtime::CompileService::Options& options,
                         const Workload& workload, int reps) {
  std::vector<double> ns;
  runtime::CompileService service(options);
  for (int i = 0; i < reps; ++i) {
    service.Clear();  // force the miss path; the JIT session stays warm
    // Drain the worker first: a tiered rep leaves its background LLVM refine
    // queued, and each cold start should be measured alone, not behind the
    // previous rep's backlog.
    service.WaitIdle();
    Timer timer;
    auto handle = service.Request(workload.make_request());
    (void)handle.wait();
    ns.push_back(timer.Seconds() * 1e9);
  }
  return Median(ns);
}

/// Median per-call cost of `entry` under the workload's unit call. 9 rounds:
/// on a small/busy box a single round is at the mercy of timer interrupts,
/// and these loops are microseconds -- rounds are cheaper than flakes.
double PerCallNs(const Workload& workload, std::uint64_t entry, int calls) {
  std::vector<double> ns;
  for (int round = 0; round < 9; ++round) {
    Timer timer;
    for (int i = 0; i < calls; ++i) workload.call(entry);
    ns.push_back(timer.Seconds() * 1e9 / calls);
  }
  return Median(ns);
}

/// Same, but fetched through the handle every call (counter + guard on a
/// tiered handle) -- the honest serving-path cost.
double PerCallViaHandleNs(const Workload& workload,
                          const runtime::FunctionHandle& handle, int calls) {
  std::vector<double> ns;
  for (int round = 0; round < 9; ++round) {
    Timer timer;
    for (int i = 0; i < calls; ++i) workload.call(handle.target());
    ns.push_back(timer.Seconds() * 1e9 / calls);
  }
  return Median(ns);
}

/// Steady-state comparison with *interleaved* rounds: each round times the
/// always-O3 handle and the promoted tiered handle back to back and yields
/// one tiered/O3 ratio; the reported ratio is the median of those. Machine-
/// load drift between two separate measurement windows hits both serving
/// paths of a round alike and cancels -- gating on two independently-timed
/// medians was flaky on a busy 1-core host.
struct SteadyState {
  double o3_ns = 0;
  double tiered_ns = 0;
  double ratio = 0;
};
SteadyState MeasureSteadyState(const Workload& workload,
                               const runtime::FunctionHandle& o3_handle,
                               const runtime::FunctionHandle& tier_handle,
                               int calls) {
  std::vector<double> o3, tiered, ratios;
  for (int round = 0; round < 9; ++round) {
    Timer o3_timer;
    for (int i = 0; i < calls; ++i) workload.call(o3_handle.target());
    o3.push_back(o3_timer.Seconds() * 1e9 / calls);
    Timer tier_timer;
    for (int i = 0; i < calls; ++i) workload.call(tier_handle.target());
    tiered.push_back(tier_timer.Seconds() * 1e9 / calls);
    ratios.push_back(o3.back() > 0 ? tiered.back() / o3.back() : 0.0);
  }
  return {Median(o3), Median(tiered), Median(ratios)};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) smoke = true;
  int reps = smoke ? 3 : 10;
  if (const char* env = std::getenv("DBLL_BENCH_REPS")) reps = std::atoi(env);
  if (reps < 2) reps = 2;
  const std::uint64_t curve_calls = smoke ? 20000 : 100000;
  // Not shrunk under --smoke: the per-call loops cost microseconds either
  // way, and 500-call rounds made the steady-state ratio flaky on 1 core.
  const int percall_reps = 2000;
  std::vector<std::uint64_t> checkpoints = {1, 10, 100, 1000, 10000};
  if (!smoke) checkpoints.push_back(100000);

  std::printf("dbll fig_tiering: profile-guided tiered recompilation "
              "(%d compile reps, %llu-call curves)\n\n",
              reps, static_cast<unsigned long long>(curve_calls));

  // --- workloads -------------------------------------------------------------
  JacobiGrid grid;
  const long n = grid.size();
  std::vector<double> jacobi_out(static_cast<std::size_t>(n * n), 0.0);
  Workload jacobi;
  jacobi.name = "jacobi_line_flat";
  jacobi.make_request = [] {
    runtime::CompileRequest request(
        reinterpret_cast<std::uint64_t>(&stencil_line_flat),
        KernelSignature());
    request.FixConstMem(0, &FourPointFlat(), sizeof(FlatStencil));
    return request;
  };
  jacobi.call = [&grid, &jacobi_out](std::uint64_t entry) {
    reinterpret_cast<LineKernel>(entry)(&FourPointFlat(), grid.front(),
                                        jacobi_out.data(), 1);
  };
  jacobi.verify = [&grid, n](std::uint64_t entry) {
    std::vector<double> ref(static_cast<std::size_t>(n * n), 0.0);
    std::vector<double> got(static_cast<std::size_t>(n * n), 0.0);
    stencil_line_flat(&FourPointFlat(), grid.front(), ref.data(), 1);
    reinterpret_cast<LineKernel>(entry)(&FourPointFlat(), grid.front(),
                                        got.data(), 1);
    return AlmostEqual(ref, got);
  };

  CsrBuilder builder = CsrBuilder::Banded(kSpmvRows, {-16, -1, 0, 1, 16});
  const CsrMatrix matrix = builder.Finish();
  std::vector<double> x(static_cast<std::size_t>(kSpmvRows));
  for (long i = 0; i < kSpmvRows; ++i) {
    x[static_cast<std::size_t>(i)] = 0.5 + 0.001 * static_cast<double>(i);
  }
  std::vector<double> spmv_out(static_cast<std::size_t>(kSpmvRows), 0.0);
  Workload spmv;
  spmv.name = "spmv_full";
  spmv.make_request = [] {
    runtime::CompileRequest request(
        reinterpret_cast<std::uint64_t>(&spmv_full), KernelSignature());
    request.FixParam(3, static_cast<std::uint64_t>(kSpmvRows));
    return request;
  };
  spmv.call = [&matrix, &x, &spmv_out](std::uint64_t entry) {
    reinterpret_cast<SpmvFn>(entry)(&matrix, x.data(), spmv_out.data(),
                                    kSpmvRows);
  };
  spmv.verify = [&matrix, &x](std::uint64_t entry) {
    std::vector<double> ref(static_cast<std::size_t>(kSpmvRows), 0.0);
    std::vector<double> got(static_cast<std::size_t>(kSpmvRows), 0.0);
    spmv_full(&matrix, x.data(), ref.data(), kSpmvRows);
    reinterpret_cast<SpmvFn>(entry)(&matrix, x.data(), got.data(), kSpmvRows);
    return AlmostEqual(ref, got);
  };

  JsonObject json;
  json.Put("bench", "fig_tiering").Put("smoke", smoke).Put("reps", reps);
  bool all_ok = true;

  // --- 1: call-counter overhead ---------------------------------------------
  // target() fetch cost with and without a tiering profile attached. The
  // tiered handle stays at Tier-0a (huge threshold), so every fetch pays the
  // real serving-path tax: one relaxed fetch_add + the masked sample branch.
  double counter_delta_ns = 0;
  bool counter_ok = true;
  {
    runtime::CompileService plain(Untiered());
    runtime::CompileService tiered(Tiered(/*hot_threshold=*/1ull << 40));
    auto plain_handle = plain.Request(spmv.make_request());
    auto tiered_handle = tiered.Request(spmv.make_request());
    (void)plain_handle.wait();
    (void)tiered_handle.wait();
    const int fetches = smoke ? 1 << 18 : 1 << 21;
    std::uint64_t sink = 0;
    Timer plain_timer;
    for (int i = 0; i < fetches; ++i) sink ^= plain_handle.target();
    const double plain_ns = plain_timer.Seconds() * 1e9 / fetches;
    Timer tiered_timer;
    for (int i = 0; i < fetches; ++i) sink ^= tiered_handle.target();
    const double tiered_ns = tiered_timer.Seconds() * 1e9 / fetches;
    if (sink == 1) std::printf("\n");  // keep the loops observable
    counter_delta_ns = tiered_ns - plain_ns;
    // Budget is <5ns/call; gate generously (CI noise) at 25ns.
    counter_ok = counter_delta_ns < 25.0;
    all_ok = all_ok && counter_ok;
    std::printf("counter overhead: target() %.2f ns untiered, %.2f ns tiered "
                "(+%.2f ns/call) %s\n\n",
                plain_ns, tiered_ns, counter_delta_ns,
                counter_ok ? "(ok)" : "(FAIL: > 25 ns)");
    JsonObject counter;
    counter.Put("untiered_ns_per_call", plain_ns)
        .Put("tiered_ns_per_call", tiered_ns)
        .Put("delta_ns_per_call", counter_delta_ns)
        .Put("budget_ns", 5.0)
        .Put("ok", counter_ok);
    json.Put("counter_overhead", counter);
  }

  // --- 2..4 per workload ----------------------------------------------------
  for (const Workload* wl : {&jacobi, &spmv}) {
    const Workload& workload = *wl;
    std::printf("[%s]\n", workload.name.c_str());
    JsonObject wl_json;

    // 2: time-to-first-JIT-call. An untiered wait() returns after the full
    // lift -> O3 -> JIT chain; a tiered wait() returns at Tier-0a install.
    const double o3_first_ns = MedianFirstCallNs(Untiered(), workload, reps);
    const double tier_first_ns = MedianFirstCallNs(Tiered(), workload, reps);
    const double first_speedup =
        tier_first_ns > 0 ? o3_first_ns / tier_first_ns : 0.0;
    const bool first_ok = first_speedup >= 10.0;
    std::printf("  time-to-first-JIT-call: O3 %10.0f ns, tier0a %10.0f ns "
                "(%.1fx) %s\n",
                o3_first_ns, tier_first_ns, first_speedup,
                first_ok ? "(ok, >= 10x)" : "(FAIL: < 10x)");
    JsonObject first;
    first.Put("o3_median_ns", o3_first_ns)
        .Put("tier0a_median_ns", tier_first_ns)
        .Put("speedup", first_speedup)
        .Put("ok", first_ok);
    wl_json.Put("first_call", first);

    // 3: time-to-Nth-call curves from a cold start. The request goes in at
    // t=0 and every call fetches through the handle, exactly like a serving
    // loop; generic-only never compiles at all.
    auto run_curve = [&](const char* mode,
                         runtime::CompileService* service) -> JsonObject {
      JsonObject curve;
      runtime::FunctionHandle handle;
      const std::uint64_t generic = workload.make_request().address;
      std::size_t next = 0;
      Timer timer;
      if (service != nullptr) handle = service->Request(workload.make_request());
      for (std::uint64_t i = 1; i <= curve_calls; ++i) {
        workload.call(service != nullptr ? handle.target() : generic);
        if (next < checkpoints.size() && i == checkpoints[next]) {
          curve.Put("n_" + std::to_string(checkpoints[next]),
                    timer.Seconds() * 1e9);
          ++next;
        }
      }
      std::printf("  curve %-8s %8.2f ms to call %llu\n", mode,
                  timer.Seconds() * 1e3,
                  static_cast<unsigned long long>(curve_calls));
      return curve;
    };

    wl_json.Put("curve_generic", run_curve("generic", nullptr));
    runtime::CompileService o3_service(Untiered());
    wl_json.Put("curve_o3", run_curve("o3", &o3_service));
    runtime::CompileService tier_service(Tiered());
    wl_json.Put("curve_tiered", run_curve("tiered", &tier_service));

    // The promoted-handle gate: the tiered handle must have auto-promoted to
    // Tier-0 O3 during the curve (no explicit specialize was ever issued).
    auto tier_handle = tier_service.Request(workload.make_request());
    const bool promoted =
        SpinToTier(tier_service, tier_handle, runtime::Tier::kLlvm);
    const runtime::CacheStats tier_stats = tier_service.stats();
    const bool counters_ok = tier_stats.interim_installs >= 1 &&
                             tier_stats.baseline_installs >= 1 &&
                             tier_stats.promotions >= 1 &&
                             tier_stats.tier0a_compiles >= 1 &&
                             tier_stats.stage_total.tier0a_ns > 0;
    const bool correct = workload.verify(tier_handle.target());
    std::printf("  auto-promotion: %s after %llu counted calls "
                "(installs %llu, promotions %llu) %s\n",
                promoted ? "reached Tier-0 O3" : "NOT promoted",
                static_cast<unsigned long long>(tier_handle.calls()),
                static_cast<unsigned long long>(tier_stats.baseline_installs),
                static_cast<unsigned long long>(tier_stats.promotions),
                promoted && counters_ok && correct ? "(ok)" : "(FAIL)");

    // 4: steady state, promoted (counter + guard on the serving path) vs
    // always-O3.
    auto o3_handle = o3_service.Request(workload.make_request());
    (void)o3_handle.wait();
    const SteadyState ss =
        MeasureSteadyState(workload, o3_handle, tier_handle, percall_reps);
    const bool steady_ok = ss.ratio > 0 && ss.ratio <= 1.10;
    std::printf("  steady state: O3 %.1f ns/call, promoted %.1f ns/call "
                "(ratio %.3f) %s\n",
                ss.o3_ns, ss.tiered_ns, ss.ratio,
                steady_ok ? "(ok, within 10%)" : "(FAIL: > 1.10)");
    JsonObject steady;
    steady.Put("o3_ns_per_call", ss.o3_ns)
        .Put("promoted_ns_per_call", ss.tiered_ns)
        .Put("ratio", ss.ratio)
        .Put("ok", steady_ok);
    wl_json.Put("steady", steady);
    wl_json.Put("promoted", promoted);
    wl_json.Put("tiering_counters_ok", counters_ok);
    wl_json.Put("correct", correct);

    const bool wl_ok =
        first_ok && promoted && counters_ok && correct && steady_ok;
    wl_json.Put("ok", wl_ok);
    all_ok = all_ok && wl_ok;
    json.Put(workload.name, wl_json);
    std::printf("\n");
  }

  // --- 5: effective breakeven -------------------------------------------------
  // How many calls until the caller is net ahead: the cost it actually pays
  // up front is the blocked Request()+wait() (the interim Tier-0a install,
  // microseconds), amortized by the per-call gain of the baseline over the
  // generic kernel. Same charging model as BENCH_cache.json's ~41k-call
  // figure, where the caller blocked on the full O3 compile. The fully
  // charged variant (interim rewrite + background LLVM baseline, which on a
  // single core does steal caller cycles) is reported alongside as
  // charged_breakeven_calls, ungated.
  {
    runtime::CompileService service(Tiered(/*hot_threshold=*/1ull << 40));
    Timer wait_timer;
    auto handle = service.Request(jacobi.make_request());
    (void)handle.wait();
    const double wait_ns = wait_timer.Seconds() * 1e9;
    const bool at_baseline = handle.tier() == runtime::Tier::kBaseline;
    service.WaitIdle();  // let the LLVM body rebind over the interim seed
    const std::uint64_t tier0a_ns = handle.times().tier0a_ns;
    const double generic_ns = PerCallNs(
        jacobi, reinterpret_cast<std::uint64_t>(&stencil_line_flat),
        percall_reps);
    const double baseline_ns =
        PerCallViaHandleNs(jacobi, handle, percall_reps);
    const double gain_ns = generic_ns - baseline_ns;
    const double effective = gain_ns > 0 ? wait_ns / gain_ns : -1.0;
    const double charged =
        gain_ns > 0 ? static_cast<double>(tier0a_ns) / gain_ns : -1.0;
    const bool breakeven_ok =
        at_baseline && wait_ns > 0 && effective > 0 && effective <= 4100.0;
    all_ok = all_ok && breakeven_ok;
    std::printf("breakeven: caller blocked %.0f us, generic %.1f ns/call, "
                "baseline %.1f ns/call -> effective ~%.0f calls "
                "(charged ~%.0f; O3-up-front ref ~41k) %s\n\n",
                wait_ns / 1e3, generic_ns, baseline_ns, effective, charged,
                breakeven_ok ? "(ok, >= 10x better)" : "(FAIL: > 4100)");
    JsonObject amortization;
    amortization.Put("caller_blocked_ns", wait_ns)
        .Put("tier0a_total_compile_ns", tier0a_ns)
        .Put("generic_ns_per_call", generic_ns)
        .Put("baseline_ns_per_call", baseline_ns)
        .Put("effective_breakeven_calls", effective)
        .Put("charged_breakeven_calls", charged)
        .Put("o3_upfront_reference_calls", 41000.0)
        .Put("target_max_calls", 4100.0)
        .Put("ok", breakeven_ok);
    json.Put("breakeven", amortization);
  }

  // --- 6: deoptimization ------------------------------------------------------
  // A guarded specialization (rows fixed to 256) called with rows=128 must
  // compute the rows=128 result (the guard routes the call to the generic
  // entry), then demote to Tier 2 with cache.deopt observable.
  {
    runtime::CompileService::Options options =
        Tiered(/*hot_threshold=*/1ull << 40);
    options.tiering.sample_period = 8;
    runtime::CompileService service(options);
    auto handle = service.Request(spmv.make_request());
    (void)handle.wait();
    const bool match_correct = spmv.verify(handle.target());

    const long wrong_rows = kSpmvRows / 2;
    std::vector<double> ref(static_cast<std::size_t>(kSpmvRows), 0.0);
    std::vector<double> got(static_cast<std::size_t>(kSpmvRows), 0.0);
    spmv_full(&matrix, x.data(), ref.data(), wrong_rows);
    handle.as<SpmvFn>()(&matrix, x.data(), got.data(), wrong_rows);
    const bool mismatch_correct = AlmostEqual(ref, got);

    // Let the next profile samples observe the guard hit and commit the
    // demotion to the generic entry.
    for (int i = 0; i < 256 && handle.deopts() == 0; ++i) {
      (void)handle.target();
    }
    const runtime::CacheStats stats = service.stats();
    const bool deopt_ok = match_correct && mismatch_correct &&
                          handle.deopts() == 1 && stats.deopts == 1 &&
                          handle.tier() == runtime::Tier::kGeneric &&
                          spmv.verify(handle.target());
    all_ok = all_ok && deopt_ok;
    std::printf("deopt: mismatched call %s, handle deopts %llu, cache.deopt "
                "%llu, now serving %s %s\n\n",
                mismatch_correct ? "correct (routed generic)" : "WRONG RESULT",
                static_cast<unsigned long long>(handle.deopts()),
                static_cast<unsigned long long>(stats.deopts),
                std::string(ToString(handle.tier())).c_str(),
                deopt_ok ? "(ok)" : "(FAIL)");
    JsonObject deopt;
    deopt.Put("match_correct", match_correct)
        .Put("mismatch_correct", mismatch_correct)
        .Put("handle_deopts", handle.deopts())
        .Put("cache_deopts", stats.deopts)
        .Put("ok", deopt_ok);
    json.Put("deopt", deopt);
  }

  json.Put("ok", all_ok);
  const char* out_path = "BENCH_tiering.json";
  if (WriteJsonFile(out_path, json)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("FAILED to write %s\n", out_path);
    return 1;
  }
  return all_ok ? 0 : 2;
}
