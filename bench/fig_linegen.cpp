// dbll bench -- E8 (beyond the paper): the explicit element-to-line kernel
// transformation the paper proposes as future work (Sec. VIII: "provide
// explicit APIs, such as a way to transform scalar kernels into vectorized
// kernels"). An element kernel is lifted and wrapped into a generated,
// vectorization-annotated IR loop; compared against the native line kernel
// and the identity-lifted line kernel.
#include <cstdint>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

int main(int argc, char** argv) {
  const int iters = JacobiIterations(argc, argv);
  std::printf(
      "dbll fig_linegen: generated line kernels from element kernels, %d "
      "Jacobi iterations\n",
      iters);
  PrintHeader("E8 -- element-to-line transformation (Sec. VIII future work)");

  lift::Jit jit;

  double reference = 0;
  double native_time = 0;
  {
    Row row;
    row.kernel = "Direct";
    row.mode = "Native-line";
    row.seconds = TimeLine(
        reinterpret_cast<std::uint64_t>(&stencil_line_direct), nullptr, iters,
        &row.checksum);
    reference = row.checksum;
    native_time = row.seconds;
    row.vs_native = 1.0;
    PrintRow(row);
  }

  auto report = [&](const char* kernel, const char* mode,
                    Expected<std::uint64_t> entry, const void* st) {
    Row row;
    row.kernel = kernel;
    row.mode = mode;
    if (!entry.has_value()) {
      row.ok = false;
      row.note = entry.error().Format();
      PrintRow(row);
      return;
    }
    row.seconds = TimeLine(*entry, st, iters, &row.checksum);
    row.vs_native = row.seconds / native_time;
    row.ok = ChecksumOk(row.checksum, reference);
    PrintRow(row);
  };

  // Generated line loop around the hard-coded element kernel.
  {
    lift::Lifter lifter;
    auto lifted = lifter.LiftElementAsLine(
        reinterpret_cast<std::uint64_t>(&stencil_apply_direct), kMatrixSize,
        1, kMatrixSize - 1);
    report("Direct", "Gen-line",
           lifted.has_value() ? lifted->Compile(jit)
                              : Expected<std::uint64_t>(lifted.error()),
           nullptr);
  }
  // Generated line loop around the generic flat element kernel.
  {
    lift::Lifter lifter;
    auto lifted = lifter.LiftElementAsLine(
        reinterpret_cast<std::uint64_t>(&stencil_apply_flat), kMatrixSize, 1,
        kMatrixSize - 1);
    report("Struct", "Gen-line",
           lifted.has_value() ? lifted->Compile(jit)
                              : Expected<std::uint64_t>(lifted.error()),
           &FourPointFlat());
  }
  // Generated + specialized: the full pipeline the paper aims at.
  {
    lift::Lifter lifter;
    auto lifted = lifter.LiftElementAsLine(
        reinterpret_cast<std::uint64_t>(&stencil_apply_flat), kMatrixSize, 1,
        kMatrixSize - 1);
    if (lifted.has_value()) {
      (void)lifted->SpecializeParamToConstMem(0, &FourPointFlat(),
                                              sizeof(FlatStencil));
      report("Struct", "Gen-line-fix", lifted->Compile(jit), nullptr);
    }
  }
  // Baseline for comparison: identity-lifted native line kernel.
  {
    lift::Lifter lifter;
    auto lifted = lifter.Lift(
        reinterpret_cast<std::uint64_t>(&stencil_line_flat),
        KernelSignature());
    report("Struct", "LLVM-line",
           lifted.has_value() ? lifted->Compile(jit)
                              : Expected<std::uint64_t>(lifted.error()),
           &FourPointFlat());
  }
  return 0;
}
