// dbll bench -- design-decision ablations (DESIGN.md D1-D3) and the pass
// study the paper announces as future work (Sec. VIII: "which specific
// optimization passes are most essential"): the flat element kernel is
// lifted with individual features disabled or with reduced pass pipelines,
// then timed on the Jacobi iteration.
#include <cstdint>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

int main(int argc, char** argv) {
  const int iters = JacobiIterations(argc, argv);
  std::printf(
      "dbll fig_ablation: lifter feature and pass-pipeline ablations on the "
      "flat element kernel (LLVM-fix mode), %d Jacobi iterations\n",
      iters);
  PrintHeader("Ablations -- D1 facets / D2 flag cache / D3 GEP / pass study");

  const std::uint64_t kernel =
      reinterpret_cast<std::uint64_t>(&stencil_apply_flat);
  const void* st = &FourPointFlat();

  double reference = 0;
  double baseline_time = 0;
  {
    Row row;
    row.kernel = "Struct-elem";
    row.mode = "Native";
    row.seconds = TimeElement(kernel, st, iters, &row.checksum);
    reference = row.checksum;
    baseline_time = row.seconds;
    row.vs_native = 1.0;
    PrintRow(row);
  }

  struct Variant {
    const char* name;
    lift::LiftConfig config;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "full-O3";
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no-facet-cache";  // D1
    v.config.facet_cache = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no-flag-cache";  // D2
    v.config.flag_cache = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no-gep";  // D3
    v.config.use_gep = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no-fast-math";
    v.config.fast_math = false;
    variants.push_back(v);
  }
  for (const char* preset : {"none", "basic", "o1", "o2", "novec"}) {
    Variant v;
    v.name = preset;
    v.config.pass_preset = preset;
    variants.push_back(v);
  }

  for (const Variant& variant : variants) {
    Row row;
    row.kernel = "Struct-elem";
    row.mode = variant.name;
    lift::Jit jit;
    lift::Lifter lifter(variant.config);
    auto lifted = lifter.Lift(kernel, KernelSignature());
    if (!lifted.has_value()) {
      row.ok = false;
      row.note = lifted.error().Format();
      PrintRow(row);
      continue;
    }
    auto fixed =
        lifted->SpecializeParamToConstMem(0, st, sizeof(FlatStencil));
    if (!fixed.ok()) {
      row.ok = false;
      row.note = fixed.error().Format();
      PrintRow(row);
      continue;
    }
    auto compiled = lifted->Compile(jit);
    if (!compiled.has_value()) {
      row.ok = false;
      row.note = compiled.error().Format();
      PrintRow(row);
      continue;
    }
    row.seconds = TimeElement(*compiled, nullptr, iters, &row.checksum);
    row.vs_native = row.seconds / baseline_time;
    // Fast-math variants may legally reassociate; accept tiny deviations.
    row.ok = std::abs(row.checksum - reference) <=
             1e-6 * std::max(1.0, std::abs(reference));
    PrintRow(row);
  }
  return 0;
}
