// dbll bench -- warm-start: time-to-first-specialized-call, cold vs warm
// (the persistent object cache's reason to exist).
//
// The paper's amortization argument (Sec. V) is re-paid on every process
// start while the specialization cache is purely in-memory. This bench
// measures what the on-disk object store (object_store.h) buys back, on the
// two paper workloads:
//   * the Jacobi stencil line kernel, specialized on the flat 4-point
//     stencil descriptor (Fig. 9b's shape), and
//   * the CSR SpMV kernel, specialized on the row count.
//
// Cold = a fresh CompileService with an *empty* persistent cache directory:
// the first specialized call pays decode + lift + O3 + JIT. Warm = another
// fresh service over the now-populated directory (a new service is a new
// JIT session -- the same isolation a new process would have; tools/
// warm_smoke.cpp covers the literal two-process case): the first specialized
// call pays one disk read + object re-install only.
//
// Results go to BENCH_warmstart.json. The acceptance target is warm >= 5x
// lower median time-to-first-specialized-call; exit status 2 when missed,
// and the warm runs must actually be served from disk with zero compiles.
// `--smoke` (or DBLL_BENCH_REPS) shrinks the repetition counts.
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

#include "dbll/runtime/compile_service.h"
#include "dbll/spmv/spmv.h"
#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;
using dbll::spmv::CsrBuilder;
using dbll::spmv::CsrMatrix;
using dbll::spmv::spmv_full;

namespace {

constexpr long kSpmvRows = 256;

/// Element-wise comparison with the harness's relative tolerance. The
/// specialized kernel is compiled for the host's best ISA level
/// (docs/codegen.md) where fast-math lets mul+add contract to FMA (single
/// rounding), so bit equality with the natively-built generic kernel is not
/// the contract -- matching values within tolerance is.
bool AlmostEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!ChecksumOk(a[i], b[i])) return false;
  }
  return true;
}

runtime::CompileService::Options ServiceOptions(const std::string& dir) {
  runtime::CompileService::Options options;
  options.workers = 1;
  options.capacity = 64;
  options.persist_dir = dir;
  return options;
}

/// One cold/warm measurement pair for a workload. `verify` is handed the
/// specialized entry and must confirm it computes the same thing as the
/// generic kernel -- a warm start that loads a wrong object would otherwise
/// look like a very fast success.
struct Workload {
  std::string name;
  std::function<runtime::CompileRequest()> make_request;
  std::function<bool(std::uint64_t entry)> verify;
};

struct WorkloadResult {
  std::vector<double> cold_ns;
  std::vector<double> warm_ns;
  bool warm_from_disk = true;  ///< every warm run: disk hit, zero compiles
  bool correct = true;         ///< every specialized entry verified
};

double TimeToFirstSpecializedCallNs(runtime::CompileService& service,
                                    const runtime::CompileRequest& request,
                                    std::uint64_t* entry) {
  Timer timer;
  auto handle = service.Request(request);
  *entry = handle.wait();
  return timer.Seconds() * 1e9;
}

WorkloadResult RunWorkload(const Workload& workload, const std::string& dir,
                           int reps) {
  WorkloadResult result;
  for (int i = 0; i < reps; ++i) {
    auto purged = runtime::ObjectStore::Purge(dir);
    if (!purged.has_value()) {
      std::fprintf(stderr, "purge failed: %s\n",
                   purged.error().Format().c_str());
      result.warm_from_disk = false;
      return result;
    }

    std::uint64_t entry = 0;
    {
      runtime::CompileService cold(ServiceOptions(dir));
      const runtime::CompileRequest request = workload.make_request();
      result.cold_ns.push_back(
          TimeToFirstSpecializedCallNs(cold, request, &entry));
      result.correct = result.correct && workload.verify(entry);
      // The disk write-back happens on the worker after the handle finishes;
      // settle it before the warm service opens the same directory.
      cold.WaitIdle();
      const runtime::CacheStats stats = cold.stats();
      if (stats.compiles != 1 || stats.disk_stores != 1) {
        result.warm_from_disk = false;
      }
    }
    {
      runtime::CompileService warm(ServiceOptions(dir));
      const runtime::CompileRequest request = workload.make_request();
      result.warm_ns.push_back(
          TimeToFirstSpecializedCallNs(warm, request, &entry));
      result.correct = result.correct && workload.verify(entry);
      const runtime::CacheStats stats = warm.stats();
      if (stats.disk_hits != 1 || stats.compiles != 0 ||
          stats.stage_total.total_ns() != 0) {
        result.warm_from_disk = false;
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 10;
  if (const char* env = std::getenv("DBLL_BENCH_REPS")) reps = std::atoi(env);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) reps = 3;
  if (reps < 2) reps = 2;

  char dir_template[] = "/tmp/dbll_warmstart_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dir = dir_template;

  std::printf("dbll fig_warmstart: cold vs warm time-to-first-specialized-"
              "call (%d reps, cache dir %s)\n\n", reps, dir.c_str());

  // Jacobi workload: specialize the flat line kernel on the stencil
  // descriptor contents; verify against the generic kernel on one row.
  JacobiGrid grid;
  const long n = grid.size();
  Workload jacobi;
  jacobi.name = "jacobi_line_flat";
  jacobi.make_request = [] {
    runtime::CompileRequest request(
        reinterpret_cast<std::uint64_t>(&stencil_line_flat),
        KernelSignature());
    request.FixConstMem(0, &FourPointFlat(), sizeof(FlatStencil));
    return request;
  };
  jacobi.verify = [&grid, n](std::uint64_t entry) {
    std::vector<double> ref(static_cast<std::size_t>(n * n), 0.0);
    std::vector<double> got(static_cast<std::size_t>(n * n), 0.0);
    stencil_line_flat(&FourPointFlat(), grid.front(), ref.data(), 1);
    reinterpret_cast<LineKernel>(entry)(&FourPointFlat(), grid.front(),
                                        got.data(), 1);
    return AlmostEqual(ref, got);
  };

  // SpMV workload: specialize the full product on the row count; verify the
  // product against the generic kernel.
  CsrBuilder builder = CsrBuilder::Banded(kSpmvRows, {-16, -1, 0, 1, 16});
  const CsrMatrix matrix = builder.Finish();
  std::vector<double> x(static_cast<std::size_t>(kSpmvRows));
  for (long i = 0; i < kSpmvRows; ++i) {
    x[static_cast<std::size_t>(i)] = 0.5 + 0.001 * static_cast<double>(i);
  }
  Workload spmv;
  spmv.name = "spmv_full";
  spmv.make_request = [] {
    runtime::CompileRequest request(
        reinterpret_cast<std::uint64_t>(&spmv_full), KernelSignature());
    request.FixParam(3, static_cast<std::uint64_t>(kSpmvRows));
    return request;
  };
  spmv.verify = [&matrix, &x](std::uint64_t entry) {
    std::vector<double> ref(static_cast<std::size_t>(kSpmvRows), 0.0);
    std::vector<double> got(static_cast<std::size_t>(kSpmvRows), 0.0);
    spmv_full(&matrix, x.data(), ref.data(), kSpmvRows);
    using SpmvFn = void (*)(const CsrMatrix*, const double*, double*, long);
    reinterpret_cast<SpmvFn>(entry)(&matrix, x.data(), got.data(), 0);
    return AlmostEqual(ref, got);
  };

  JsonObject json;
  json.Put("bench", "fig_warmstart")
      .Put("reps", reps)
      .Put("speedup_target", 5.0);
  bool all_ok = true;
  for (const Workload* workload : {&jacobi, &spmv}) {
    const WorkloadResult result = RunWorkload(*workload, dir, reps);
    const double cold_median = Median(result.cold_ns);
    const double warm_median = Median(result.warm_ns);
    const double speedup = warm_median > 0 ? cold_median / warm_median : 0.0;
    const bool ok = speedup >= 5.0 && result.warm_from_disk && result.correct;
    all_ok = all_ok && ok;
    std::printf("%-18s cold median %10.0f ns   warm median %10.0f ns   "
                "%5.1fx %s%s%s\n",
                workload->name.c_str(), cold_median, warm_median, speedup,
                ok ? "(ok)" : "(FAIL",
                !result.warm_from_disk ? ", warm run not served from disk"
                                       : "",
                !ok ? ")" : "");
    JsonObject entry;
    entry.Put("cold_median_ns", cold_median)
        .Put("cold_p95_ns", Percentile(result.cold_ns, 95))
        .Put("warm_median_ns", warm_median)
        .Put("warm_p95_ns", Percentile(result.warm_ns, 95))
        .Put("speedup", speedup)
        .Put("warm_from_disk", result.warm_from_disk)
        .Put("correct", result.correct)
        .Put("ok", ok);
    json.Put(workload->name, entry);
  }
  json.Put("ok", all_ok);

  (void)runtime::ObjectStore::Purge(dir);
  ::rmdir(dir.c_str());

  const char* out_path = "BENCH_warmstart.json";
  if (WriteJsonFile(out_path, json)) {
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nFAILED to write %s\n", out_path);
    return 1;
  }
  return all_ok ? 0 : 2;
}
