// dbll bench -- Figure 9b: running times of the *line kernel*.
//
// Mode inputs follow the paper (Sec. VI): Native/LLVM/LLVM-fix use the
// compiler-inlined line kernels; DBrew uses the variant whose element
// computation is a separate function that the rewriter inlines (preventing
// unrolling of the unknown-bound column loop); DBrew+LLVM lifts the DBrew
// output.
//
// Expected shape (paper values): Direct 21.4 / 21.4 / - / 38.98 (DBrew, no
// vectorization + move overhead) / 29.25; Struct: 86.5 native generic,
// LLVM-fix improves markedly but stays above Direct (missing vectorization);
// DBrew+LLVM close to LLVM-fix; SortedStruct similar with DBrew+LLVM ==
// LLVM-fix.
#include <cstdint>
#include <vector>

#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;

namespace {

struct Kernel {
  const char* name;
  std::uint64_t inline_fn;    // compiler-inlined loop (Native/LLVM input)
  std::uint64_t outlined_fn;  // outlined element (DBrew input)
  const void* st;
  std::size_t st_size;
  const void* st2 = nullptr;  // nested region, DBrew only
  std::size_t st2_size = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int iters = JacobiIterations(argc, argv);
  std::printf(
      "dbll fig9b: line-kernel running times, %d Jacobi iterations on a "
      "%ldx%ld grid (paper: 50000 iterations)\n",
      iters, kMatrixSize, kMatrixSize);
  PrintHeader("Figure 9b -- line kernel");

  const Kernel kernels[] = {
      {"Direct", reinterpret_cast<std::uint64_t>(&stencil_line_direct),
       reinterpret_cast<std::uint64_t>(&stencil_line_direct_outlined),
       nullptr, 0},
      {"Struct", reinterpret_cast<std::uint64_t>(&stencil_line_flat),
       reinterpret_cast<std::uint64_t>(&stencil_line_flat_outlined),
       &FourPointFlat(), sizeof(FlatStencil)},
      {"SortedStruct",
       reinterpret_cast<std::uint64_t>(&stencil_line_sorted_ptr),
       reinterpret_cast<std::uint64_t>(&stencil_line_sorted_ptr_outlined),
       &FourPointSortedPtr(), sizeof(PtrSortedStencil),
       FourPointSortedPtr().groups, sizeof(SortedGroup)},
  };

  lift::Jit jit;
  std::vector<dbrew::Rewriter> rewriters;
  rewriters.reserve(16);

  double reference_checksum = 0;
  {
    JacobiGrid grid;
    grid.RunLine(reinterpret_cast<LineKernel>(&stencil_line_direct), nullptr,
                 iters);
    reference_checksum = grid.Checksum();
  }

  for (const Kernel& k : kernels) {
    double native_time = 0;
    auto report = [&](const char* mode, Expected<std::uint64_t> entry,
                      const void* stencil_arg) {
      Row row;
      row.kernel = k.name;
      row.mode = mode;
      if (!entry.has_value()) {
        row.ok = false;
        row.note = entry.error().Format();
        PrintRow(row);
        return;
      }
      row.seconds = TimeLine(*entry, stencil_arg, iters, &row.checksum);
      row.ok = ChecksumOk(row.checksum, reference_checksum);
      if (native_time == 0) native_time = row.seconds;
      row.vs_native = row.seconds / native_time;
      PrintRow(row);
    };

    report("Native", k.inline_fn, k.st);

    {
      lift::Lifter lifter;
      auto lifted = lifter.Lift(k.inline_fn, KernelSignature());
      report("LLVM", lifted.has_value()
                         ? lifted->Compile(jit)
                         : Expected<std::uint64_t>(lifted.error()),
             k.st);
    }
    if (k.st != nullptr) {
      lift::Lifter lifter;
      auto lifted = lifter.Lift(k.inline_fn, KernelSignature());
      if (lifted.has_value()) {
        auto fixed = lifted->SpecializeParamToConstMem(0, k.st, k.st_size);
        report("LLVM-fix", fixed.ok()
                               ? lifted->Compile(jit)
                               : Expected<std::uint64_t>(fixed.error()),
               nullptr);
      } else {
        report("LLVM-fix", Expected<std::uint64_t>(lifted.error()), nullptr);
      }
    }

    // DBrew on the outlined variant (inlines the element function).
    rewriters.emplace_back(k.outlined_fn);
    dbrew::Rewriter& rewriter = rewriters.back();
    if (k.st != nullptr) {
      rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(k.st));
      rewriter.SetMemRange(k.st, static_cast<const char*>(k.st) + k.st_size);
    }
    if (k.st2 != nullptr) {
      rewriter.SetMemRange(k.st2,
                           static_cast<const char*>(k.st2) + k.st2_size);
    }
    auto dbrew_entry = rewriter.Rewrite();
    report("DBrew", dbrew_entry, k.st);

    if (dbrew_entry.has_value()) {
      lift::Lifter lifter;
      auto lifted = lifter.Lift(*dbrew_entry, KernelSignature());
      report("DBrew+LLVM", lifted.has_value()
                               ? lifted->Compile(jit)
                               : Expected<std::uint64_t>(lifted.error()),
             k.st);
    }
  }
  return 0;
}
