// dbll bench -- google-benchmark micro-benchmarks of the rewriting
// infrastructure itself: decode, encode, CFG discovery, DBrew rewriting,
// lifting, and JIT compilation throughput.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/stencil/stencil.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/decoder.h"
#include "dbll/x86/encoder.h"

namespace {

using namespace dbll;
using namespace dbll::stencil;

lift::Signature KernelSig() {
  return lift::Signature{{lift::ArgKind::kInt, lift::ArgKind::kInt,
                          lift::ArgKind::kInt, lift::ArgKind::kInt},
                         lift::RetKind::kVoid};
}

void BM_DecodeOne(benchmark::State& state) {
  // movsd xmm0, [rsi + 8*rax - 8]
  const std::uint8_t bytes[] = {0xf2, 0x0f, 0x10, 0x44, 0xc6, 0xf8};
  for (auto _ : state) {
    auto instr = x86::Decoder::DecodeOne(bytes, 0x1000);
    benchmark::DoNotOptimize(instr);
  }
}
BENCHMARK(BM_DecodeOne);

void BM_EncodeOne(benchmark::State& state) {
  const std::uint8_t bytes[] = {0xf2, 0x0f, 0x10, 0x44, 0xc6, 0xf8};
  auto instr = x86::Decoder::DecodeOne(bytes, 0x1000);
  std::uint8_t buffer[16];
  for (auto _ : state) {
    auto length = x86::Encoder::Encode(*instr, buffer, 0x1000);
    benchmark::DoNotOptimize(length);
  }
}
BENCHMARK(BM_EncodeOne);

void BM_BuildCfgElementKernel(benchmark::State& state) {
  const std::uint64_t entry =
      reinterpret_cast<std::uint64_t>(&stencil_apply_flat);
  for (auto _ : state) {
    auto cfg = x86::BuildCfg(entry);
    benchmark::DoNotOptimize(cfg);
  }
}
BENCHMARK(BM_BuildCfgElementKernel);

void BM_DbrewRewriteElementKernel(benchmark::State& state) {
  for (auto _ : state) {
    dbrew::Rewriter rewriter(
        reinterpret_cast<std::uint64_t>(&stencil_apply_flat));
    rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&FourPointFlat()));
    rewriter.SetMemRange(&FourPointFlat(), &FourPointFlat() + 1);
    auto entry = rewriter.Rewrite();
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_DbrewRewriteElementKernel);

void BM_LiftElementKernelIrOnly(benchmark::State& state) {
  const std::uint64_t entry =
      reinterpret_cast<std::uint64_t>(&stencil_apply_flat);
  for (auto _ : state) {
    lift::Lifter lifter;
    auto lifted = lifter.Lift(entry, KernelSig());
    benchmark::DoNotOptimize(lifted);
  }
}
BENCHMARK(BM_LiftElementKernelIrOnly);

void BM_LiftOptimizeJit(benchmark::State& state) {
  const std::uint64_t entry =
      reinterpret_cast<std::uint64_t>(&stencil_apply_flat);
  for (auto _ : state) {
    lift::Jit jit;
    lift::Lifter lifter;
    auto lifted = lifter.Lift(entry, KernelSig());
    if (lifted.has_value()) {
      auto compiled = lifted->Compile(jit);
      benchmark::DoNotOptimize(compiled);
    }
  }
}
BENCHMARK(BM_LiftOptimizeJit);

void BM_JacobiSweepNativeDirect(benchmark::State& state) {
  JacobiGrid grid;
  for (auto _ : state) {
    grid.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct),
                    nullptr, 1);
    benchmark::DoNotOptimize(grid.front());
  }
}
BENCHMARK(BM_JacobiSweepNativeDirect);

}  // namespace

BENCHMARK_MAIN();
