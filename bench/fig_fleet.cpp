// dbll bench -- fleet cache: shm hot-entry ring vs disk object store.
//
// The persistent object cache (fig_warmstart) removes recompiles per
// *machine*; the shared-memory hot-entry ring (shm_ring.h) removes the
// remaining per-process disk I/O when N processes serve from one cache
// directory. This bench quantifies both claims:
//
//   * probe cost: the same populated cache directory is probed through two
//     ObjectStores -- one fronted by the (already warm) shm ring, one
//     disk-only. The gate is the issue's acceptance criterion: the median
//     shm hit must be cheaper than the median disk hit.
//   * fleet restart: the directory is exported to a DBLLBND1 bundle, purged,
//     re-imported, and then four fresh CompileServices (a new service is a
//     new JIT session -- the per-process isolation tools/warm_smoke.cpp
//     measures literally) start over it. Every service must reach its first
//     specialized call with zero Tier-0 compiles; the first one faults the
//     entries from disk into the ring, the rest are served from shared
//     memory. Recorded per service (informational, not gated on time).
//
// Results go to BENCH_fleet.json; exit status 2 when the shm<disk gate or
// the zero-compile fleet gate is missed. `--smoke` (or DBLL_BENCH_REPS)
// shrinks the repetition counts.
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/object_store.h"
#include "dbll/spmv/spmv.h"
#include "harness.h"

using namespace dbll;
using namespace dbll::bench;
using namespace dbll::stencil;
using dbll::spmv::CsrBuilder;
using dbll::spmv::CsrMatrix;
using dbll::spmv::spmv_full;

namespace {

constexpr long kSpmvRows = 256;

runtime::CompileService::Options ServiceOptions(const std::string& dir) {
  runtime::CompileService::Options options;
  options.workers = 1;
  options.capacity = 64;
  options.persist_dir = dir;
  return options;
}

runtime::CompileRequest JacobiRequest() {
  runtime::CompileRequest request(
      reinterpret_cast<std::uint64_t>(&stencil_line_flat), KernelSignature());
  request.FixConstMem(0, &FourPointFlat(), sizeof(FlatStencil));
  return request;
}

runtime::CompileRequest SpmvRequest() {
  runtime::CompileRequest request(
      reinterpret_cast<std::uint64_t>(&spmv_full), KernelSignature());
  request.FixParam(3, static_cast<std::uint64_t>(kSpmvRows));
  return request;
}

/// Probes every fingerprint through one store `reps` times, one timing
/// sample per Load. Returns false when any probe misses (the comparison
/// would be between a hit and a failure).
bool ProbeStore(runtime::ObjectStore& store,
                const std::vector<std::uint64_t>& fingerprints, int reps,
                std::vector<double>* samples_ns) {
  for (int i = 0; i < reps; ++i) {
    for (const std::uint64_t fingerprint : fingerprints) {
      runtime::ObjectEntry entry;
      Timer timer;
      const bool hit = store.Load(fingerprint, &entry);
      samples_ns->push_back(timer.Seconds() * 1e9);
      if (!hit) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 50;
  if (const char* env = std::getenv("DBLL_BENCH_REPS")) reps = std::atoi(env);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) reps = 10;
  if (reps < 2) reps = 2;
  constexpr int kFleet = 4;

  char dir_template[] = "/tmp/dbll_fleet_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dir = dir_template;
  const std::string bundle = dir + "/fleet.dbbundle";

  std::printf("dbll fig_fleet: shm hot-entry ring vs disk store "
              "(%d probe reps, %d-service fleet, cache dir %s)\n\n",
              reps, kFleet, dir.c_str());

  // Populate: one cold service compiles both paper workloads and persists
  // them (disk entries + shm ring slots).
  {
    runtime::CompileService service(ServiceOptions(dir));
    if (!service.CompileSync(JacobiRequest()).has_value() ||
        !service.CompileSync(SpmvRequest()).has_value()) {
      std::fprintf(stderr, "populate compile failed\n");
      return 1;
    }
    service.WaitIdle();
    const runtime::CacheStats stats = service.stats();
    if (stats.disk_stores != 2) {
      std::fprintf(stderr, "populate persisted %llu objects, expected 2\n",
                   static_cast<unsigned long long>(stats.disk_stores));
      return 1;
    }
  }

  auto scan = runtime::ObjectStore::Scan(dir);
  if (!scan.has_value() || scan->size() != 2) {
    std::fprintf(stderr, "scan failed or wrong entry count\n");
    return 1;
  }
  std::vector<std::uint64_t> fingerprints;
  for (const auto& e : *scan) fingerprints.push_back(e.fingerprint);

  // Probe the same entries through the ring and through the files. Both
  // stores validate the full DBLLOBJ1 entry on every hit, so the delta is
  // purely "shared memory vs open+read+manifest-touch".
  std::vector<double> shm_ns, disk_ns;
  bool probes_hit = true;
  {
    runtime::ObjectStore::Options shm_options;
    shm_options.dir = dir;
    shm_options.shm = true;
    runtime::ObjectStore shm_store(shm_options);
    probes_hit = ProbeStore(shm_store, fingerprints, reps, &shm_ns);
    const runtime::ObjectStoreStats stats = shm_store.stats();
    // Every probe must be a *shm* hit, or the comparison is meaningless.
    if (stats.shm_hits != shm_ns.size()) probes_hit = false;
  }
  if (probes_hit) {
    runtime::ObjectStore::Options disk_options;
    disk_options.dir = dir;
    disk_options.shm = false;
    runtime::ObjectStore disk_store(disk_options);
    probes_hit = ProbeStore(disk_store, fingerprints, reps, &disk_ns);
  }
  if (!probes_hit) {
    std::fprintf(stderr, "probe phase had misses; no comparison possible\n");
    return 1;
  }
  const double shm_median = Median(shm_ns);
  const double disk_median = Median(disk_ns);
  const double probe_speedup = shm_median > 0 ? disk_median / shm_median : 0.0;
  const bool probe_ok = shm_median < disk_median;
  std::printf("probe   shm median %8.0f ns   disk median %8.0f ns   "
              "%4.1fx %s\n",
              shm_median, disk_median, probe_speedup,
              probe_ok ? "(ok)" : "(FAIL: shm hit not cheaper)");

  // Fleet restart from a bundle: export -> purge (disk entries, manifest,
  // ring -- everything) -> import -> four fresh services. Zero Tier-0
  // compiles anywhere is the gate; per-service time-to-first-specialized-
  // call shows the first service paying disk faults and the rest riding the
  // ring it repopulated.
  bool fleet_ok = true;
  std::vector<double> fleet_ttfsc_ns;
  std::vector<double> fleet_shm_hits;
  {
    auto exported = runtime::ObjectStore::ExportBundle(dir, bundle);
    if (!exported.has_value() || *exported != 2) {
      std::fprintf(stderr, "export failed\n");
      return 1;
    }
    auto purged = runtime::ObjectStore::Purge(dir);
    if (!purged.has_value()) {
      std::fprintf(stderr, "purge failed\n");
      return 1;
    }
    auto imported = runtime::ObjectStore::ImportBundle(bundle, dir);
    if (!imported.has_value() || *imported != 2) {
      std::fprintf(stderr, "import failed\n");
      return 1;
    }
    for (int s = 0; s < kFleet; ++s) {
      runtime::CompileService service(ServiceOptions(dir));
      Timer timer;
      auto jacobi = service.Request(JacobiRequest());
      auto spmv = service.Request(SpmvRequest());
      jacobi.wait();
      spmv.wait();
      fleet_ttfsc_ns.push_back(timer.Seconds() * 1e9);
      service.WaitIdle();
      const runtime::CacheStats stats = service.stats();
      fleet_shm_hits.push_back(static_cast<double>(stats.shm_hits));
      if (stats.compiles != 0 || stats.disk_hits != 2 ||
          stats.stage_total.total_ns() != 0) {
        fleet_ok = false;
      }
    }
    // The restarted fleet's later services must actually ride the ring the
    // first one repopulated -- otherwise this measures disk four times.
    if (fleet_shm_hits.back() == 0) fleet_ok = false;
  }
  std::printf("fleet   %d services from bundle: ttfsc", kFleet);
  for (const double t : fleet_ttfsc_ns) std::printf(" %8.0f ns", t);
  std::printf("   %s\n", fleet_ok ? "(ok, zero compiles)"
                                  : "(FAIL: compiled or missed)");

  JsonObject json;
  json.Put("bench", "fig_fleet")
      .Put("reps", reps)
      .Put("fleet_size", kFleet)
      .Put("shm_probe_median_ns", shm_median)
      .Put("shm_probe_p95_ns", Percentile(shm_ns, 95))
      .Put("disk_probe_median_ns", disk_median)
      .Put("disk_probe_p95_ns", Percentile(disk_ns, 95))
      .Put("probe_speedup", probe_speedup)
      .Put("probe_ok", probe_ok);
  JsonObject fleet;
  for (std::size_t s = 0; s < fleet_ttfsc_ns.size(); ++s) {
    JsonObject per;
    per.Put("ttfsc_ns", fleet_ttfsc_ns[s]).Put("shm_hits", fleet_shm_hits[s]);
    fleet.Put("service_" + std::to_string(s), per);
  }
  json.Put("fleet", fleet).Put("fleet_ok", fleet_ok);
  const bool all_ok = probe_ok && fleet_ok;
  json.Put("ok", all_ok);

  (void)runtime::ObjectStore::Purge(dir);
  ::unlink(bundle.c_str());
  ::rmdir(dir.c_str());

  const char* out_path = "BENCH_fleet.json";
  if (WriteJsonFile(out_path, json)) {
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nFAILED to write %s\n", out_path);
    return 1;
  }
  return all_ok ? 0 : 2;
}
