#!/bin/sh
# dbll -- full verification: configure, build, tier-1 tests, bench smoke.
#
# The tier-1 gate is the ctest suite; the cache smoke bench additionally
# exercises the runtime specialization cache end-to-end and leaves its
# machine-readable results in BENCH_cache.json (see docs/runtime_cache.md).
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure
"$BUILD/bench/fig_cache" --smoke
echo "dbll: BENCH_cache.json written by fig_cache"
# Traced smoke: the same cache workload with span tracing on must export a
# structurally valid chrome://tracing JSON containing every pipeline stage
# (see docs/observability.md and scripts/validate_trace.py).
DBLL_TRACE="$BUILD/trace_smoke.json" DBLL_BENCH_REPS=2 \
  "$BUILD/bench/fig_cache" --smoke > /dev/null
python3 scripts/validate_trace.py "$BUILD/trace_smoke.json"
DBLL_BENCH_ITERS=10 DBLL_BENCH_REPS=3 sh scripts/run_experiments.sh "$BUILD" 10 > /dev/null
echo "dbll: build, tier-1 tests, and benchmark smoke all passed"
