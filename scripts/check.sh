#!/bin/sh
# dbll -- full verification: configure, build, test, bench smoke.
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
DBLL_BENCH_ITERS=10 DBLL_BENCH_REPS=3 sh scripts/run_experiments.sh "$BUILD" 10 > /dev/null
echo "dbll: build, tests, and benchmark smoke all passed"
