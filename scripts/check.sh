#!/bin/sh
# dbll -- full verification: configure, build, tier-1 tests, bench smoke,
# fault-injection smoke, and a sanitized robustness pass.
#
# The tier-1 gate is the ctest suite; the cache smoke bench additionally
# exercises the runtime specialization cache end-to-end and leaves its
# machine-readable results in BENCH_cache.json (see docs/runtime_cache.md).
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure
# Static-analysis gate (docs/static_analysis.md): every corpus function must
# stay Tier-0 lift-eligible -- dbll-lint exits nonzero on any fatal verdict.
"$BUILD/tools/dbll-lint" --all-corpus
echo "dbll: lift-eligibility lint passed"
# Value-range frontier gate (docs/static_analysis.md): --ranges audits the
# corpus with and without the range pass and exits nonzero if the eligible
# frontier shrinks; the grep pins the jump-table win -- switch_dispatch must
# flip from rejected to eligible.
"$BUILD/tools/dbll-lint" --ranges | tee "$BUILD/ranges_frontier.txt"
grep -Eq 'switch_dispatch +1 +no -> yes' "$BUILD/ranges_frontier.txt"
echo "dbll: value-range frontier gate passed"
# clang-tidy (bugprone/performance/concurrency, config in .clang-tidy) over
# the analysis subsystem; skipped where the tool is not installed.
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  clang-tidy -p "$BUILD" --quiet \
    src/analysis/*.cpp src/dbrew/prune.cpp tools/dbll_lint.cpp
  echo "dbll: clang-tidy passed"
else
  echo "dbll: clang-tidy not installed, skipping"
fi
"$BUILD/bench/fig_cache" --smoke
echo "dbll: BENCH_cache.json written by fig_cache"
# Traced smoke: the same cache workload with span tracing on must export a
# structurally valid chrome://tracing JSON containing every pipeline stage
# (see docs/observability.md and scripts/validate_trace.py).
DBLL_TRACE="$BUILD/trace_smoke.json" DBLL_BENCH_REPS=2 \
  "$BUILD/bench/fig_cache" --smoke > /dev/null
python3 scripts/validate_trace.py "$BUILD/trace_smoke.json"
DBLL_BENCH_ITERS=10 DBLL_BENCH_REPS=3 sh scripts/run_experiments.sh "$BUILD" 10 > /dev/null
# Degradation smoke (docs/robustness.md): with the JIT stage failing by
# injection, a specialization request must still come back as a working
# callable served by the DBrew tier -- and cleanly Tier-0 without the fault.
"$BUILD/tools/fault_smoke"
DBLL_FAULT=jit.compile:kJit:0 "$BUILD/tools/fault_smoke"
# Third mode (docs/robustness.md, containment): a synthetic fault on the
# first probation call must be caught, the caller served correctly, and the
# slot demoted -- all inside one process that exits 0.
DBLL_CONTAIN=1 DBLL_FAULT=exec.probation:kInternal:0 "$BUILD/tools/fault_smoke"
echo "dbll: fault-injection smoke passed"
# Warm-start smoke (docs/runtime_cache.md): two runs of the same binary over
# one persistent cache directory. The first compiles and persists; the second
# must be served from disk with zero Tier-0 compiles and zero lift work
# (asserted inside warm_smoke via the metrics registry), and the bench
# records the cold/warm ratio in BENCH_warmstart.json.
WARM_DIR="$BUILD/warm_smoke_cache"
rm -rf "$WARM_DIR"
"$BUILD/tools/warm_smoke" "$WARM_DIR"
"$BUILD/tools/warm_smoke" "$WARM_DIR" --expect-warm
"$BUILD/tools/dbll-cachectl" verify "$WARM_DIR"
rm -rf "$WARM_DIR"
DBLL_BENCH_REPS=3 "$BUILD/bench/fig_warmstart" --smoke
echo "dbll: warm-start smoke passed (BENCH_warmstart.json written)"
# Fleet cache gate (docs/runtime_cache.md, fleet section): populate a cache,
# ship it as a self-validating bundle (export -> import -> verify), then
# start a 4-process swarm over the imported directory. Every process must be
# served with zero Tier-0 compiles and zero lift work (asserted inside
# warm_smoke); the first one faults entries from disk into the shm hot-entry
# ring, the rest ride shared memory.
FLEET_DIR="$BUILD/fleet_smoke_cache"
FLEET_IMPORT="$BUILD/fleet_smoke_import"
FLEET_BUNDLE="$BUILD/fleet_smoke.dbbundle"
rm -rf "$FLEET_DIR" "$FLEET_IMPORT" "$FLEET_BUNDLE"
"$BUILD/tools/warm_smoke" "$FLEET_DIR"
"$BUILD/tools/dbll-cachectl" export "$FLEET_DIR" "$FLEET_BUNDLE"
"$BUILD/tools/dbll-cachectl" import "$FLEET_BUNDLE" "$FLEET_IMPORT"
"$BUILD/tools/dbll-cachectl" verify "$FLEET_IMPORT"
"$BUILD/tools/dbll-cachectl" stats "$FLEET_IMPORT" --json |
  grep -q '"schema_version": 4'
FLEET_PIDS=""
for i in 1 2 3 4; do
  "$BUILD/tools/warm_smoke" "$FLEET_IMPORT" --expect-warm &
  FLEET_PIDS="$FLEET_PIDS $!"
done
for pid in $FLEET_PIDS; do wait "$pid"; done
rm -rf "$FLEET_DIR" "$FLEET_IMPORT" "$FLEET_BUNDLE"
echo "dbll: fleet swarm gate passed (4 processes, zero compiles)"
# Prewarm gate: bulk-compile a SpecKey manifest against the shipped kernel
# library, then re-run it -- the second pass must be served entirely from the
# cache (--expect-warm exits nonzero on any compile).
PREWARM_DIR="$BUILD/prewarm_smoke_cache"
PREWARM_MANIFEST="$BUILD/prewarm_smoke_manifest.json"
rm -rf "$PREWARM_DIR"
cat > "$PREWARM_MANIFEST" << EOF
{ "schema_version": 1,
  "lib": "$BUILD/tools/libprewarm_kernels.so",
  "entries": [
    { "symbol": "prewarm_saxpy", "int_args": 4, "returns_value": true,
      "fix": [ { "index": 4, "value": 64 } ] },
    { "symbol": "prewarm_dot3", "int_args": 3, "returns_value": true,
      "fix": [ { "index": 3, "value": 32 } ] },
    { "symbol": "prewarm_poly", "int_args": 4, "returns_value": true,
      "fix": [ { "index": 2, "value": 7 }, { "index": 3, "value": 5 },
               { "index": 4, "value": 3 } ] } ] }
EOF
"$BUILD/tools/dbll-cachectl" prewarm "$PREWARM_DIR" "$PREWARM_MANIFEST"
"$BUILD/tools/dbll-cachectl" prewarm "$PREWARM_DIR" "$PREWARM_MANIFEST" \
  --expect-warm
rm -rf "$PREWARM_DIR" "$PREWARM_MANIFEST"
echo "dbll: prewarm gate passed (second pass fully warm)"
# Crash-containment gate (docs/robustness.md, containment section): a
# fault-injection-poisoned kernel must be survived with the correct Tier-2
# answer, its fingerprint quarantined and its breaker opened; a process
# restart over the same directory must never reload the quarantined object;
# and a failed sidecar write must not cost in-process protection. The
# cachectl subcommand must see -- and be able to clear -- the record.
CONTAIN_DIR="$BUILD/contain_smoke_cache"
CONTAIN_DIR2="$BUILD/contain_smoke_cache2"
rm -rf "$CONTAIN_DIR" "$CONTAIN_DIR2"
"$BUILD/tools/contain_smoke" "$CONTAIN_DIR" --poison
"$BUILD/tools/contain_smoke" "$CONTAIN_DIR" --expect-quarantined
"$BUILD/tools/dbll-cachectl" quarantine "$CONTAIN_DIR" --json |
  grep -q '"fingerprint"'
"$BUILD/tools/contain_smoke" "$CONTAIN_DIR2" --sidecar-fault
"$BUILD/tools/dbll-cachectl" quarantine "$CONTAIN_DIR" --clear
rm -rf "$CONTAIN_DIR" "$CONTAIN_DIR2"
echo "dbll: crash-containment gate passed (poison, restart, sidecar legs)"
# Fleet bench smoke: shm hit must be measurably cheaper than a disk hit, and
# a 4-service restart from a bundle must do zero Tier-0 compiles
# (BENCH_fleet.json records the medians; nonzero exit on a missed gate).
DBLL_BENCH_REPS=5 "$BUILD/bench/fig_fleet" --smoke
echo "dbll: fleet cache smoke passed (BENCH_fleet.json written)"
# Tiering smoke (docs/tiering.md): interim seed, counter-driven auto-promotion
# and deoptimization end-to-end. The bench exits nonzero unless every gate
# holds; the grep re-asserts the promoted-handle gate explicitly -- both
# workloads must reach Tier-0 O3 without an explicit specialize call.
# The smoke gates are timing ratios with sub-millisecond windows; on a
# shared 1-core host a transient co-tenant spike can skew one attempt, so
# one retry is allowed -- each attempt must pass every gate outright.
DBLL_BENCH_REPS=5 "$BUILD/bench/fig_tiering" --smoke ||
  DBLL_BENCH_REPS=5 "$BUILD/bench/fig_tiering" --smoke
[ "$(grep -o '"promoted": true' BENCH_tiering.json | wc -l)" -eq 2 ]
echo "dbll: tiering smoke passed (BENCH_tiering.json written)"
# ISA multi-versioning gate (docs/codegen.md): one variant of the lifted
# line kernel per ladder level the host supports, plus an auto-dispatch row.
# On an AVX2-or-better host the host-best variant must beat the baseline-ISA
# variant by >= 1.2x on the compute-bound hot band (same retry policy as the
# tiering smoke: the gate is a timing ratio on a shared host). The forced
# DBLL_JIT_ISA=baseline leg pins the mask-down path: only the baseline row
# may run, the speedup gate is vacuous, and the run must still exit 0.
"$BUILD/bench/fig_vectorize" --smoke || "$BUILD/bench/fig_vectorize" --smoke
DBLL_JIT_ISA=baseline "$BUILD/bench/fig_vectorize" --smoke > /dev/null
echo "dbll: ISA multi-versioning smoke passed (BENCH_vectorize.json written)"
# Sanitized robustness pass: the decoder fuzz and the fallback/fault/
# containment tests under ASan+UBSan (any sanitizer report aborts, failing
# the run). detect_leaks=0: the obs Registry/Tracer are intentional leaky
# singletons. handle_segv=0 (and friends) for the containment test: the
# crash guard must own the guarded signals -- ASan's own fatal-signal
# interceptor would otherwise report the *recovered* probation faults.
ASAN_BUILD="${BUILD}-asan"
cmake -B "$ASAN_BUILD" -S . -DDBLL_SANITIZE=ON \
  -DDBLL_BUILD_BENCHMARKS=OFF -DDBLL_BUILD_EXAMPLES=OFF
cmake --build "$ASAN_BUILD" -j "$(nproc)" \
  --target decoder_fuzz_test fallback_test containment_test analysis_test \
  cpu_features_test object_store_test
ASAN_OPTIONS=detect_leaks=0 "$ASAN_BUILD/tests/decoder_fuzz_test"
ASAN_OPTIONS=detect_leaks=0 "$ASAN_BUILD/tests/fallback_test"
ASAN_OPTIONS=detect_leaks=0:handle_segv=0:handle_sigbus=0:handle_sigill=0:handle_sigfpe=0:allow_user_segv_handler=1 \
  "$ASAN_BUILD/tests/containment_test"
# Value-range legs: the lattice/fixpoint/jump-table tests read live process
# memory through raw pointers, the classic place for a subtle OOB.
ASAN_OPTIONS=detect_leaks=0 "$ASAN_BUILD/tests/analysis_test" \
  --gtest_filter='RangeLatticeTest.*:RangeAnalysisTest.*:JumpTableTest.*:FindPointerLinksTest.*:RangeLiftTest.*'
# ISA legs: the cpuid decode is pure bit-twiddling over synthetic snapshots
# and the hostile object-store paths shuffle raw entry bytes -- both are
# exactly where an off-by-one hides.
ASAN_OPTIONS=detect_leaks=0 "$ASAN_BUILD/tests/cpu_features_test"
ASAN_OPTIONS=detect_leaks=0 "$ASAN_BUILD/tests/object_store_test" \
  --gtest_filter='ObjectStoreTest.*Isa*:ObjectStoreTest.ImportSkips*'
echo "dbll: sanitized fuzz + fallback + containment + ranges + ISA tests passed"
echo "dbll: build, tier-1 tests, benchmark and robustness smoke all passed"
