#!/usr/bin/env python3
"""Structural validation of a dbll chrome://tracing export.

Usage: validate_trace.py TRACE.json [--require NAME ...]

Checks that the file is valid trace-event JSON, that every event is well
formed (complete "X" events with non-negative microsecond timestamps and a
thread id), that nesting depths are consistent per thread, and that the
required pipeline span families are present. The default requirement set
matches the acceptance criteria for a traced specialization run: decode,
cfg, lift, optimize, jit, and cache install spans must all appear.

Exit status 0 on success; 1 with a message on the first violation. Only the
standard library is used, so the script runs anywhere CPython does.
"""

import argparse
import collections
import json
import sys

DEFAULT_REQUIRED = [
    "cfg.decode",
    "cfg.build",
    "lift.function",
    "optimize.pipeline",
    "jit.compile",
    "cache.install",
]


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="chrome-trace JSON file to validate")
    parser.add_argument(
        "--require",
        action="append",
        default=None,
        metavar="NAME",
        help="span name that must be present (repeatable; "
        "default: the pipeline acceptance set)",
    )
    args = parser.parse_args()
    required = args.require if args.require is not None else DEFAULT_REQUIRED

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot parse {args.trace}: {error}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('top-level "traceEvents" array missing')
    if not events:
        return fail("trace contains no events")

    names = collections.Counter()
    per_thread_depths = collections.defaultdict(set)
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "tid", "pid"):
            if key not in event:
                return fail(f"event {i} lacks required key {key!r}")
        if event["ph"] != "X":
            return fail(f"event {i} has phase {event['ph']!r}, expected 'X'")
        if event["ts"] < 0 or event["dur"] < 0:
            return fail(f"event {i} has negative ts/dur")
        names[event["name"]] += 1
        depth = event.get("args", {}).get("depth")
        if depth is not None:
            if not isinstance(depth, int) or depth < 0:
                return fail(f"event {i} has bad depth {depth!r}")
            per_thread_depths[event["tid"]].add(depth)

    missing = [name for name in required if names[name] == 0]
    if missing:
        return fail(
            f"required span(s) missing: {', '.join(missing)}; "
            f"present: {', '.join(sorted(names))}"
        )

    # Depths on a thread must start at 0 and be gap-free: a span at depth n
    # is always enclosed by one at depth n-1.
    for tid, depths in per_thread_depths.items():
        if depths and sorted(depths) != list(range(max(depths) + 1)):
            return fail(f"thread {tid} has gapped nesting depths {sorted(depths)}")

    threads = {event["tid"] for event in events}
    print(
        f"validate_trace: OK: {sum(names.values())} spans, "
        f"{len(names)} distinct names, {len(threads)} thread(s); "
        f"all {len(required)} required span(s) present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
