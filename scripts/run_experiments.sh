#!/bin/sh
# dbll -- regenerate every paper figure and the extension experiments.
#
# Usage: scripts/run_experiments.sh [build-dir] [iters]
# Results go to stdout; EXPERIMENTS.md documents the expected shapes.
set -e
BUILD="${1:-build}"
ITERS="${2:-150}"

if [ ! -d "$BUILD/bench" ]; then
  echo "build first: cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

export DBLL_BENCH_ITERS="$ITERS"
export DBLL_BENCH_REPS=30

for b in fig6_flagcache fig8_codegen fig9a_element fig9b_line \
         fig10_compiletime fig_vectorize fig_ablation fig_linegen fig_spmv; do
  echo "===== $b ====="
  "$BUILD/bench/$b"
  echo
done
echo "===== micro_bench ====="
"$BUILD/bench/micro_bench" --benchmark_min_time=0.1
