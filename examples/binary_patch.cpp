// dbll example -- offline function extraction and re-optimization: read a
// function out of an ELF object file (never executing the file itself),
// lift it, specialize it, and run the JIT-compiled result in this process.
// Combines the ELF reader (paper Sec. VII reverse-engineering use) with the
// specialization pipeline.
//
// Usage: binary_patch <object-file> <function> [fixed-first-arg]
//
// The function must follow the SysV ABI with up to four integer arguments
// and an integer return. Try it on the repository's own corpus object:
//
//   g++ -O2 -fcf-protection=none -fno-stack-protector -fno-builtin \
//       -c tests/corpus.cpp -I tests -o corpus.o
//   build/examples/binary_patch corpus.o c_loop_sum 10
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dbll/elf/elf_reader.h"
#include "dbll/lift/lifter.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/printer.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: binary_patch <object-file> <function> "
                 "[fixed-first-arg]\n");
    return 2;
  }
  const std::string path = argv[1];
  const std::string name = argv[2];
  const bool fix = argc > 3;
  const long fixed = fix ? std::atol(argv[3]) : 0;

  auto file = dbll::elf::ElfFile::Open(path);
  if (!file.has_value()) {
    std::fprintf(stderr, "open: %s\n", file.error().Format().c_str());
    return 1;
  }
  auto symbol = file->FindFunction(name);
  if (!symbol.has_value()) {
    std::fprintf(stderr, "symbol: %s\n", symbol.error().Format().c_str());
    return 1;
  }
  auto vaddr = file->SymbolVirtualAddress(*symbol);
  auto image = file->LoadImage();
  if (!vaddr.has_value() || !image.has_value()) {
    std::fprintf(stderr, "cannot build the analysis image\n");
    return 1;
  }
  const std::uint64_t host = image->HostAddress(*vaddr);

  std::printf("== binary_patch: %s from %s ==\n\n", name.c_str(),
              path.c_str());
  auto cfg = dbll::x86::BuildCfg(host);
  if (cfg.has_value()) {
    std::printf("extracted %zu instructions in %zu blocks:\n",
                cfg->instr_count, cfg->blocks.size());
    for (const auto& [address, block] : cfg->blocks) {
      for (const auto& instr : block.instrs) {
        std::printf("  %s\n", dbll::x86::PrintInstr(instr).c_str());
      }
    }
  }

  dbll::lift::Jit jit;
  dbll::lift::Lifter lifter;
  auto lifted = lifter.Lift(host, dbll::lift::Signature::Ints(4), name);
  if (!lifted.has_value()) {
    std::fprintf(stderr, "lift: %s\n", lifted.error().Format().c_str());
    return 1;
  }
  if (fix) {
    if (auto status = lifted->SpecializeParam(0, static_cast<std::uint64_t>(fixed));
        !status.ok()) {
      std::fprintf(stderr, "specialize: %s\n",
                   status.error().Format().c_str());
      return 1;
    }
    std::printf("\nfirst argument fixed to %ld\n", fixed);
  }
  auto ir = lifted->OptimizeAndGetIr();
  if (ir.has_value()) {
    std::printf("\noptimized IR:\n%s\n", ir->c_str());
  }
  auto compiled = lifted->Compile(jit);
  if (!compiled.has_value()) {
    std::fprintf(stderr, "jit: %s\n", compiled.error().Format().c_str());
    return 1;
  }
  auto fn = reinterpret_cast<long (*)(long, long, long, long)>(*compiled);
  std::printf("calling the re-optimized function:\n");
  for (long x : {0L, 1L, 5L, 10L}) {
    std::printf("  f(%ld, %ld, 0, 0) = %ld\n", fix ? fixed : x, x,
                fn(x, x, 0, 0));
  }
  return 0;
}
