// dbll example -- a second HPC-flavoured scenario: a separable image blur
// whose kernel weights are only known at runtime (e.g. read from a config).
// The generic convolution is specialized per weight vector with DBrew+LLVM,
// demonstrating the library on code it was not hand-tuned for.
//
// Usage: blur_filter [radius<=3] [passes]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"

namespace {

constexpr long kWidth = 1024;
constexpr long kHeight = 512;
constexpr int kMaxRadius = 3;

/// Runtime kernel description: symmetric 1-D convolution weights.
struct BlurSpec {
  int radius;
  double weights[kMaxRadius + 1];  // weights[0] = center
};

// Generic horizontal convolution (compiled once, specialized at runtime).
// Kept in the decodable subset via the usual controlled idioms.
__attribute__((noinline)) void BlurRow(const BlurSpec* spec,
                                       const double* src, double* dst,
                                       long row) {
  const long base = row * kWidth;
  for (long x = kMaxRadius; x < kWidth - kMaxRadius; x++) {
    double acc = spec->weights[0] * src[base + x];
    for (int r = 1; r <= spec->radius; r++) {
      acc += spec->weights[r] * (src[base + x - r] + src[base + x + r]);
    }
    dst[base + x] = acc;
  }
}

using RowKernel = void (*)(const BlurSpec*, const double*, double*, long);

double RunPasses(RowKernel kernel, const BlurSpec* spec, int passes,
                 std::vector<double>& a, std::vector<double>& b) {
  const auto start = std::chrono::steady_clock::now();
  double* src = a.data();
  double* dst = b.data();
  for (int pass = 0; pass < passes; pass++) {
    for (long y = 0; y < kHeight; y++) {
      kernel(spec, src, dst, y);
    }
    std::swap(src, dst);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Checksum(const std::vector<double>& image) {
  double sum = 0;
  for (double v : image) sum += v;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  int radius = argc > 1 ? std::atoi(argv[1]) : 2;
  if (radius < 1) radius = 1;
  if (radius > kMaxRadius) radius = kMaxRadius;
  const int passes = argc > 2 ? std::atoi(argv[2]) : 30;

  // "Runtime" weights: a binomial-ish kernel normalized to 1.
  BlurSpec spec{radius, {0, 0, 0, 0}};
  double total = 0;
  for (int r = 0; r <= radius; r++) {
    spec.weights[r] = 1.0 / (1 << r);
    total += (r == 0 ? 1.0 : 2.0) * spec.weights[r];
  }
  for (int r = 0; r <= radius; r++) spec.weights[r] /= total;

  std::printf("== dbll blur filter: radius %d, %d passes over %ldx%ld ==\n\n",
              radius, passes, kWidth, kHeight);

  std::vector<double> image(kWidth * kHeight);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }

  // Generic.
  std::vector<double> a = image, b = image;
  const double generic = RunPasses(&BlurRow, &spec, passes, a, b);
  const double generic_sum = Checksum(passes % 2 ? b : a);
  std::printf("%-28s %8.3f s  (checksum %.6f)\n", "generic kernel", generic,
              generic_sum);

  // DBrew + LLVM specialization on the weight spec.
  dbll::dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&BlurRow));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&spec));
  rewriter.SetMemRange(&spec, &spec + 1);
  auto rewritten = rewriter.Rewrite();
  if (!rewritten.has_value()) {
    std::printf("DBrew failed: %s\n", rewritten.error().Format().c_str());
    return 1;
  }
  dbll::lift::Jit jit;
  dbll::lift::Lifter lifter;
  auto lifted = lifter.Lift(
      *rewritten,
      dbll::lift::Signature::Ints(4, dbll::lift::RetKind::kVoid), "blur");
  if (!lifted.has_value()) {
    std::printf("lift failed: %s\n", lifted.error().Format().c_str());
    return 1;
  }
  auto compiled = lifted->Compile(jit);
  if (!compiled.has_value()) {
    std::printf("JIT failed: %s\n", compiled.error().Format().c_str());
    return 1;
  }

  std::vector<double> c = image, d = image;
  const double specialized = RunPasses(
      reinterpret_cast<RowKernel>(*compiled), &spec, passes, c, d);
  const double specialized_sum = Checksum(passes % 2 ? d : c);
  std::printf("%-28s %8.3f s  (checksum %.6f)\n", "DBrew+LLVM specialized",
              specialized, specialized_sum);
  std::printf("\nspeedup: %.2fx, results %s\n", generic / specialized,
              generic_sum == specialized_sum ? "identical" : "DIFFER");
  return generic_sum == specialized_sum ? 0 : 1;
}
