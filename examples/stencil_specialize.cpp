// dbll example -- the paper's headline scenario: specialize a generic 2-D
// stencil kernel at runtime and approach the performance of the statically
// hand-specialized version (paper Sec. V/VI).
//
// The stencil is chosen at *runtime* (argv), so no statically compiled
// variant can exist for it -- exactly the situation runtime specialization
// is for.
//
// Usage: stencil_specialize [4|8] [iterations]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/stencil/stencil.h"

using namespace dbll;
using namespace dbll::stencil;

namespace {

double TimeRun(ElementKernel kernel, const void* st, int iters,
               double* checksum) {
  JacobiGrid grid;
  const auto start = std::chrono::steady_clock::now();
  grid.RunElement(kernel, st, iters);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *checksum = grid.Checksum();
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const int points = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 40;
  const FlatStencil& stencil =
      points == 8 ? EightPointFlat() : FourPointFlat();
  std::printf("== dbll stencil specialization: %d-point stencil, %d Jacobi "
              "iterations ==\n\n",
              stencil.point_count, iters);

  double checksum = 0;

  // Generic compiled code, interpreting the stencil description every call.
  const double generic = TimeRun(
      reinterpret_cast<ElementKernel>(&stencil_apply_flat), &stencil, iters,
      &checksum);
  std::printf("%-34s %8.3f s   (checksum %.6f)\n",
              "generic compiled kernel", generic, checksum);

  // DBrew: binary-level partial evaluation of the generic kernel.
  dbrew::Rewriter rewriter(
      reinterpret_cast<std::uint64_t>(&stencil_apply_flat));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&stencil));
  rewriter.SetMemRange(&stencil, &stencil + 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto dbrew_fn = rewriter.RewriteOrOriginal();
  const double dbrew_compile =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double dbrew_checksum = 0;
  const double dbrew_time =
      TimeRun(reinterpret_cast<ElementKernel>(dbrew_fn), &stencil, iters,
              &dbrew_checksum);
  std::printf("%-34s %8.3f s   (rewrite took %.3f ms)\n",
              "DBrew-specialized", dbrew_time, dbrew_compile * 1e3);

  // DBrew + LLVM post-processing (the paper's contribution).
  lift::Jit jit;
  lift::Lifter lifter;
  const auto t1 = std::chrono::steady_clock::now();
  auto lifted = lifter.Lift(
      dbrew_fn, lift::Signature{{lift::ArgKind::kInt, lift::ArgKind::kInt,
                                 lift::ArgKind::kInt, lift::ArgKind::kInt},
                                lift::RetKind::kVoid});
  double llvm_time = 0;
  double llvm_checksum = 0;
  if (lifted.has_value()) {
    auto compiled = lifted->Compile(jit);
    const double llvm_compile =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    if (compiled.has_value()) {
      llvm_time = TimeRun(reinterpret_cast<ElementKernel>(*compiled),
                          &stencil, iters, &llvm_checksum);
      std::printf("%-34s %8.3f s   (lift+O3+JIT took %.1f ms)\n",
                  "DBrew+LLVM post-processed", llvm_time, llvm_compile * 1e3);
    } else {
      std::printf("JIT failed: %s\n", compiled.error().Format().c_str());
    }
  } else {
    std::printf("lift failed: %s\n", lifted.error().Format().c_str());
  }

  // Statically specialized reference (only exists for the 4-point stencil).
  if (stencil.point_count == 4) {
    double direct_checksum = 0;
    const double direct = TimeRun(
        reinterpret_cast<ElementKernel>(&stencil_apply_direct), nullptr,
        iters, &direct_checksum);
    std::printf("%-34s %8.3f s\n", "hand-specialized (static)", direct);
    std::printf("\nspeedup generic -> DBrew+LLVM: %.2fx (static best: %.2fx)\n",
                generic / llvm_time, generic / direct);
  } else {
    std::printf("\nspeedup generic -> DBrew+LLVM: %.2fx\n",
                generic / llvm_time);
  }

  // DBrew reproduces the original FP order bit-exactly; the LLVM-post-
  // processed variant runs with fast-math (as in the paper), so it may
  // legally reassociate -- compare with a tight relative tolerance.
  auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(1.0, std::abs(b));
  };
  const bool consistent =
      checksum == dbrew_checksum &&
      (llvm_time == 0 || near(llvm_checksum, checksum));
  std::printf("results consistent: %s\n", consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
