// dbll example -- IR explorer: disassemble any of the bundled kernels and
// show the LLVM-IR the lifter produces for it, before and after the -O3
// pipeline. Useful for studying how the facet model, flag cache, and GEP
// addressing shape the IR (paper Sec. III).
//
// Usage: ir_explorer [kernel] [--no-flag-cache] [--no-facets] [--no-gep] [--raw]
//   kernel: max | clamp | dot | stencil (default: max)
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "dbll/lift/lifter.h"
#include "dbll/stencil/stencil.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/printer.h"

namespace {

__attribute__((noinline)) long MaxFn(long a, long b) { return a > b ? a : b; }

__attribute__((noinline)) long Clamp(long x, long lo) {
  const long hi = lo + 100;
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

__attribute__((noinline)) double Dot4(const double* a, const double* b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
}

}  // namespace

int main(int argc, char** argv) {
  const char* kernel = argc > 1 ? argv[1] : "max";
  dbll::lift::LiftConfig config;
  bool raw = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-flag-cache") == 0) config.flag_cache = false;
    if (std::strcmp(argv[i], "--no-facets") == 0) config.facet_cache = false;
    if (std::strcmp(argv[i], "--no-gep") == 0) config.use_gep = false;
    if (std::strcmp(argv[i], "--raw") == 0) raw = true;
  }

  std::uint64_t entry = 0;
  dbll::lift::Signature sig = dbll::lift::Signature::Ints(2);
  if (std::strcmp(kernel, "max") == 0) {
    entry = reinterpret_cast<std::uint64_t>(&MaxFn);
  } else if (std::strcmp(kernel, "clamp") == 0) {
    entry = reinterpret_cast<std::uint64_t>(&Clamp);
  } else if (std::strcmp(kernel, "dot") == 0) {
    entry = reinterpret_cast<std::uint64_t>(&Dot4);
    sig.ret = dbll::lift::RetKind::kF64;
  } else if (std::strcmp(kernel, "stencil") == 0) {
    entry = reinterpret_cast<std::uint64_t>(&dbll::stencil::stencil_apply_flat);
    sig = dbll::lift::Signature::Ints(4, dbll::lift::RetKind::kVoid);
  } else {
    std::printf("unknown kernel '%s' (use: max | clamp | dot | stencil)\n",
                kernel);
    return 1;
  }

  std::printf("== dbll ir_explorer: kernel '%s' (flag cache %s, facets %s, "
              "gep %s) ==\n\n",
              kernel, config.flag_cache ? "on" : "off",
              config.facet_cache ? "on" : "off", config.use_gep ? "on" : "off");

  std::printf("--- x86-64 input ---\n");
  auto cfg = dbll::x86::BuildCfg(entry);
  if (cfg.has_value()) {
    for (const auto& [address, block] : cfg->blocks) {
      if (cfg->blocks.size() > 1) std::printf("block_%lx:\n", address);
      for (const auto& instr : block.instrs) {
        std::printf("  %s\n", dbll::x86::PrintInstr(instr).c_str());
      }
    }
  }

  dbll::lift::Lifter lifter(config);
  auto lifted = lifter.Lift(entry, sig, "explored");
  if (!lifted.has_value()) {
    std::printf("lift failed: %s\n", lifted.error().Format().c_str());
    return 1;
  }
  if (raw) {
    std::printf("\n--- raw lifted LLVM-IR (before optimization) ---\n%s",
                lifted->GetIr().c_str());
  }
  auto ir = lifted->OptimizeAndGetIr();
  if (!ir.has_value()) {
    std::printf("optimization failed: %s\n", ir.error().Format().c_str());
    return 1;
  }
  std::printf("\n--- optimized LLVM-IR (-O%d) ---\n%s", config.opt_level,
              ir->c_str());
  return 0;
}
