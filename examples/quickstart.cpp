// dbll example -- quickstart: rewrite a compiled function at runtime.
//
// Mirrors the paper's Fig. 2/3 usage: take a compiled generic function, fix
// one of its parameters, and get a drop-in replacement specialized for that
// value -- first with the binary-level DBrew rewriter, then with the
// x86-64 -> LLVM-IR lifter and the full -O3 pipeline.
//
// Build & run:  cmake --build build && build/examples/quickstart
#include <cstdint>
#include <cstdio>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/printer.h"

namespace {

// A generic, separately compiled function: raise `base` to the power `exp`.
__attribute__((noinline)) long Power(long base, long exp) {
  long result = 1;
  for (long i = 0; i < exp; i++) {
    result *= base;
  }
  return result;
}

void Disassemble(std::uint64_t entry, const char* title) {
  std::printf("%s\n", title);
  auto cfg = dbll::x86::BuildCfg(entry);
  if (!cfg.has_value()) {
    std::printf("  (cannot disassemble: %s)\n", cfg.error().Format().c_str());
    return;
  }
  for (const auto& [address, block] : cfg->blocks) {
    for (const auto& instr : block.instrs) {
      std::printf("  %s\n", dbll::x86::PrintInstr(instr).c_str());
    }
  }
}

}  // namespace

int main() {
  std::printf("== dbll quickstart ==\n\n");
  std::printf("Power(3, 4) natively: %ld\n\n", Power(3, 4));

  // --- 1. Binary-level specialization with the DBrew rewriter -------------
  // Fix exp = 4: the loop condition becomes known at rewrite time, so the
  // loop is fully unrolled and the counter disappears.
  dbll::dbrew::Rewriter rewriter(&Power);
  rewriter.SetParam(1, 4);
  auto pow4 = rewriter.RewriteOrOriginalAs<long (*)(long, long)>();
  std::printf("DBrew-specialized pow4(3, ignored) = %ld\n", pow4(3, 999));
  std::printf("DBrew stats: %zu instructions emitted, %zu folded away\n",
              rewriter.stats().emitted_instrs, rewriter.stats().folded_instrs);
  Disassemble(reinterpret_cast<std::uint64_t>(pow4),
              "generated code (loop fully unrolled):");

  // --- 2. The same specialization at the LLVM-IR level ---------------------
  dbll::lift::Jit jit;
  dbll::lift::Lifter lifter;
  auto lifted = lifter.Lift(&Power, dbll::lift::Signature::Ints(2), "pow");
  if (!lifted.has_value()) {
    std::printf("lift failed: %s\n", lifted.error().Format().c_str());
    return 1;
  }
  if (auto status = lifted->SpecializeParam(1, 4); !status.ok()) {
    std::printf("specialize failed: %s\n", status.error().Format().c_str());
    return 1;
  }
  auto ir = lifted->OptimizeAndGetIr();
  if (ir.has_value()) {
    std::printf("\noptimized LLVM-IR of the lifted, specialized function:\n%s",
                ir->c_str());
  }
  auto compiled = lifted->CompileAs<long (*)(long, long)>(jit);
  if (!compiled.has_value()) {
    std::printf("JIT failed: %s\n", compiled.error().Format().c_str());
    return 1;
  }
  std::printf("LLVM-specialized pow4(3, ignored) = %ld\n",
              (*compiled)(3, 999));
  return 0;
}
