// dbll example -- callback fusion: the paper's feature (1), "tight coupling
// of separately compiled functions (e.g. from application code and/or
// different libraries) by aggressive inlining".
//
// A generic library routine applies a user callback over an array through a
// function pointer. At rewrite time the pointer value is known, so DBrew
// follows the indirect call and inlines the callback into the traversal
// loop; LLVM post-processing then optimizes the fused loop as a whole --
// something no static compiler can do across these two "libraries".
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/x86/cfg.h"

namespace {

// --- "Library A": a generic array map ---------------------------------------

using MapFn = double (*)(double, const double*);

struct MapConfig {
  MapFn fn;
  const double* params;
};

__attribute__((noinline)) void array_map(const MapConfig* config,
                                         const double* input, double* output,
                                         long count) {
  for (long i = 0; i < count; i++) {
    output[i] = config->fn(input[i], config->params);
  }
}

// --- "Library B": user callbacks ---------------------------------------------

__attribute__((noinline)) double scale_shift(double x, const double* p) {
  return x * p[0] + p[1];
}

__attribute__((noinline)) double rational(double x, const double* p) {
  return (x + p[0]) / (x * x + p[1]);
}

double TimeRun(void (*fn)(const MapConfig*, const double*, double*, long),
               const MapConfig* config, const std::vector<double>& in,
               std::vector<double>& out, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; r++) {
    fn(config, in.data(), out.data(), static_cast<long>(in.size()));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 2000;
  std::printf("== dbll callback fusion: inlining through a function pointer "
              "==\n\n");

  static const double params[2] = {2.5, -1.0};
  static const MapConfig config{&scale_shift, params};

  std::vector<double> input(4096);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<double>(i) * 0.001;
  }
  std::vector<double> out_native(input.size());
  std::vector<double> out_fused(input.size());

  const double native =
      TimeRun(&array_map, &config, input, out_native, reps);
  std::printf("%-34s %8.3f s\n", "indirect call per element", native);

  // DBrew: config (including the function pointer!) is fixed -> the
  // indirect call target becomes known and the callback is inlined.
  dbll::dbrew::Rewriter rewriter(&array_map);
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&config));
  rewriter.SetMemRange(&config, &config + 1);
  rewriter.SetMemRange(params, params + 2);
  auto rewritten = rewriter.Rewrite();
  if (!rewritten.has_value()) {
    std::printf("rewrite failed: %s\n", rewritten.error().Format().c_str());
    return 1;
  }
  const int remaining_calls = [&] {
    auto cfg = dbll::x86::BuildCfg(*rewritten);
    int calls = 0;
    if (cfg.has_value()) {
      for (const auto& [address, block] : cfg->blocks) {
        for (const auto& instr : block.instrs) {
          if (instr.mnemonic == dbll::x86::Mnemonic::kCall) ++calls;
        }
      }
    }
    return calls;
  }();
  std::printf("DBrew inlined %zu call(s); %d call instructions remain in the "
              "generated code\n",
              rewriter.stats().inlined_calls, remaining_calls);

  using MapKernel = void (*)(const MapConfig*, const double*, double*, long);
  const double fused_time = TimeRun(reinterpret_cast<MapKernel>(*rewritten),
                                    nullptr, input, out_fused, reps);
  std::printf("%-34s %8.3f s\n", "DBrew-fused", fused_time);

  // And with LLVM post-processing on top.
  dbll::lift::Jit jit;
  dbll::lift::Lifter lifter;
  auto lifted = lifter.Lift(
      *rewritten, dbll::lift::Signature::Ints(4, dbll::lift::RetKind::kVoid),
      "fused_map");
  double llvm_time = 0;
  if (lifted.has_value()) {
    auto compiled = lifted->Compile(jit);
    if (compiled.has_value()) {
      std::vector<double> out_llvm(input.size());
      llvm_time = TimeRun(reinterpret_cast<MapKernel>(*compiled), nullptr,
                          input, out_llvm, reps);
      std::printf("%-34s %8.3f s\n", "DBrew+LLVM fused", llvm_time);
      for (std::size_t i = 0; i < input.size(); ++i) {
        if (out_llvm[i] != out_native[i]) {
          std::printf("MISMATCH at %zu\n", i);
          return 1;
        }
      }
    }
  }

  for (std::size_t i = 0; i < input.size(); ++i) {
    if (out_fused[i] != out_native[i]) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf("\nresults identical; speedup %.2fx (DBrew), %.2fx "
              "(DBrew+LLVM)\n",
              native / fused_time, llvm_time > 0 ? native / llvm_time : 0.0);

  // Second callback, same generic library code, new specialization.
  static const double params2[2] = {1.0, 4.0};
  static const MapConfig config2{&rational, params2};
  dbll::dbrew::Rewriter rewriter2(&array_map);
  rewriter2.SetParam(0, reinterpret_cast<std::uint64_t>(&config2));
  rewriter2.SetMemRange(&config2, &config2 + 1);
  rewriter2.SetMemRange(params2, params2 + 2);
  auto second = rewriter2.Rewrite();
  if (second.has_value()) {
    std::vector<double> out_a(input.size()), out_b(input.size());
    array_map(&config2, input.data(), out_a.data(),
              static_cast<long>(input.size()));
    reinterpret_cast<MapKernel>(*second)(nullptr, input.data(), out_b.data(),
                                         static_cast<long>(input.size()));
    bool ok = out_a == out_b;
    std::printf("second callback (rational) fused: %s\n",
                ok ? "results identical" : "MISMATCH");
    return ok ? 0 : 1;
  }
  std::printf("second rewrite failed: %s\n",
              second.error().Format().c_str());
  return 1;
}
